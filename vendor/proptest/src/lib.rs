//! A minimal, dependency-free, **offline** shim of the [proptest] API
//! subset this workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This shim keeps the workspace's property
//! tests runnable with the same source text: it generates deterministic
//! pseudo-random inputs (seeded per test name) and reports the first
//! failing case. It does **not** shrink failing inputs — on failure,
//! rerun with the printed case index in mind or port the repro into a
//! plain unit test.
//!
//! Supported surface:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) { .. } }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`
//! * `any::<T>()` for primitive integers
//! * integer and `f64` range strategies (`0u8..3`, `0.0f64..1.0`, ...)
//! * tuples of strategies (arity 2–6), `Just`, `.prop_map(...)`
//! * `proptest::collection::vec(strategy, size_range)`
//!
//! [proptest]: https://crates.io/crates/proptest

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    use std::fmt;

    /// Error type carried out of a failing property body by
    /// `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// SplitMix64: tiny, fast, full-period, deterministic.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree: strategies produce
    /// plain values and failures are not shrunk.
    pub trait Strategy: Clone {
        /// The type of values this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + Clone,
        {
            Map { base: self, map: f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                generate: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.generate(rng))
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                generate: Rc::clone(&self.generate),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Choose uniformly among `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = rng.next_u64() as u128 % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Half-open range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a size range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..7, y in -5i32..5, z in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u8..10).prop_map(|n| n * 2), 1..5),
            pick in prop_oneof![Just(1u64), Just(2u64), (10u64..20).prop_map(|n| n)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            prop_assert!(pick == 1 || pick == 2 || (10..20).contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
