//! A minimal, dependency-free, **offline** shim of the [criterion] API
//! subset this workspace's benches use.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This shim keeps `cargo bench` (and the bench
//! targets under `cargo test`) compiling and running: every benchmark is
//! measured as **N independent samples of a fixed iteration count**, and
//! the report quotes the **median** per-iteration time with the observed
//! spread (min–max across samples) — never a single-run number, which on
//! a noisy machine can be off by an order of magnitude. Throughput is
//! computed from the median. There is still no warm-up modelling,
//! outlier rejection, or HTML reporting; for publication-grade numbers
//! use `hyperfine`/`perf` or the real crate once the build environment
//! has network.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// How measured iterations relate to batch setup (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` with per-batch `setup` excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u32,
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets too (tier-1 must stay fast);
        // a single iteration of a single sample keeps that cheap while
        // still exercising every bench body end-to-end. Real `--bench`
        // invocations take several samples so the median is meaningful.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self {
            iters: if bench_mode { 5 } else { 1 },
            samples: if bench_mode { 7 } else { 1 },
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.iters, self.samples, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput in these units.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(
            self.criterion.iters,
            self.criterion.samples,
            &full,
            self.throughput,
            f,
        );
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    iters: u32,
    samples: u32,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // N independent samples; each invokes the routine `iters` times.
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples.max(1) as usize);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = if per_iter.len() % 2 == 1 {
        per_iter[per_iter.len() / 2]
    } else {
        (per_iter[per_iter.len() / 2 - 1] + per_iter[per_iter.len() / 2]) / 2.0
    };
    let spread = per_iter.last().unwrap() - per_iter.first().unwrap();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!(" ({:.1} Melem/s)", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(" ({:.1} MB/s)", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<40} median {:>10.3} ms/iter (spread {:.3} ms){rate}  \
         [shim: {} samples x {} iters]",
        median * 1e3,
        spread * 1e3,
        per_iter.len(),
        iters
    );
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque value barrier, re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("iter_batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }
}
