//! Deterministic pseudo-random number generators.
//!
//! The workload input images (text corpora for `compress`, grids for
//! `hydro2d`, meshes for `tomcatv`, ...) are generated from seeds, and the
//! seed is part of every experiment's identity recorded in EXPERIMENTS.md.
//! We implement SplitMix64 (seeding / cheap streams) and xoshiro256**
//! (bulk generation) from their public-domain reference algorithms so the
//! bit streams can never drift underneath us.

/// SplitMix64: a tiny, statistically solid 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into independent seeds for
/// other generators, and for cheap value perturbation inside workload
/// kernels' data generators.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. All seeds are valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique (Lemire); the modulo bias is at
    /// most 2^-64 per draw which is irrelevant for workload synthesis.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256**: the general-purpose generator for bulk workload data.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion (the seeding procedure recommended by
    /// the xoshiro authors), guaranteeing a non-zero state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        let mut c = Xoshiro256StarStar::new(8);
        let mut diverged = false;
        for _ in 0..64 {
            let av = a.next_u64();
            assert_eq!(av, b.next_u64());
            if av != c.next_u64() {
                diverged = true;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut rng = Xoshiro256StarStar::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = SplitMix64::new(5);
        let mut xo = Xoshiro256StarStar::new(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            let w = xo.next_f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&w));
        }
    }

    #[test]
    fn bounded_draws_cover_small_ranges() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
