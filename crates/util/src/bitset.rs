//! A dense, fixed-size bitset over `u64` blocks.
//!
//! Used for register liveness when computing the live-in set of a trace:
//! 64 architectural registers (32 integer + 32 floating-point) fit in one
//! block, so membership tests on the hot path are a mask and a shift.

/// Growable dense bitset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    blocks: Vec<u64>,
}

impl DenseBitSet {
    /// Empty set with capacity for `bits` bits pre-allocated.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            blocks: vec![0; bits.div_ceil(64)],
        }
    }

    /// Set bit `i`, growing as needed. Returns `true` if the bit was newly
    /// set (was previously clear).
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (block, mask) = (i / 64, 1u64 << (i % 64));
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let was_clear = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        was_clear
    }

    /// Clear bit `i`. Returns `true` if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (block, mask) = (i / 64, 1u64 << (i % 64));
        if block >= self.blocks.len() {
            return false;
        }
        let was_set = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        was_set
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (block, mask) = (i / 64, 1u64 << (i % 64));
        self.blocks.get(block).is_some_and(|b| b & mask != 0)
    }

    /// Clear all bits, keeping capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterate over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let tz = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseBitSet::with_capacity(64);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn grows_on_demand() {
        let mut s = DenseBitSet::default();
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.contains(999));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut s = DenseBitSet::default();
        for i in [5usize, 64, 1, 130, 63] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![1, 5, 63, 64, 130]);
    }

    #[test]
    fn clear_keeps_capacity_but_empties() {
        let mut s = DenseBitSet::with_capacity(128);
        s.insert(100);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(100));
    }
}
