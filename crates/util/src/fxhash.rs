//! The rustc-fx multiplicative hash, hand-rolled.
//!
//! The reuse analyses key hash maps and sets almost exclusively by small
//! integers (program counters, word-aligned addresses) and by 64-bit
//! *input signatures* of dynamic instructions. SipHash is needlessly slow
//! for that, and — more importantly for a reproduction — the experiment
//! results embed these hash values (set-associative index functions,
//! signature sets), so the function must be bit-stable regardless of
//! toolchain or dependency versions. We therefore implement the well-known
//! Firefox/rustc "fx" hash here (64-bit variant): per 8-byte chunk,
//! `state = (state.rotate_left(5) ^ chunk) * K` with
//! `K = 0x51_7c_c1_b7_27_22_0a_95`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// 64-bit fx hasher implementing [`std::hash::Hasher`].
#[derive(Default, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

impl FxHasher64 {
    /// Fresh hasher with zero state.
    #[inline]
    pub fn new() -> Self {
        Self { state: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// `HashMap` keyed with the fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash a single `u64` (one multiply + rotate + xor).
#[inline]
pub fn fx_hash_u64(v: u64) -> u64 {
    let mut h = FxHasher64::new();
    h.write_u64(v);
    h.finish()
}

/// Hash a byte slice.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher64::new();
    h.write(bytes);
    h.finish()
}

/// Incrementally fold a sequence of words into a 128-bit signature.
///
/// The two halves use independent initial states so that a collision in
/// one 64-bit lane is (practically) never a collision in both. Used for
/// the input signatures of dynamic instructions and traces: with ~10^8
/// distinct signatures per run, the 128-bit birthday bound (~2^64) makes
/// false "reusable" verdicts vanishingly unlikely, whereas 64 bits
/// (~2^32 birthday bound) would not.
#[derive(Clone, Copy)]
pub struct Signature128 {
    lo: FxHasher64,
    hi: FxHasher64,
}

impl Signature128 {
    /// Start a signature; `tag` separates signature domains (e.g. PC vs
    /// operand streams).
    #[inline]
    pub fn new(tag: u64) -> Self {
        let mut lo = FxHasher64::new();
        let mut hi = FxHasher64 {
            state: 0x9e37_79b9_7f4a_7c15,
        };
        lo.write_u64(tag);
        hi.write_u64(tag ^ 0xdead_beef_cafe_f00d);
        Self { lo, hi }
    }

    /// Fold one word into the signature.
    #[inline]
    pub fn push(&mut self, word: u64) {
        self.lo.write_u64(word);
        self.hi.write_u64(word.rotate_left(32));
    }

    /// Final 128-bit value.
    #[inline]
    pub fn finish(&self) -> u128 {
        ((self.hi.finish() as u128) << 64) | self.lo.finish() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_stability_anchor() {
        // Pin the exact value so any accidental change to the hash breaks
        // loudly: experiment outputs depend on it.
        assert_eq!(fx_hash_u64(0), 0);
        assert_eq!(fx_hash_u64(1), SEED);
        assert_eq!(fx_hash_u64(42), 42u64.wrapping_mul(SEED));
    }

    #[test]
    fn bytes_and_words_agree_on_aligned_input() {
        let words = [1u64, 2, 3];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let mut h = FxHasher64::new();
        for w in words {
            h.write_u64(w);
        }
        assert_eq!(fx_hash_bytes(&bytes), h.finish());
    }

    #[test]
    fn trailing_bytes_are_hashed() {
        assert_ne!(fx_hash_bytes(b"abcdefgh"), fx_hash_bytes(b"abcdefghX"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        assert_eq!(m[&31], 961);
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn signature_sensitive_to_order_and_tag() {
        let mut a = Signature128::new(0);
        a.push(1);
        a.push(2);
        let mut b = Signature128::new(0);
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Signature128::new(1);
        c.push(1);
        c.push(2);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn signature_halves_differ() {
        let mut s = Signature128::new(7);
        for w in 0..16u64 {
            s.push(w);
        }
        let v = s.finish();
        assert_ne!((v >> 64) as u64, v as u64);
    }
}
