//! A fixed-capacity vector stored inline, with no heap allocation.
//!
//! `DynInstr` (the per-dynamic-instruction record emitted by the functional
//! simulator) carries its read set and write set in `InlineVec`s: an
//! instruction in our Alpha-flavoured ISA reads at most three locations
//! (two registers plus one memory word for a load, or two registers for a
//! store's value+base) and writes at most two (a register, or a memory
//! word). Keeping those sets inline means a 50 M-instruction run performs
//! zero allocations in the execute/observe loop.

use std::fmt;
use std::mem::MaybeUninit;

/// A vector with inline storage for up to `N` elements.
///
/// Pushing beyond capacity is a logic error in this workspace (instruction
/// read/write sets and RTM entry I/O lists have hard architectural caps),
/// so [`InlineVec::push`] panics on overflow; the fallible
/// [`InlineVec::try_push`] is available where the cap is a *policy* rather
/// than an invariant (e.g. trace live-in collection under the paper's
/// 8-register / 4-memory-value limit).
pub struct InlineVec<T, const N: usize> {
    len: u8,
    items: [MaybeUninit<T>; N],
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    #[inline]
    pub fn new() -> Self {
        assert!(N <= u8::MAX as usize, "InlineVec capacity must fit in u8");
        Self {
            len: 0,
            // SAFETY: an array of MaybeUninit does not require initialization.
            items: unsafe { MaybeUninit::uninit().assume_init() },
        }
    }

    /// Number of elements currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of elements (`N`).
    #[inline]
    pub const fn capacity(&self) -> usize {
        N
    }

    /// `true` when `len() == capacity()`.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == N
    }

    /// Append an element. Panics if the vector is full.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(self.len() < N, "InlineVec overflow (capacity {N})");
        self.items[self.len()].write(value);
        self.len += 1;
    }

    /// Append an element, returning it back if the vector is full.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        if self.len() == N {
            Err(value)
        } else {
            self.items[self.len()].write(value);
            self.len += 1;
            Ok(())
        }
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            // SAFETY: slot `len` was initialized by a previous push.
            Some(unsafe { self.items[self.len as usize].assume_init_read() })
        }
    }

    /// Drop all elements.
    #[inline]
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: elements 0..len are initialized.
        unsafe { std::slice::from_raw_parts(self.items.as_ptr() as *const T, self.len()) }
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: elements 0..len are initialized.
        unsafe { std::slice::from_raw_parts_mut(self.items.as_mut_ptr() as *mut T, self.len()) }
    }

    /// Iterate over the stored elements.
    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = Self::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: std::hash::Hash, const N: usize> std::hash::Hash for InlineVec<T, N> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    /// Collect from an iterator. Panics if the iterator yields more than
    /// `N` elements.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for item in iter {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    #[should_panic(expected = "InlineVec overflow")]
    fn push_past_capacity_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn try_push_reports_overflow() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        assert_eq!(v.try_push(1), Ok(()));
        assert_eq!(v.try_push(2), Ok(()));
        assert_eq!(v.try_push(3), Err(3));
        assert!(v.is_full());
        assert_eq!(v.as_slice(), &[1, 2]);
    }

    #[test]
    fn drop_runs_destructors() {
        use std::rc::Rc;
        let marker = Rc::new(());
        {
            let mut v: InlineVec<Rc<()>, 8> = InlineVec::new();
            for _ in 0..5 {
                v.push(Rc::clone(&marker));
            }
            assert_eq!(Rc::strong_count(&marker), 6);
        }
        assert_eq!(Rc::strong_count(&marker), 1);
    }

    #[test]
    fn clone_and_eq() {
        let mut v: InlineVec<String, 3> = InlineVec::new();
        v.push("a".into());
        v.push("b".into());
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn deref_enables_slice_methods() {
        let v: InlineVec<u32, 4> = [3u32, 1, 2].into_iter().collect();
        assert!(v.contains(&1));
        assert_eq!(v.iter().max(), Some(&3));
    }

    proptest! {
        #[test]
        fn behaves_like_vec(ops in proptest::collection::vec(0u8..3, 0..64)) {
            let mut iv: InlineVec<u8, 64> = InlineVec::new();
            let mut model: Vec<u8> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        if !iv.is_full() {
                            iv.push(i as u8);
                            model.push(i as u8);
                        }
                    }
                    1 => {
                        prop_assert_eq!(iv.pop(), model.pop());
                    }
                    _ => {
                        prop_assert_eq!(iv.as_slice(), model.as_slice());
                    }
                }
            }
            prop_assert_eq!(iv.as_slice(), model.as_slice());
        }
    }
}
