#![warn(missing_docs)]
//! # tlr-util
//!
//! Zero-dependency support types shared across the trace-reuse workspace.
//!
//! The simulation pipeline processes tens of millions of dynamic
//! instructions per run, so the hot-path containers here are designed to be
//! allocation-free and branch-light:
//!
//! * [`InlineVec`] — a fixed-capacity vector stored inline (no heap), used
//!   for the read/write sets of a dynamic instruction and the live-in /
//!   live-out lists of a reuse-trace-memory entry.
//! * [`FxHasher64`] / [`fx_hash_u64`] — the rustc-fx multiplicative hash,
//!   hand-rolled so that stream signatures are bit-stable across toolchain
//!   and dependency upgrades (a requirement for reproducible experiments).
//! * [`SplitMix64`] and [`Xoshiro256StarStar`] — small deterministic RNGs
//!   used by the workload input-image generators; seeding is part of each
//!   experiment's identity, so we do not depend on an external crate whose
//!   stream might change between versions.
//! * [`DenseBitSet`] — a plain `u64`-block bitset for register liveness.

pub mod bitset;
pub mod fxhash;
pub mod inline_vec;
pub mod rng;

pub use bitset::DenseBitSet;
pub use fxhash::{fx_hash_bytes, fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use inline_vec::InlineVec;
pub use rng::{SplitMix64, Xoshiro256StarStar};

/// Format a large count with `_` separators every three digits
/// (e.g. `12_345_678`) for readable harness output.
pub fn group_digits(mut n: u64) -> String {
    if n == 0 {
        return "0".to_string();
    }
    let mut groups: Vec<String> = Vec::new();
    while n > 0 {
        groups.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    let mut out = String::new();
    for (i, g) in groups.iter().rev().enumerate() {
        if i == 0 {
            // Strip leading zeros from the most significant group.
            out.push_str(g.trim_start_matches('0'));
        } else {
            out.push('_');
            out.push_str(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_digits_formats() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(7), "7");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1_000");
        assert_eq!(group_digits(1234567), "1_234_567");
        assert_eq!(group_digits(50_000_000), "50_000_000");
    }
}
