//! Aligned text tables with CSV and Markdown escapes.
//!
//! Every figure reproduction prints one of these: a row per benchmark (or
//! per configuration) with a "paper" column next to a "measured" column,
//! and writes the same data as CSV into `results/`.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the usual label+numbers
    /// shape). Use [`Table::with_aligns`] to override.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (must match the header count).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows (cells as rendered strings).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }

    /// Render as aligned text with a header separator.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180 quoting where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Render as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for align in &self.aligns {
            out.push_str(match align {
                Align::Left => "---|",
                Align::Right => "---:|",
            });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Format a float with `prec` decimals, dropping useless trailing zeros is
/// deliberately *not* done — columns stay visually aligned.
pub fn fnum(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["bench", "paper", "measured"]);
        t.row(vec!["compress", "2.50", "2.41"]);
        t.row(vec!["gcc", "1.05", "1.10"]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: both rows end at the same column.
        assert!(lines[2].ends_with("2.41"));
        assert!(lines[3].ends_with("1.10"));
    }

    #[test]
    fn csv_roundtrips_commas_and_quotes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| bench | paper | measured |"));
        assert!(md.contains("|---|---:|---:|"));
        assert!(md.contains("| compress | 2.50 | 2.41 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fnum_fixed_precision() {
        assert_eq!(fnum(1.0, 2), "1.00");
        assert_eq!(fnum(2.345, 2), "2.35"); // round-half-even at display
    }
}
