//! Histograms for count-valued observations (trace sizes, window
//! residency). Buckets are power-of-two ranges, which is what Figure 7's
//! log axis effectively shows.

/// A power-of-two bucketed histogram of `u64` observations with exact
/// count/sum tracking for the mean.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[k]` counts observations with `floor(log2(v)) == k`
    /// (v ≥ 1). Zero observations land in `zeros`.
    buckets: Vec<u64>,
    zeros: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        if value == 0 {
            self.zeros += 1;
            return;
        }
        let bucket = 63 - value.leading_zeros() as usize;
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (None when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Iterate `(bucket_low, bucket_high_inclusive, count)` for non-empty
    /// buckets, in ascending order; the zero bucket comes first as
    /// `(0, 0, n)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        let zero = (self.zeros > 0).then_some((0u64, 0u64, self.zeros));
        zero.into_iter().chain(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(k, c)| (1u64 << k, (1u64 << k) * 2 - 1, *c)),
        )
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        self.max = self.max.max(other.max);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// Render a compact text summary.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!(
            "{title}: n={} mean={:.2} max={}\n",
            self.count,
            self.mean().unwrap_or(0.0),
            self.max
        );
        for (lo, hi, c) in self.iter_buckets() {
            let pct = 100.0 * c as f64 / self.count as f64;
            if lo == hi {
                out.push_str(&format!("  [{lo:>8}]          {c:>10} ({pct:5.1}%)\n"));
            } else {
                out.push_str(&format!("  [{lo:>8},{hi:>8}] {c:>10} ({pct:5.1}%)\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64, u64)> = h.iter_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 2),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (512, 1023, 1)
            ]
        );
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1026);
    }

    #[test]
    fn mean_matches_sum_over_count() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), Some(15.0));
        assert_eq!(Histogram::new().mean(), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(0);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 201);
        assert_eq!(a.max(), 100);
        let total: u64 = a.iter_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn render_contains_percentages() {
        let mut h = Histogram::new();
        for _ in 0..4 {
            h.record(2);
        }
        let text = h.render("trace size");
        assert!(text.contains("n=4"));
        assert!(text.contains("100.0%"));
    }
}
