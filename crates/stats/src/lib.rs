#![warn(missing_docs)]
//! # tlr-stats
//!
//! Statistics and reporting helpers for the experiment harness.
//!
//! The paper is specific about aggregation (§4.1): *"Average speed-ups
//! have been computed through harmonic means and average percentages have
//! been determined through arithmetic means."* [`harmonic_mean`] and
//! [`arithmetic_mean`] implement exactly those, and the figure
//! reproductions in `tlr-bench` use them accordingly.
//!
//! [`Table`] renders aligned text for terminal output plus CSV for the
//! `results/` directory; [`BarChart`] gives a quick ASCII rendition of
//! each per-benchmark figure; [`Histogram`] summarizes trace-size
//! distributions (Figure 7 uses a log axis — `log2_bucket` mirrors that).

pub mod chart;
pub mod histogram;
pub mod means;
pub mod table;

pub use chart::BarChart;
pub use histogram::Histogram;
pub use means::{arithmetic_mean, geometric_mean, harmonic_mean, Summary};
pub use table::{fnum, Align, Table};
