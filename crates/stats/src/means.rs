//! Aggregation functions matching the paper's methodology.

/// Arithmetic mean. Returns `None` for an empty slice.
///
/// Used for averaging *percentages* (reusability, reuse coverage), per
/// §4.1 of the paper.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Harmonic mean. Returns `None` for an empty slice or any non-positive
/// value (a zero or negative speed-up is a bug upstream, not a number to
/// average away).
///
/// Used for averaging *speed-ups*, per §4.1 of the paper.
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

/// Geometric mean. Returns `None` for an empty slice or non-positive
/// values. Not used by the paper; provided for sensitivity comparisons in
/// EXPERIMENTS.md.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Five-number style summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub stddev: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` when empty.
    pub fn of(values: &[f64]) -> Option<Summary> {
        let mean = arithmetic_mean(values)?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut var_acc = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            var_acc += (v - mean) * (v - mean);
        }
        Some(Summary {
            n: values.len(),
            min,
            max,
            mean,
            stddev: (var_acc / values.len() as f64).sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_basics() {
        assert_eq!(arithmetic_mean(&[]), None);
        assert_eq!(arithmetic_mean(&[2.0]), Some(2.0));
        assert_eq!(arithmetic_mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn harmonic_basics() {
        assert_eq!(harmonic_mean(&[]), None);
        assert_eq!(harmonic_mean(&[4.0]), Some(4.0));
        // HM(1,1,4) = 3 / (1 + 1 + 0.25) = 4/3
        let hm = harmonic_mean(&[1.0, 1.0, 4.0]).unwrap();
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geometric_basics() {
        let gm = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((gm - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(Summary::of(&[]), None);
    }

    proptest! {
        /// HM ≤ GM ≤ AM for positive samples — the classic mean
        /// inequality; also all three lie within [min, max].
        #[test]
        fn mean_inequality(values in proptest::collection::vec(0.01f64..1e6, 1..32)) {
            let am = arithmetic_mean(&values).unwrap();
            let gm = geometric_mean(&values).unwrap();
            let hm = harmonic_mean(&values).unwrap();
            let eps = 1e-9 * am.abs().max(1.0);
            prop_assert!(hm <= gm + eps, "hm={hm} gm={gm}");
            prop_assert!(gm <= am + eps, "gm={gm} am={am}");
            let (lo, hi) = values.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
            prop_assert!(hm >= lo - eps && am <= hi + eps);
        }
    }
}
