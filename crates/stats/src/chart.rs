//! ASCII horizontal bar charts approximating the paper's figures.
//!
//! Each per-benchmark figure (reusability, speed-up, trace size) renders
//! as one bar per label, scaled to a fixed width, optionally on a log
//! axis (Figure 7 plots trace sizes on a log scale).

/// A horizontal bar chart.
pub struct BarChart {
    title: String,
    entries: Vec<(String, f64)>,
    width: usize,
    log_scale: bool,
}

impl BarChart {
    /// New chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            entries: Vec::new(),
            width: 50,
            log_scale: false,
        }
    }

    /// Maximum bar width in characters (default 50).
    pub fn width(mut self, width: usize) -> Self {
        assert!(width >= 1);
        self.width = width;
        self
    }

    /// Plot bar lengths on a log10 axis (values must be ≥ 1 to show).
    pub fn log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Add one bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.entries.push((label.into(), value));
        self
    }

    /// Render. Non-finite or negative values render as a `?` marker
    /// rather than poisoning the scale.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let label_w = self.entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let xform = |v: f64| -> f64 {
            if self.log_scale {
                if v >= 1.0 {
                    v.log10()
                } else {
                    0.0
                }
            } else {
                v
            }
        };
        let max = self
            .entries
            .iter()
            .map(|(_, v)| xform(*v))
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        for (label, value) in &self.entries {
            if !value.is_finite() || *value < 0.0 {
                out.push_str(&format!("{label:<label_w$}  ?\n"));
                continue;
            }
            let frac = if max > 0.0 { xform(*value) / max } else { 0.0 };
            let bars = (frac * self.width as f64).round() as usize;
            out.push_str(&format!(
                "{label:<label_w$}  {} {value:.2}\n",
                "#".repeat(bars)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("speed-up").width(10);
        c.bar("a", 1.0);
        c.bar("bb", 2.0);
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "speed-up");
        assert!(lines[1].starts_with("a "));
        // a gets 5 hashes, bb gets 10.
        assert_eq!(lines[1].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 10);
        assert!(lines[2].ends_with("2.00"));
    }

    #[test]
    fn log_scale_compresses() {
        let mut c = BarChart::new("sizes").width(12).log_scale();
        c.bar("small", 10.0); // log10 = 1
        c.bar("big", 1000.0); // log10 = 3
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1].matches('#').count(), 4); // 1/3 of 12
        assert_eq!(lines[2].matches('#').count(), 12);
    }

    #[test]
    fn pathological_values_marked() {
        let mut c = BarChart::new("x");
        c.bar("nan", f64::NAN);
        c.bar("neg", -1.0);
        let text = c.render();
        assert_eq!(text.matches('?').count(), 2);
    }

    #[test]
    fn empty_chart_is_title_only() {
        let c = BarChart::new("empty");
        assert_eq!(c.render(), "empty\n");
    }
}
