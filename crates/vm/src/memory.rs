//! Sparse paged memory of 64-bit words.
//!
//! Addresses are word-granular (one value per address), matching the
//! paper's treatment of memory locations as unit storage cells. Storage
//! is a hash map of fixed-size pages so that workloads with scattered
//! data segments (hash tables, heaps) stay compact while hot loops get
//! contiguous page-local access.

use tlr_util::FxHashMap;

/// Words per page; power of two so address splitting is a shift/mask.
const PAGE_WORDS: usize = 1024;
const PAGE_SHIFT: u32 = PAGE_WORDS.trailing_zeros();
const PAGE_MASK: u64 = (PAGE_WORDS as u64) - 1;

/// Sparse word-addressed memory. Unwritten words read as zero.
#[derive(Default)]
pub struct Memory {
    pages: FxHashMap<u64, Box<[u64; PAGE_WORDS]>>,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an initial image of (address, value) pairs.
    pub fn from_image(image: &[(u64, u64)]) -> Self {
        let mut mem = Self::new();
        for &(addr, value) in image {
            mem.write(addr, value);
        }
        mem
    }

    /// Read the word at `addr` (zero if never written).
    #[inline]
    pub fn read(&self, addr: u64) -> u64 {
        let page = addr >> PAGE_SHIFT;
        match self.pages.get(&page) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Write the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, value: u64) {
        let page = addr >> PAGE_SHIFT;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
        p[(addr & PAGE_MASK) as usize] = value;
    }

    /// Read the word at `addr` as an IEEE double.
    #[inline]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read(addr))
    }

    /// Write an IEEE double at `addr`.
    #[inline]
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write(addr, value.to_bits());
    }

    /// Number of resident pages (for tests / footprint reporting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterate all explicitly-written words (unordered).
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|(page, data)| {
            let base = page << PAGE_SHIFT;
            data.iter()
                .enumerate()
                .filter(|(_, v)| **v != 0)
                .map(move |(i, v)| (base + i as u64, *v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0), 0);
        assert_eq!(mem.read(u64::MAX / 2), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = Memory::new();
        mem.write(5, 42);
        mem.write(5 + PAGE_WORDS as u64, 43);
        assert_eq!(mem.read(5), 42);
        assert_eq!(mem.read(5 + PAGE_WORDS as u64), 43);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn f64_views() {
        let mut mem = Memory::new();
        mem.write_f64(9, -3.25);
        assert_eq!(mem.read_f64(9), -3.25);
        assert_eq!(mem.read(9), (-3.25f64).to_bits());
    }

    #[test]
    fn from_image() {
        let mem = Memory::from_image(&[(1, 10), (2, 20)]);
        assert_eq!(mem.read(1), 10);
        assert_eq!(mem.read(2), 20);
        assert_eq!(mem.read(3), 0);
    }

    #[test]
    fn iter_words_reports_nonzero() {
        let mut mem = Memory::new();
        mem.write(3, 7);
        mem.write(2000, 8);
        mem.write(4, 0); // explicit zero is indistinguishable from unwritten
        let mut words: Vec<(u64, u64)> = mem.iter_words().collect();
        words.sort_unstable();
        assert_eq!(words, vec![(3, 7), (2000, 8)]);
    }

    #[test]
    fn page_boundary_isolation() {
        let mut mem = Memory::new();
        let last_of_page = PAGE_WORDS as u64 - 1;
        mem.write(last_of_page, 1);
        mem.write(last_of_page + 1, 2);
        assert_eq!(mem.read(last_of_page), 1);
        assert_eq!(mem.read(last_of_page + 1), 2);
    }
}
