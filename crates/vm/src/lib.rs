#![warn(missing_docs)]
//! # tlr-vm
//!
//! The functional simulator: executes a [`tlr_asm::Program`] and emits one
//! [`tlr_isa::DynInstr`] per executed instruction through a streaming
//! [`tlr_isa::StreamSink`]. This is the workspace's substitute for the
//! paper's ATOM-instrumented Alpha binaries: the record carries exactly
//! the information an instrumentation routine observes — PC, the ordered
//! (location, value) pairs read and written, and the next PC.
//!
//! Two capabilities beyond plain execution exist for the reuse study:
//!
//! * **architectural peeks** ([`Vm::peek_loc`]) — the RTM reuse test must
//!   compare a candidate trace's recorded live-in values against the
//!   *current* architectural state before deciding to skip the trace;
//! * **trace fast-forward** ([`Vm::apply_trace`]) — on a reuse hit the
//!   engine applies the recorded live-out values and jumps to the
//!   recorded next PC without executing (or even fetching) the skipped
//!   instructions, exactly the processor-state update of §3.3.
//!
//! Execution comes in two models sharing one predecoded dispatch table
//! ([`tlr_isa::Predecoded`], built once in [`Vm::new`]): the *observed*
//! path ([`Vm::step`]/[`Vm::run`]) materializes a full [`tlr_isa::DynInstr`]
//! per instruction, while the *fast* path ([`Vm::step_fast`]/
//! [`Vm::run_fast`]) is allocation-free and record-free for when nothing
//! is consuming the dynamic stream. [`ExecMode`] selects between them;
//! both compute identical architectural state.

mod memory;
mod vm;

pub use memory::Memory;
pub use vm::{ExecMode, FastStep, RunOutcome, StepResult, Vm, VmError};
