//! The functional simulator core.

use crate::memory::Memory;
use std::fmt;
use tlr_asm::Program;
use tlr_isa::{
    DynInstr, FpCmpOp, FpOp, FpUnOp, Instr, IntOp, Loc, OpClass, Operand, Reg, StreamSink,
};

/// An execution error. The program counter identifies the faulting
/// instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Fetch fell off the end of the instruction array.
    PcOutOfRange {
        /// The invalid PC.
        pc: u32,
    },
    /// An indirect jump targeted an address outside the program.
    BadJumpTarget {
        /// PC of the jump instruction.
        pc: u32,
        /// The invalid target.
        target: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::PcOutOfRange { pc } => write!(f, "fetch out of range at pc={pc}"),
            VmError::BadJumpTarget { pc, target } => {
                write!(f, "indirect jump at pc={pc} to invalid target {target}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a single [`Vm::step`].
#[derive(Debug, PartialEq)]
pub enum StepResult {
    /// One instruction executed; the record describes it.
    Executed(DynInstr),
    /// The program reached `halt`.
    Halted,
}

/// How a [`Vm::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt`.
    Halted {
        /// Instructions executed (halt itself is not counted or recorded).
        executed: u64,
    },
    /// The instruction budget ran out first.
    BudgetExhausted {
        /// Instructions executed (== the budget).
        executed: u64,
    },
}

impl RunOutcome {
    /// Instructions executed in either case.
    pub fn executed(self) -> u64 {
        match self {
            RunOutcome::Halted { executed } | RunOutcome::BudgetExhausted { executed } => executed,
        }
    }
}

/// The architectural simulator.
///
/// Holds the program, the register files, memory, and the PC. `r31`/`f31`
/// are hardwired zero: reads yield zero without being recorded as inputs
/// and writes are discarded without being recorded as outputs (they are
/// literals, not storage locations — Alpha convention).
pub struct Vm {
    program: Program,
    iregs: [u64; 32],
    fregs: [f64; 32],
    mem: Memory,
    pc: u32,
    executed: u64,
}

impl Vm {
    /// Load a program: memory gets the data image, registers start at
    /// zero, PC at the entry point.
    pub fn new(program: &Program) -> Self {
        Self {
            mem: Memory::from_image(&program.data),
            iregs: [0; 32],
            fregs: [0.0; 32],
            pc: program.entry,
            executed: 0,
            program: program.clone(),
        }
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Total instructions executed so far (reused/skipped instructions
    /// applied via [`Vm::apply_trace`] are *not* counted here).
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Memory view (tests / post-run inspection).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    #[inline]
    fn read_ireg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.iregs[r.index() as usize]
        }
    }

    #[inline]
    fn read_freg(&self, r: tlr_isa::FReg) -> f64 {
        if r.is_zero() {
            0.0
        } else {
            self.fregs[r.index() as usize]
        }
    }

    /// Read the current architectural value of a location, as the RTM
    /// reuse test does when comparing a candidate trace's live-ins against
    /// processor state.
    #[inline]
    pub fn peek_loc(&self, loc: Loc) -> u64 {
        match loc {
            Loc::IntReg(n) => {
                if n == 31 {
                    0
                } else {
                    self.iregs[n as usize]
                }
            }
            Loc::FpReg(n) => {
                if n == 31 {
                    0
                } else {
                    self.fregs[n as usize].to_bits()
                }
            }
            Loc::Mem(addr) => self.mem.read(addr),
        }
    }

    /// Canonical digest of the full architectural state: every register
    /// (integer and FP, bit patterns) and every nonzero memory word in
    /// address order. Two runs that made the same progress must produce
    /// equal digests — the equality the warm-start, policy, and daemon
    /// regression gates compare on.
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = tlr_util::fxhash::FxHasher64::new();
        for r in 0..32u8 {
            h.write_u64(self.peek_loc(Loc::IntReg(r)));
        }
        for r in 0..32u8 {
            h.write_u64(self.peek_loc(Loc::FpReg(r)));
        }
        let mut words: Vec<(u64, u64)> = self.mem.iter_words().collect();
        words.sort_unstable();
        for (addr, value) in words {
            h.write_u64(addr);
            h.write_u64(value);
        }
        h.finish()
    }

    /// Apply a reused trace's outputs and jump to its next PC — the
    /// processor-state update of §3.3, performed *instead of* fetching and
    /// executing the trace body. `skipped` is the number of dynamic
    /// instructions the trace covers (bookkeeping only).
    ///
    /// Returns an error if `next_pc` is outside the program.
    pub fn apply_trace(
        &mut self,
        outputs: impl IntoIterator<Item = (Loc, u64)>,
        next_pc: u32,
    ) -> Result<(), VmError> {
        if next_pc as usize >= self.program.instrs.len() {
            return Err(VmError::BadJumpTarget {
                pc: self.pc,
                target: next_pc as u64,
            });
        }
        for (loc, value) in outputs {
            self.poke_loc(loc, value);
        }
        self.pc = next_pc;
        Ok(())
    }

    /// Write a location directly (used by `apply_trace` and tests).
    #[inline]
    pub fn poke_loc(&mut self, loc: Loc, value: u64) {
        match loc {
            Loc::IntReg(n) => {
                if n != 31 {
                    self.iregs[n as usize] = value;
                }
            }
            Loc::FpReg(n) => {
                if n != 31 {
                    self.fregs[n as usize] = f64::from_bits(value);
                }
            }
            Loc::Mem(addr) => self.mem.write(addr, value),
        }
    }

    /// Execute one instruction, returning its dynamic record (or
    /// [`StepResult::Halted`]).
    pub fn step(&mut self) -> Result<StepResult, VmError> {
        let pc = self.pc;
        let instr = *self
            .program
            .instrs
            .get(pc as usize)
            .ok_or(VmError::PcOutOfRange { pc })?;

        let mut rec = DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::of(&instr),
            reads: Default::default(),
            writes: Default::default(),
        };

        macro_rules! read_r {
            ($r:expr) => {{
                let r: Reg = $r;
                let v = self.read_ireg(r);
                if !r.is_zero() {
                    rec.reads.push((Loc::IntReg(r.index()), v));
                }
                v
            }};
        }
        macro_rules! read_f {
            ($r:expr) => {{
                let r: tlr_isa::FReg = $r;
                let v = self.read_freg(r);
                if !r.is_zero() {
                    rec.reads.push((Loc::FpReg(r.index()), v.to_bits()));
                }
                v
            }};
        }
        macro_rules! write_r {
            ($r:expr, $v:expr) => {{
                let r: Reg = $r;
                let v: u64 = $v;
                if !r.is_zero() {
                    self.iregs[r.index() as usize] = v;
                    rec.writes.push((Loc::IntReg(r.index()), v));
                }
            }};
        }
        macro_rules! write_f {
            ($r:expr, $v:expr) => {{
                let r: tlr_isa::FReg = $r;
                let v: f64 = $v;
                if !r.is_zero() {
                    self.fregs[r.index() as usize] = v;
                    rec.writes.push((Loc::FpReg(r.index()), v.to_bits()));
                }
            }};
        }

        match instr {
            Instr::IntOp { op, rd, ra, rb } => {
                let a = read_r!(ra);
                let b = match rb {
                    Operand::Reg(r) => read_r!(r),
                    Operand::Imm(v) => v as i64 as u64,
                };
                let v = eval_int_op(op, a, b);
                write_r!(rd, v);
            }
            Instr::Li { rd, imm } => {
                write_r!(rd, imm as u64);
            }
            Instr::FpOp { op, fd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                write_f!(fd, v);
            }
            Instr::FpUn { op, fd, fa } => {
                let a = read_f!(fa);
                let v = match op {
                    FpUnOp::Sqrt => a.sqrt(),
                    FpUnOp::Neg => -a,
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Mov => a,
                };
                write_f!(fd, v);
            }
            Instr::FpCmp { op, rd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpCmpOp::Eq => a == b,
                    FpCmpOp::Lt => a < b,
                    FpCmpOp::Le => a <= b,
                } as u64;
                write_r!(rd, v);
            }
            Instr::LoadInt { rd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp as i64 as u64);
                let v = self.mem.read(addr);
                rec.reads.push((Loc::Mem(addr), v));
                write_r!(rd, v);
            }
            Instr::StoreInt { rs, base, disp } => {
                let v = read_r!(rs);
                let addr = read_r!(base).wrapping_add(disp as i64 as u64);
                self.mem.write(addr, v);
                rec.writes.push((Loc::Mem(addr), v));
            }
            Instr::LoadFp { fd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp as i64 as u64);
                let bits = self.mem.read(addr);
                rec.reads.push((Loc::Mem(addr), bits));
                write_f!(fd, f64::from_bits(bits));
            }
            Instr::StoreFp { fs, base, disp } => {
                let v = read_f!(fs);
                let addr = read_r!(base).wrapping_add(disp as i64 as u64);
                self.mem.write(addr, v.to_bits());
                rec.writes.push((Loc::Mem(addr), v.to_bits()));
            }
            Instr::Itof { fd, ra } => {
                let a = read_r!(ra);
                write_f!(fd, a as i64 as f64);
            }
            Instr::Ftoi { rd, fa } => {
                let a = read_f!(fa);
                // `as` saturates on overflow and maps NaN to 0: deterministic.
                write_r!(rd, a as i64 as u64);
            }
            Instr::Branch { cond, ra, target } => {
                let v = read_r!(ra);
                if cond.eval(v) {
                    rec.next_pc = target;
                }
            }
            Instr::Jump { target } => {
                rec.next_pc = target;
            }
            Instr::Jsr { link, target } => {
                write_r!(link, (pc + 1) as u64);
                rec.next_pc = target;
            }
            Instr::JmpReg { ra } => {
                let v = read_r!(ra);
                if v as usize >= self.program.instrs.len() {
                    return Err(VmError::BadJumpTarget { pc, target: v });
                }
                rec.next_pc = v as u32;
            }
            Instr::Halt => return Ok(StepResult::Halted),
            Instr::Nop => {}
        }

        self.pc = rec.next_pc;
        self.executed += 1;
        Ok(StepResult::Executed(rec))
    }

    /// Run until `halt` or until `budget` instructions have executed,
    /// pushing every record to `sink`.
    pub fn run(&mut self, budget: u64, sink: &mut impl StreamSink) -> Result<RunOutcome, VmError> {
        let mut n = 0u64;
        while n < budget {
            match self.step()? {
                StepResult::Executed(rec) => {
                    sink.observe(&rec);
                    n += 1;
                }
                StepResult::Halted => {
                    sink.finish();
                    return Ok(RunOutcome::Halted { executed: n });
                }
            }
        }
        sink.finish();
        Ok(RunOutcome::BudgetExhausted { executed: n })
    }
}

#[inline]
fn eval_int_op(op: IntOp, a: u64, b: u64) -> u64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Sll => a << (b & 63),
        IntOp::Srl => a >> (b & 63),
        IntOp::Sra => ((a as i64) >> (b & 63)) as u64,
        IntOp::CmpEq => (a == b) as u64,
        IntOp::CmpLt => ((a as i64) < (b as i64)) as u64,
        IntOp::CmpLe => ((a as i64) <= (b as i64)) as u64,
        IntOp::CmpUlt => (a < b) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;
    use tlr_isa::CollectSink;

    fn run_source(src: &str, budget: u64) -> (Vm, Vec<DynInstr>, RunOutcome) {
        let prog = assemble(src).expect("assembly failed");
        let mut vm = Vm::new(&prog);
        let mut sink = CollectSink::default();
        let outcome = vm.run(budget, &mut sink).expect("vm error");
        (vm, sink.records, outcome)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let (vm, recs, outcome) = run_source(
            r#"
            li      r1, 0        ; sum
            li      r2, 5        ; i
    loop:   addq    r1, r1, r2
            subq    r2, r2, 1
            bnez    r2, loop
            halt
            "#,
            1000,
        );
        assert!(matches!(outcome, RunOutcome::Halted { .. }));
        assert_eq!(vm.peek_loc(Loc::IntReg(1)), 15); // 5+4+3+2+1
                                                     // 2 setup + 5 iterations * 3 instructions
        assert_eq!(recs.len(), 17);
    }

    #[test]
    fn loads_and_stores_record_memory_locations() {
        let (vm, recs, _) = run_source(
            r#"
            .org 100
    v:      .word 7
            li      r1, v
            ldq     r2, 0(r1)
            addq    r2, r2, 1
            stq     r2, 1(r1)
            halt
            "#,
            100,
        );
        assert_eq!(vm.memory().read(101), 8);
        let load = &recs[1];
        assert!(load
            .reads
            .iter()
            .any(|(l, v)| *l == Loc::Mem(100) && *v == 7));
        let store = &recs[3];
        assert!(store
            .writes
            .iter()
            .any(|(l, v)| *l == Loc::Mem(101) && *v == 8));
    }

    #[test]
    fn zero_register_is_not_a_location() {
        let (_, recs, _) = run_source(
            r#"
            addq    zero, zero, 5   ; write discarded, reads unrecorded
            mov     r1, zero
            halt
            "#,
            10,
        );
        assert!(recs[0].reads.is_empty());
        assert!(recs[0].writes.is_empty());
        // mov r1, zero reads nothing (zero reg) and writes r1 = 0.
        assert!(recs[1].reads.is_empty());
        assert_eq!(recs[1].writes.as_slice(), &[(Loc::IntReg(1), 0)]);
    }

    #[test]
    fn fp_pipeline_works() {
        let (vm, _, _) = run_source(
            r#"
            .org 0
    a:      .double 2.25
            li      r1, a
            ldt     f1, 0(r1)
            sqrtt   f2, f1
            addt    f3, f2, f2
            stt     f3, 1(r1)
            halt
            "#,
            100,
        );
        assert_eq!(vm.memory().read_f64(1), 3.0);
    }

    #[test]
    fn fp_compare_and_branch() {
        let (vm, _, _) = run_source(
            r#"
            .org 0
    vals:   .double 1.5, 2.5
            li      r1, vals
            ldt     f1, 0(r1)
            ldt     f2, 1(r1)
            cmptlt  r2, f1, f2
            beqz    r2, nope
            li      r3, 111
            halt
    nope:   li      r3, 222
            halt
            "#,
            100,
        );
        assert_eq!(vm.peek_loc(Loc::IntReg(3)), 111);
    }

    #[test]
    fn jsr_and_ret() {
        let (vm, recs, _) = run_source(
            r#"
            jsr     r26, fn
            li      r2, 99
            halt
    fn:     li      r1, 42
            ret     r26
            "#,
            100,
        );
        assert_eq!(vm.peek_loc(Loc::IntReg(1)), 42);
        assert_eq!(vm.peek_loc(Loc::IntReg(2)), 99);
        // jsr writes the link register.
        assert_eq!(recs[0].writes.as_slice(), &[(Loc::IntReg(26), 1)]);
        assert_eq!(recs[0].next_pc, 3);
    }

    #[test]
    fn budget_exhaustion() {
        let (_, recs, outcome) = run_source("loop: br loop\n", 25);
        assert_eq!(outcome, RunOutcome::BudgetExhausted { executed: 25 });
        assert_eq!(recs.len(), 25);
    }

    #[test]
    fn pc_out_of_range_reported() {
        // A program with no halt falls off the end.
        let prog = assemble("nop\n").unwrap();
        let mut vm = Vm::new(&prog);
        let mut sink = CollectSink::default();
        let err = vm.run(10, &mut sink).unwrap_err();
        assert_eq!(err, VmError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn bad_indirect_jump_reported() {
        let (prog, _) = (assemble("li r1, 999\njmp r1\nhalt\n").unwrap(), ());
        let mut vm = Vm::new(&prog);
        assert!(matches!(vm.step(), Ok(StepResult::Executed(_))));
        assert_eq!(
            vm.step().unwrap_err(),
            VmError::BadJumpTarget { pc: 1, target: 999 }
        );
    }

    #[test]
    fn apply_trace_updates_state_and_pc() {
        let prog = assemble("nop\nnop\nnop\nhalt\n").unwrap();
        let mut vm = Vm::new(&prog);
        vm.apply_trace(
            [
                (Loc::IntReg(5), 77),
                (Loc::Mem(10), 88),
                (Loc::FpReg(2), 2.5f64.to_bits()),
            ],
            3,
        )
        .unwrap();
        assert_eq!(vm.pc(), 3);
        assert_eq!(vm.peek_loc(Loc::IntReg(5)), 77);
        assert_eq!(vm.peek_loc(Loc::Mem(10)), 88);
        assert_eq!(vm.peek_loc(Loc::FpReg(2)), 2.5f64.to_bits());
        // Continuing from the applied PC halts immediately.
        assert_eq!(vm.step().unwrap(), StepResult::Halted);
    }

    #[test]
    fn apply_trace_rejects_bad_next_pc() {
        let prog = assemble("halt\n").unwrap();
        let mut vm = Vm::new(&prog);
        assert!(vm.apply_trace([], 5).is_err());
    }

    #[test]
    fn int_op_semantics() {
        assert_eq!(eval_int_op(IntOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_int_op(IntOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_int_op(IntOp::Mul, u64::MAX, 2), u64::MAX - 1); // wraps mod 2^64
        assert_eq!(eval_int_op(IntOp::Sll, 1, 65), 2); // shift mod 64
        assert_eq!(eval_int_op(IntOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(eval_int_op(IntOp::CmpLt, (-1i64) as u64, 0), 1);
        assert_eq!(eval_int_op(IntOp::CmpUlt, (-1i64) as u64, 0), 0);
        assert_eq!(eval_int_op(IntOp::CmpLe, 3, 3), 1);
        assert_eq!(eval_int_op(IntOp::CmpEq, 3, 4), 0);
    }

    #[test]
    fn determinism_same_program_same_stream() {
        let src = r#"
            li      r1, 10
            li      r2, 0x100
    loop:   stq     r1, 0(r2)
            ldq     r3, 0(r2)
            mulq    r3, r3, r3
            addq    r2, r2, 1
            subq    r1, r1, 1
            bnez    r1, loop
            halt
        "#;
        let (_, a, _) = run_source(src, 10_000);
        let (_, b, _) = run_source(src, 10_000);
        assert_eq!(a, b);
    }
}
