//! The functional simulator core.

use crate::memory::Memory;
use std::fmt;
use tlr_asm::Program;
use tlr_isa::{DynInstr, FpCmpOp, FpOp, FpUnOp, IntOp, Loc, OpClass, POp, Predecoded, StreamSink};

/// An execution error. The program counter identifies the faulting
/// instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Fetch fell off the end of the instruction array.
    PcOutOfRange {
        /// The invalid PC.
        pc: u32,
    },
    /// An indirect jump targeted an address outside the program.
    BadJumpTarget {
        /// PC of the jump instruction.
        pc: u32,
        /// The invalid target.
        target: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::PcOutOfRange { pc } => write!(f, "fetch out of range at pc={pc}"),
            VmError::BadJumpTarget { pc, target } => {
                write!(f, "indirect jump at pc={pc} to invalid target {target}")
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Result of a single [`Vm::step`].
#[derive(Debug, PartialEq)]
pub enum StepResult {
    /// One instruction executed; the record describes it.
    Executed(DynInstr),
    /// The program reached `halt`.
    Halted,
}

/// How a [`Vm::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt`.
    Halted {
        /// Instructions executed (halt itself is not counted or recorded).
        executed: u64,
    },
    /// The instruction budget ran out first.
    BudgetExhausted {
        /// Instructions executed (== the budget).
        executed: u64,
    },
}

impl RunOutcome {
    /// Instructions executed in either case.
    pub fn executed(self) -> u64 {
        match self {
            RunOutcome::Halted { executed } | RunOutcome::BudgetExhausted { executed } => executed,
        }
    }
}

/// Which execution model drives the hot loop.
///
/// Both modes compute identical architectural state; the split exists so
/// that the per-instruction [`DynInstr`] record — heap-free but still a
/// ~100-byte value with inline read/write vectors — is materialized
/// *lazily*, only when something (a collector, a tap, a recorder) is
/// actually consuming the dynamic stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Predecoded dispatch with no per-step record: [`Vm::step_fast`].
    Fast,
    /// Reference observed execution: every step materializes the full
    /// [`DynInstr`] via [`Vm::step`].
    #[default]
    Observed,
}

/// Result of a single [`Vm::step_fast`] — like [`StepResult`] but
/// reporting only the executed instruction's class, with no record built.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FastStep {
    /// One instruction executed.
    Executed(OpClass),
    /// The program reached `halt`.
    Halted,
}

/// The architectural simulator.
///
/// Holds the program, the register files, memory, and the PC. `r31`/`f31`
/// are hardwired zero: reads yield zero without being recorded as inputs
/// and writes are discarded without being recorded as outputs (they are
/// literals, not storage locations — Alpha convention).
pub struct Vm {
    program: Program,
    pre: Predecoded,
    iregs: [u64; 32],
    fregs: [f64; 32],
    mem: Memory,
    pc: u32,
    executed: u64,
}

impl Vm {
    /// Load a program: memory gets the data image, registers start at
    /// zero, PC at the entry point. The instruction array is predecoded
    /// once, here, into the dense dispatch table both step paths run on.
    pub fn new(program: &Program) -> Self {
        Self {
            mem: Memory::from_image(&program.data),
            pre: Predecoded::of(&program.instrs),
            iregs: [0; 32],
            fregs: [0.0; 32],
            pc: program.entry,
            executed: 0,
            program: program.clone(),
        }
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Total instructions executed so far (reused/skipped instructions
    /// applied via [`Vm::apply_trace`] are *not* counted here).
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Memory view (tests / post-run inspection).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory view. Used by the trace-block applier to write
    /// memory outputs without the [`Loc`] indirection of
    /// [`Vm::poke_loc`].
    #[inline]
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The predecoded dispatch table (one entry per static instruction).
    pub fn predecoded(&self) -> &Predecoded {
        &self.pre
    }

    /// Number of static instructions; valid PCs are `0..code_len()`.
    #[inline]
    pub fn code_len(&self) -> usize {
        self.pre.len()
    }

    /// Raw integer register file. Slot 31 is the hardwired zero register:
    /// it is never written by execution, so it always reads as zero.
    #[inline]
    pub fn iregs(&self) -> &[u64; 32] {
        &self.iregs
    }

    /// Mutable integer register file. Callers must preserve the zero
    /// register invariant: never write slot 31 (the trace-block applier
    /// filters zero-register outputs at build time).
    #[inline]
    pub fn iregs_mut(&mut self) -> &mut [u64; 32] {
        &mut self.iregs
    }

    /// Raw FP register file; slot 31 is the hardwired zero register.
    #[inline]
    pub fn fregs(&self) -> &[f64; 32] {
        &self.fregs
    }

    /// Mutable FP register file; same slot-31 caveat as
    /// [`Vm::iregs_mut`].
    #[inline]
    pub fn fregs_mut(&mut self) -> &mut [f64; 32] {
        &mut self.fregs
    }

    /// Redirect the PC (the trace-block analogue of the jump performed by
    /// [`Vm::apply_trace`]). An out-of-range target is not an error here;
    /// it surfaces as [`VmError::PcOutOfRange`] at the next fetch.
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Read the current architectural value of a location, as the RTM
    /// reuse test does when comparing a candidate trace's live-ins against
    /// processor state.
    #[inline]
    pub fn peek_loc(&self, loc: Loc) -> u64 {
        match loc {
            Loc::IntReg(n) => {
                if n == 31 {
                    0
                } else {
                    self.iregs[n as usize]
                }
            }
            Loc::FpReg(n) => {
                if n == 31 {
                    0
                } else {
                    self.fregs[n as usize].to_bits()
                }
            }
            Loc::Mem(addr) => self.mem.read(addr),
        }
    }

    /// Canonical digest of the full architectural state: every register
    /// (integer and FP, bit patterns) and every nonzero memory word in
    /// address order. Two runs that made the same progress must produce
    /// equal digests — the equality the warm-start, policy, and daemon
    /// regression gates compare on.
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = tlr_util::fxhash::FxHasher64::new();
        for r in 0..32u8 {
            h.write_u64(self.peek_loc(Loc::IntReg(r)));
        }
        for r in 0..32u8 {
            h.write_u64(self.peek_loc(Loc::FpReg(r)));
        }
        let mut words: Vec<(u64, u64)> = self.mem.iter_words().collect();
        words.sort_unstable();
        for (addr, value) in words {
            h.write_u64(addr);
            h.write_u64(value);
        }
        h.finish()
    }

    /// Apply a reused trace's outputs and jump to its next PC — the
    /// processor-state update of §3.3, performed *instead of* fetching and
    /// executing the trace body. `skipped` is the number of dynamic
    /// instructions the trace covers (bookkeeping only).
    ///
    /// Returns an error if `next_pc` is outside the program.
    pub fn apply_trace(
        &mut self,
        outputs: impl IntoIterator<Item = (Loc, u64)>,
        next_pc: u32,
    ) -> Result<(), VmError> {
        if next_pc as usize >= self.program.instrs.len() {
            return Err(VmError::BadJumpTarget {
                pc: self.pc,
                target: next_pc as u64,
            });
        }
        for (loc, value) in outputs {
            self.poke_loc(loc, value);
        }
        self.pc = next_pc;
        Ok(())
    }

    /// Write a location directly (used by `apply_trace` and tests).
    #[inline]
    pub fn poke_loc(&mut self, loc: Loc, value: u64) {
        match loc {
            Loc::IntReg(n) => {
                if n != 31 {
                    self.iregs[n as usize] = value;
                }
            }
            Loc::FpReg(n) => {
                if n != 31 {
                    self.fregs[n as usize] = f64::from_bits(value);
                }
            }
            Loc::Mem(addr) => self.mem.write(addr, value),
        }
    }

    /// Execute one instruction, returning its dynamic record (or
    /// [`StepResult::Halted`]). This is the *observed* step: it
    /// materializes the full [`DynInstr`] an ATOM-style instrumentation
    /// pass would produce. The dispatch itself runs over the predecoded
    /// table, exactly like [`Vm::step_fast`].
    pub fn step(&mut self) -> Result<StepResult, VmError> {
        let pc = self.pc;
        let op = self.pre.op(pc).ok_or(VmError::PcOutOfRange { pc })?;

        let mut rec = DynInstr {
            pc,
            next_pc: pc + 1,
            class: self.pre.class(pc),
            reads: Default::default(),
            writes: Default::default(),
        };

        // Register fields are raw predecoded indices; index 31 is the
        // hardwired zero register (reads unrecorded, writes discarded).
        macro_rules! read_r {
            ($n:expr) => {{
                let n: u8 = $n;
                if n == 31 {
                    0
                } else {
                    let v = self.iregs[n as usize];
                    rec.reads.push((Loc::IntReg(n), v));
                    v
                }
            }};
        }
        macro_rules! read_f {
            ($n:expr) => {{
                let n: u8 = $n;
                if n == 31 {
                    0.0
                } else {
                    let v = self.fregs[n as usize];
                    rec.reads.push((Loc::FpReg(n), v.to_bits()));
                    v
                }
            }};
        }
        macro_rules! write_r {
            ($n:expr, $v:expr) => {{
                let n: u8 = $n;
                let v: u64 = $v;
                if n != 31 {
                    self.iregs[n as usize] = v;
                    rec.writes.push((Loc::IntReg(n), v));
                }
            }};
        }
        macro_rules! write_f {
            ($n:expr, $v:expr) => {{
                let n: u8 = $n;
                let v: f64 = $v;
                if n != 31 {
                    self.fregs[n as usize] = v;
                    rec.writes.push((Loc::FpReg(n), v.to_bits()));
                }
            }};
        }

        match op {
            POp::IntRR { op, rd, ra, rb } => {
                let a = read_r!(ra);
                let b = read_r!(rb);
                write_r!(rd, eval_int_op(op, a, b));
            }
            POp::IntRI { op, rd, ra, imm } => {
                let a = read_r!(ra);
                write_r!(rd, eval_int_op(op, a, imm));
            }
            POp::Li { rd, imm } => {
                write_r!(rd, imm);
            }
            POp::Fp { op, fd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                write_f!(fd, v);
            }
            POp::FpUn { op, fd, fa } => {
                let a = read_f!(fa);
                let v = match op {
                    FpUnOp::Sqrt => a.sqrt(),
                    FpUnOp::Neg => -a,
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Mov => a,
                };
                write_f!(fd, v);
            }
            POp::FpCmp { op, rd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpCmpOp::Eq => a == b,
                    FpCmpOp::Lt => a < b,
                    FpCmpOp::Le => a <= b,
                } as u64;
                write_r!(rd, v);
            }
            POp::LoadInt { rd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp);
                let v = self.mem.read(addr);
                rec.reads.push((Loc::Mem(addr), v));
                write_r!(rd, v);
            }
            POp::StoreInt { rs, base, disp } => {
                let v = read_r!(rs);
                let addr = read_r!(base).wrapping_add(disp);
                self.mem.write(addr, v);
                rec.writes.push((Loc::Mem(addr), v));
            }
            POp::LoadFp { fd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp);
                let bits = self.mem.read(addr);
                rec.reads.push((Loc::Mem(addr), bits));
                write_f!(fd, f64::from_bits(bits));
            }
            POp::StoreFp { fs, base, disp } => {
                let v = read_f!(fs);
                let addr = read_r!(base).wrapping_add(disp);
                self.mem.write(addr, v.to_bits());
                rec.writes.push((Loc::Mem(addr), v.to_bits()));
            }
            POp::Itof { fd, ra } => {
                let a = read_r!(ra);
                write_f!(fd, a as i64 as f64);
            }
            POp::Ftoi { rd, fa } => {
                let a = read_f!(fa);
                // `as` saturates on overflow and maps NaN to 0: deterministic.
                write_r!(rd, a as i64 as u64);
            }
            POp::Branch { cond, ra, target } => {
                let v = read_r!(ra);
                if cond.eval(v) {
                    rec.next_pc = target;
                }
            }
            POp::Jump { target } => {
                rec.next_pc = target;
            }
            POp::Jsr { link, target } => {
                write_r!(link, (pc + 1) as u64);
                rec.next_pc = target;
            }
            POp::JmpReg { ra } => {
                let v = read_r!(ra);
                if v as usize >= self.pre.len() {
                    return Err(VmError::BadJumpTarget { pc, target: v });
                }
                rec.next_pc = v as u32;
            }
            POp::Halt => return Ok(StepResult::Halted),
            POp::Nop => {}
        }

        self.pc = rec.next_pc;
        self.executed += 1;
        Ok(StepResult::Executed(rec))
    }

    /// Execute one instruction with no dynamic record: the allocation-free
    /// fast path. Architectural effects, error cases, and the `executed`
    /// counter are identical to [`Vm::step`]; the only difference is that
    /// nothing is materialized for an observer.
    pub fn step_fast(&mut self) -> Result<FastStep, VmError> {
        let pc = self.pc;
        let op = self.pre.op(pc).ok_or(VmError::PcOutOfRange { pc })?;
        let mut next_pc = pc + 1;

        macro_rules! read_r {
            ($n:expr) => {{
                let n: u8 = $n;
                if n == 31 {
                    0
                } else {
                    self.iregs[n as usize]
                }
            }};
        }
        macro_rules! read_f {
            ($n:expr) => {{
                let n: u8 = $n;
                if n == 31 {
                    0.0
                } else {
                    self.fregs[n as usize]
                }
            }};
        }
        macro_rules! write_r {
            ($n:expr, $v:expr) => {{
                let n: u8 = $n;
                let v: u64 = $v;
                if n != 31 {
                    self.iregs[n as usize] = v;
                }
            }};
        }
        macro_rules! write_f {
            ($n:expr, $v:expr) => {{
                let n: u8 = $n;
                let v: f64 = $v;
                if n != 31 {
                    self.fregs[n as usize] = v;
                }
            }};
        }

        match op {
            POp::IntRR { op, rd, ra, rb } => {
                let a = read_r!(ra);
                let b = read_r!(rb);
                write_r!(rd, eval_int_op(op, a, b));
            }
            POp::IntRI { op, rd, ra, imm } => {
                let a = read_r!(ra);
                write_r!(rd, eval_int_op(op, a, imm));
            }
            POp::Li { rd, imm } => {
                write_r!(rd, imm);
            }
            POp::Fp { op, fd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                };
                write_f!(fd, v);
            }
            POp::FpUn { op, fd, fa } => {
                let a = read_f!(fa);
                let v = match op {
                    FpUnOp::Sqrt => a.sqrt(),
                    FpUnOp::Neg => -a,
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Mov => a,
                };
                write_f!(fd, v);
            }
            POp::FpCmp { op, rd, fa, fb } => {
                let a = read_f!(fa);
                let b = read_f!(fb);
                let v = match op {
                    FpCmpOp::Eq => a == b,
                    FpCmpOp::Lt => a < b,
                    FpCmpOp::Le => a <= b,
                } as u64;
                write_r!(rd, v);
            }
            POp::LoadInt { rd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp);
                write_r!(rd, self.mem.read(addr));
            }
            POp::StoreInt { rs, base, disp } => {
                let v = read_r!(rs);
                let addr = read_r!(base).wrapping_add(disp);
                self.mem.write(addr, v);
            }
            POp::LoadFp { fd, base, disp } => {
                let addr = read_r!(base).wrapping_add(disp);
                write_f!(fd, f64::from_bits(self.mem.read(addr)));
            }
            POp::StoreFp { fs, base, disp } => {
                let v = read_f!(fs);
                let addr = read_r!(base).wrapping_add(disp);
                self.mem.write(addr, v.to_bits());
            }
            POp::Itof { fd, ra } => {
                let a = read_r!(ra);
                write_f!(fd, a as i64 as f64);
            }
            POp::Ftoi { rd, fa } => {
                let a = read_f!(fa);
                // `as` saturates on overflow and maps NaN to 0: deterministic.
                write_r!(rd, a as i64 as u64);
            }
            POp::Branch { cond, ra, target } => {
                let v = read_r!(ra);
                if cond.eval(v) {
                    next_pc = target;
                }
            }
            POp::Jump { target } => {
                next_pc = target;
            }
            POp::Jsr { link, target } => {
                write_r!(link, (pc + 1) as u64);
                next_pc = target;
            }
            POp::JmpReg { ra } => {
                let v = read_r!(ra);
                if v as usize >= self.pre.len() {
                    return Err(VmError::BadJumpTarget { pc, target: v });
                }
                next_pc = v as u32;
            }
            POp::Halt => return Ok(FastStep::Halted),
            POp::Nop => {}
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(FastStep::Executed(self.pre.class(pc)))
    }

    /// Run until `halt` or until `budget` instructions have executed,
    /// pushing every record to `sink`.
    pub fn run(&mut self, budget: u64, sink: &mut impl StreamSink) -> Result<RunOutcome, VmError> {
        let mut n = 0u64;
        while n < budget {
            match self.step()? {
                StepResult::Executed(rec) => {
                    sink.observe(&rec);
                    n += 1;
                }
                StepResult::Halted => {
                    sink.finish();
                    return Ok(RunOutcome::Halted { executed: n });
                }
            }
        }
        sink.finish();
        Ok(RunOutcome::BudgetExhausted { executed: n })
    }

    /// Run until `halt` or until `budget` instructions have executed, on
    /// the allocation-free fast path. No records are produced.
    pub fn run_fast(&mut self, budget: u64) -> Result<RunOutcome, VmError> {
        let mut n = 0u64;
        while n < budget {
            match self.step_fast()? {
                FastStep::Executed(_) => n += 1,
                FastStep::Halted => return Ok(RunOutcome::Halted { executed: n }),
            }
        }
        Ok(RunOutcome::BudgetExhausted { executed: n })
    }

    /// Run in the given [`ExecMode`]. `Observed` pushes every record to
    /// `sink`; `Fast` produces no records (the sink only sees `finish`).
    pub fn run_mode(
        &mut self,
        budget: u64,
        mode: ExecMode,
        sink: &mut impl StreamSink,
    ) -> Result<RunOutcome, VmError> {
        match mode {
            ExecMode::Observed => self.run(budget, sink),
            ExecMode::Fast => {
                let outcome = self.run_fast(budget)?;
                sink.finish();
                Ok(outcome)
            }
        }
    }
}

#[inline]
fn eval_int_op(op: IntOp, a: u64, b: u64) -> u64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Sll => a << (b & 63),
        IntOp::Srl => a >> (b & 63),
        IntOp::Sra => ((a as i64) >> (b & 63)) as u64,
        IntOp::CmpEq => (a == b) as u64,
        IntOp::CmpLt => ((a as i64) < (b as i64)) as u64,
        IntOp::CmpLe => ((a as i64) <= (b as i64)) as u64,
        IntOp::CmpUlt => (a < b) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;
    use tlr_isa::CollectSink;

    fn run_source(src: &str, budget: u64) -> (Vm, Vec<DynInstr>, RunOutcome) {
        let prog = assemble(src).expect("assembly failed");
        let mut vm = Vm::new(&prog);
        let mut sink = CollectSink::default();
        let outcome = vm.run(budget, &mut sink).expect("vm error");
        (vm, sink.records, outcome)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let (vm, recs, outcome) = run_source(
            r#"
            li      r1, 0        ; sum
            li      r2, 5        ; i
    loop:   addq    r1, r1, r2
            subq    r2, r2, 1
            bnez    r2, loop
            halt
            "#,
            1000,
        );
        assert!(matches!(outcome, RunOutcome::Halted { .. }));
        assert_eq!(vm.peek_loc(Loc::IntReg(1)), 15); // 5+4+3+2+1
                                                     // 2 setup + 5 iterations * 3 instructions
        assert_eq!(recs.len(), 17);
    }

    #[test]
    fn loads_and_stores_record_memory_locations() {
        let (vm, recs, _) = run_source(
            r#"
            .org 100
    v:      .word 7
            li      r1, v
            ldq     r2, 0(r1)
            addq    r2, r2, 1
            stq     r2, 1(r1)
            halt
            "#,
            100,
        );
        assert_eq!(vm.memory().read(101), 8);
        let load = &recs[1];
        assert!(load
            .reads
            .iter()
            .any(|(l, v)| *l == Loc::Mem(100) && *v == 7));
        let store = &recs[3];
        assert!(store
            .writes
            .iter()
            .any(|(l, v)| *l == Loc::Mem(101) && *v == 8));
    }

    #[test]
    fn zero_register_is_not_a_location() {
        let (_, recs, _) = run_source(
            r#"
            addq    zero, zero, 5   ; write discarded, reads unrecorded
            mov     r1, zero
            halt
            "#,
            10,
        );
        assert!(recs[0].reads.is_empty());
        assert!(recs[0].writes.is_empty());
        // mov r1, zero reads nothing (zero reg) and writes r1 = 0.
        assert!(recs[1].reads.is_empty());
        assert_eq!(recs[1].writes.as_slice(), &[(Loc::IntReg(1), 0)]);
    }

    #[test]
    fn fp_pipeline_works() {
        let (vm, _, _) = run_source(
            r#"
            .org 0
    a:      .double 2.25
            li      r1, a
            ldt     f1, 0(r1)
            sqrtt   f2, f1
            addt    f3, f2, f2
            stt     f3, 1(r1)
            halt
            "#,
            100,
        );
        assert_eq!(vm.memory().read_f64(1), 3.0);
    }

    #[test]
    fn fp_compare_and_branch() {
        let (vm, _, _) = run_source(
            r#"
            .org 0
    vals:   .double 1.5, 2.5
            li      r1, vals
            ldt     f1, 0(r1)
            ldt     f2, 1(r1)
            cmptlt  r2, f1, f2
            beqz    r2, nope
            li      r3, 111
            halt
    nope:   li      r3, 222
            halt
            "#,
            100,
        );
        assert_eq!(vm.peek_loc(Loc::IntReg(3)), 111);
    }

    #[test]
    fn jsr_and_ret() {
        let (vm, recs, _) = run_source(
            r#"
            jsr     r26, fn
            li      r2, 99
            halt
    fn:     li      r1, 42
            ret     r26
            "#,
            100,
        );
        assert_eq!(vm.peek_loc(Loc::IntReg(1)), 42);
        assert_eq!(vm.peek_loc(Loc::IntReg(2)), 99);
        // jsr writes the link register.
        assert_eq!(recs[0].writes.as_slice(), &[(Loc::IntReg(26), 1)]);
        assert_eq!(recs[0].next_pc, 3);
    }

    #[test]
    fn budget_exhaustion() {
        let (_, recs, outcome) = run_source("loop: br loop\n", 25);
        assert_eq!(outcome, RunOutcome::BudgetExhausted { executed: 25 });
        assert_eq!(recs.len(), 25);
    }

    #[test]
    fn pc_out_of_range_reported() {
        // A program with no halt falls off the end.
        let prog = assemble("nop\n").unwrap();
        let mut vm = Vm::new(&prog);
        let mut sink = CollectSink::default();
        let err = vm.run(10, &mut sink).unwrap_err();
        assert_eq!(err, VmError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn bad_indirect_jump_reported() {
        let (prog, _) = (assemble("li r1, 999\njmp r1\nhalt\n").unwrap(), ());
        let mut vm = Vm::new(&prog);
        assert!(matches!(vm.step(), Ok(StepResult::Executed(_))));
        assert_eq!(
            vm.step().unwrap_err(),
            VmError::BadJumpTarget { pc: 1, target: 999 }
        );
    }

    #[test]
    fn apply_trace_updates_state_and_pc() {
        let prog = assemble("nop\nnop\nnop\nhalt\n").unwrap();
        let mut vm = Vm::new(&prog);
        vm.apply_trace(
            [
                (Loc::IntReg(5), 77),
                (Loc::Mem(10), 88),
                (Loc::FpReg(2), 2.5f64.to_bits()),
            ],
            3,
        )
        .unwrap();
        assert_eq!(vm.pc(), 3);
        assert_eq!(vm.peek_loc(Loc::IntReg(5)), 77);
        assert_eq!(vm.peek_loc(Loc::Mem(10)), 88);
        assert_eq!(vm.peek_loc(Loc::FpReg(2)), 2.5f64.to_bits());
        // Continuing from the applied PC halts immediately.
        assert_eq!(vm.step().unwrap(), StepResult::Halted);
    }

    #[test]
    fn apply_trace_rejects_bad_next_pc() {
        let prog = assemble("halt\n").unwrap();
        let mut vm = Vm::new(&prog);
        assert!(vm.apply_trace([], 5).is_err());
    }

    #[test]
    fn int_op_semantics() {
        assert_eq!(eval_int_op(IntOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_int_op(IntOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_int_op(IntOp::Mul, u64::MAX, 2), u64::MAX - 1); // wraps mod 2^64
        assert_eq!(eval_int_op(IntOp::Sll, 1, 65), 2); // shift mod 64
        assert_eq!(eval_int_op(IntOp::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(eval_int_op(IntOp::CmpLt, (-1i64) as u64, 0), 1);
        assert_eq!(eval_int_op(IntOp::CmpUlt, (-1i64) as u64, 0), 0);
        assert_eq!(eval_int_op(IntOp::CmpLe, 3, 3), 1);
        assert_eq!(eval_int_op(IntOp::CmpEq, 3, 4), 0);
    }

    // Exercises every opcode family: int RR + RI forms, li, FP
    // arithmetic/unary/compare, int and FP loads/stores, conversions,
    // branches, jsr/ret, and an indirect jump.
    const ALL_OPS: &str = r#"
            .org 0x80
    tab:    .double 2.25, 4.0
            li      r1, tab
            ldt     f1, 0(r1)
            ldt     f2, 1(r1)
            addt    f3, f1, f2
            subt    f4, f3, f1
            mult    f5, f4, f2
            divt    f6, f5, f2
            sqrtt   f7, f2
            negt    f8, f7
            cmptlt  r2, f1, f2
            ftoi    r3, f6
            itof    f9, r3
            stt     f9, 4(r1)
            li      r4, 6
    loop:   addq    r5, r5, r4
            mulq    r6, r4, r4
            and     r7, r6, 0xff
            xor     r8, r7, r5
            srl     r9, r8, 2
            stq     r9, 8(r1)
            ldq     r10, 8(r1)
            subq    r4, r4, 1
            bnez    r4, loop
            jsr     r26, fn
            li      r11, 7
            halt
    fn:     cmpult  r12, r5, r10
            ret     r26
    "#;

    #[test]
    fn fast_path_matches_observed_execution() {
        let prog = assemble(ALL_OPS).unwrap();
        let mut obs = Vm::new(&prog);
        let mut sink = CollectSink::default();
        let obs_outcome = obs.run(100_000, &mut sink).unwrap();
        let mut fast = Vm::new(&prog);
        let fast_outcome = fast.run_fast(100_000).unwrap();
        assert_eq!(obs_outcome, fast_outcome);
        assert_eq!(obs.executed(), fast.executed());
        assert_eq!(obs.pc(), fast.pc());
        assert_eq!(obs.state_digest(), fast.state_digest());
        // The observed run did record the stream.
        assert_eq!(sink.records.len() as u64, obs.executed());
    }

    #[test]
    fn run_mode_selects_the_step_path() {
        let prog = assemble(ALL_OPS).unwrap();
        let mut a = Vm::new(&prog);
        let mut b = Vm::new(&prog);
        let mut sink_a = CollectSink::default();
        let mut sink_b = CollectSink::default();
        let oa = a
            .run_mode(100_000, ExecMode::Observed, &mut sink_a)
            .unwrap();
        let ob = b.run_mode(100_000, ExecMode::Fast, &mut sink_b).unwrap();
        assert_eq!(oa, ob);
        assert_eq!(a.state_digest(), b.state_digest());
        assert!(!sink_a.records.is_empty());
        assert!(sink_b.records.is_empty());
    }

    #[test]
    fn fast_path_reports_identical_errors() {
        let prog = assemble("li r1, 999\njmp r1\nhalt\n").unwrap();
        let mut vm = Vm::new(&prog);
        assert!(matches!(vm.step_fast(), Ok(FastStep::Executed(_))));
        assert_eq!(
            vm.step_fast().unwrap_err(),
            VmError::BadJumpTarget { pc: 1, target: 999 }
        );
        let prog = assemble("nop\n").unwrap();
        let mut vm = Vm::new(&prog);
        assert_eq!(
            vm.run_fast(10).unwrap_err(),
            VmError::PcOutOfRange { pc: 1 }
        );
    }

    #[test]
    fn determinism_same_program_same_stream() {
        let src = r#"
            li      r1, 10
            li      r2, 0x100
    loop:   stq     r1, 0(r2)
            ldq     r3, 0(r2)
            mulq    r3, r3, r3
            addq    r2, r2, 1
            subq    r1, r1, 1
            bnez    r1, loop
            halt
        "#;
        let (_, a, _) = run_source(src, 10_000);
        let (_, b, _) = run_source(src, 10_000);
        assert_eq!(a, b);
    }
}
