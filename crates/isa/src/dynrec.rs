//! Dynamic instruction records — the trace format every analysis consumes.
//!
//! One [`DynInstr`] is the information an ATOM instrumentation routine
//! would capture per executed instruction: the PC, the ordered sequence of
//! (location, value) pairs the instruction *read*, the ordered sequence it
//! *wrote*, the class (for latency lookup), and the address of the next
//! instruction executed. The paper's definitions map directly onto it:
//!
//! * an instruction's **input** is its read sequence (`IL`/`IV` in the
//!   appendix), covering register sources *and* the memory word a load
//!   reads;
//! * its **output** is the write sequence (`OL`/`OV`), covering the
//!   destination register or the memory word a store writes;
//! * instruction-level reusability compares the input signature against
//!   previously observed inputs of the same static instruction (same PC).

use crate::latency::OpClass;
use crate::reg::Loc;
use tlr_util::fxhash::Signature128;
use tlr_util::InlineVec;

/// Maximum locations an instruction can read: a load reads base register +
/// memory word (2); a store reads value + base (2); a three-register FP op
/// reads 2; `JmpReg` reads 1. The extra headroom is for future ops.
pub const MAX_READS: usize = 4;

/// Maximum locations an instruction can write: one register or one memory
/// word, plus headroom for link-register writes by `jsr` (link only = 1).
pub const MAX_WRITES: usize = 2;

/// The read set of a dynamic instruction (ordered as performed).
pub type ReadSet = InlineVec<(Loc, u64), MAX_READS>;

/// The write set of a dynamic instruction (ordered as performed).
pub type WriteSet = InlineVec<(Loc, u64), MAX_WRITES>;

/// One executed instruction, as observed by the instrumentation layer.
#[derive(Clone, Debug, PartialEq)]
pub struct DynInstr {
    /// Address (instruction index) of this instruction.
    pub pc: u32,
    /// Address of the next instruction executed after this one.
    pub next_pc: u32,
    /// Latency class.
    pub class: OpClass,
    /// Ordered (location, value) pairs read.
    pub reads: ReadSet,
    /// Ordered (location, value) pairs written.
    pub writes: WriteSet,
}

impl DynInstr {
    /// 128-bit signature of the instruction's input: folds the ordered
    /// read locations and their values. Two dynamic instances of the same
    /// static instruction with equal signatures have (up to hash
    /// collision) identical inputs, hence identical outputs — the
    /// instruction-level reuse test of §4.2.
    ///
    /// The *locations* are folded as well as the values because a load may
    /// read a different address (different base register value) whose cell
    /// happens to contain the same value; the paper's input definition
    /// includes the identity of the storage location.
    pub fn input_signature(&self) -> u128 {
        let mut sig = Signature128::new(self.pc as u64);
        for (loc, value) in self.reads.iter() {
            sig.push(loc.encode());
            sig.push(*value);
        }
        sig.finish()
    }

    /// 128-bit signature of the instruction's output (locations + values +
    /// next PC). Used by tests to assert the determinism property that the
    /// reuse test relies on: equal inputs ⇒ equal outputs.
    pub fn output_signature(&self) -> u128 {
        let mut sig = Signature128::new(!(self.pc as u64));
        for (loc, value) in self.writes.iter() {
            sig.push(loc.encode());
            sig.push(*value);
        }
        sig.push(self.next_pc as u64);
        sig.finish()
    }

    /// `true` when this instruction wrote to `loc`.
    pub fn writes_loc(&self, loc: Loc) -> bool {
        self.writes.iter().any(|(l, _)| *l == loc)
    }

    /// `true` if the instruction is a taken or not-taken branch-class op.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// Number of memory locations in the read set.
    pub fn mem_reads(&self) -> usize {
        self.reads.iter().filter(|(l, _)| l.is_mem()).count()
    }

    /// Number of memory locations in the write set.
    pub fn mem_writes(&self) -> usize {
        self.writes.iter().filter(|(l, _)| l.is_mem()).count()
    }
}

/// Streaming consumer of dynamic instructions.
///
/// The functional simulator pushes each executed instruction to a sink so
/// that analyses never materialize multi-million-record traces. Sinks
/// compose via [`Tee`].
pub trait StreamSink {
    /// Observe one executed instruction.
    fn observe(&mut self, d: &DynInstr);

    /// Called once when the producing run finishes (normally or on budget
    /// exhaustion). Default: nothing.
    fn finish(&mut self) {}
}

/// A sink that discards everything (for pure-execution timing runs).
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl StreamSink for NullSink {
    #[inline]
    fn observe(&mut self, _d: &DynInstr) {}
}

/// A sink that stores every record (tests and small examples only).
#[derive(Default, Debug)]
pub struct CollectSink {
    /// Collected records in execution order.
    pub records: Vec<DynInstr>,
}

impl StreamSink for CollectSink {
    #[inline]
    fn observe(&mut self, d: &DynInstr) {
        self.records.push(d.clone());
    }
}

/// Fan one stream out to two sinks.
pub struct Tee<'a, A: StreamSink, B: StreamSink> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<'a, A: StreamSink, B: StreamSink> StreamSink for Tee<'a, A, B> {
    #[inline]
    fn observe(&mut self, d: &DynInstr) {
        self.a.observe(d);
        self.b.observe(d);
    }

    fn finish(&mut self) {
        self.a.finish();
        self.b.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pc: u32, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    #[test]
    fn input_signature_depends_on_values() {
        let a = sample(5, &[(Loc::IntReg(1), 10), (Loc::IntReg(2), 20)], &[]);
        let b = sample(5, &[(Loc::IntReg(1), 10), (Loc::IntReg(2), 21)], &[]);
        let c = sample(5, &[(Loc::IntReg(1), 10), (Loc::IntReg(2), 20)], &[]);
        assert_ne!(a.input_signature(), b.input_signature());
        assert_eq!(a.input_signature(), c.input_signature());
    }

    #[test]
    fn input_signature_depends_on_locations() {
        let a = sample(5, &[(Loc::IntReg(1), 10)], &[]);
        let b = sample(5, &[(Loc::IntReg(2), 10)], &[]);
        let c = sample(5, &[(Loc::Mem(1), 10)], &[]);
        assert_ne!(a.input_signature(), b.input_signature());
        assert_ne!(a.input_signature(), c.input_signature());
    }

    #[test]
    fn input_signature_depends_on_pc() {
        let a = sample(5, &[(Loc::IntReg(1), 10)], &[]);
        let b = sample(6, &[(Loc::IntReg(1), 10)], &[]);
        assert_ne!(a.input_signature(), b.input_signature());
    }

    #[test]
    fn mem_counts() {
        let d = sample(
            0,
            &[(Loc::IntReg(1), 1), (Loc::Mem(100), 2)],
            &[(Loc::IntReg(3), 2)],
        );
        assert_eq!(d.mem_reads(), 1);
        assert_eq!(d.mem_writes(), 0);
    }

    #[test]
    fn tee_feeds_both() {
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        {
            let mut tee = Tee {
                a: &mut a,
                b: &mut b,
            };
            tee.observe(&sample(1, &[], &[]));
            tee.observe(&sample(2, &[], &[]));
        }
        assert_eq!(a.records.len(), 2);
        assert_eq!(b.records.len(), 2);
        assert_eq!(a.records[1].pc, 2);
    }
}
