#![warn(missing_docs)]
//! # tlr-isa
//!
//! The instruction-set substrate for the Trace-Level Reuse reproduction.
//!
//! The paper's experiments ran DEC Alpha binaries of SPEC95 under ATOM and
//! used Alpha 21164 instruction latencies. We do not have those binaries
//! (or an Alpha), so this crate defines a compact **Alpha-flavoured 64-bit
//! load/store ISA** with the properties the study actually depends on:
//!
//! * a RISC register file split into 32 integer and 32 floating-point
//!   registers, with `r31`/`f31` hardwired to zero (Alpha convention);
//! * word-granular memory (one 64-bit value per address), matching the
//!   paper's treatment of "memory locations" as unit storage cells;
//! * instruction classes with distinct latencies (integer ALU, integer
//!   multiply, loads/stores, branches, FP add/mul/div/sqrt, conversions),
//!   with the [`latency::Alpha21164`] table transcribed from the 21164
//!   hardware reference manual;
//! * a [`DynInstr`] record per executed instruction carrying the exact
//!   information an ATOM instrumentation pass would produce: PC, the
//!   sequence of (location, value) pairs read, the sequence written, and
//!   the next PC.
//!
//! Everything downstream — the functional simulator, the Austin–Sohi
//! timing analysis and the reuse engines — is written against these types.

pub mod disasm;
pub mod dynrec;
pub mod instr;
pub mod latency;
pub mod predecode;
pub mod reg;

pub use dynrec::{CollectSink, DynInstr, NullSink, ReadSet, StreamSink, Tee, WriteSet};
pub use instr::{BranchCond, CodeAddr, FpCmpOp, FpOp, FpUnOp, Instr, IntOp, Operand};
pub use latency::{Alpha21164, ClassMix, CustomLatency, LatencyModel, OpClass, UnitLatency};
pub use predecode::{POp, Predecoded};
pub use reg::{FReg, Loc, Reg, NUM_FREGS, NUM_IREGS};
