//! Predecoded program form — the dense dispatch table behind the
//! throughput engine.
//!
//! [`Instr`] is the *assembler's* view of an instruction: nested enums
//! ([`Operand`]), typed registers, and displacement/immediate fields that
//! still need sign-extension at execution time. Interpreting it directly
//! makes every step re-pay that decoding. [`Predecoded`] flattens a
//! program once into a table of [`POp`]s — raw register indices,
//! immediates pre-extended to 64 bits, the register/immediate operand
//! split resolved into distinct opcodes — plus a parallel table of
//! precomputed [`OpClass`]es, so the hot loop is a single `match` over a
//! dense, cache-friendly array with no per-step conversions.
//!
//! The table is pure derived data: it changes nothing observable about
//! execution, and `tlr-vm` asserts that the predecoded interpreter and
//! the [`Instr`]-walking reference produce identical dynamic streams.

use crate::instr::{BranchCond, FpCmpOp, FpOp, FpUnOp, Instr, IntOp, Operand};
use crate::latency::OpClass;

/// One predecoded operation. Register fields are raw indices in `0..32`
/// (`31` is the hardwired zero register); immediates and displacements
/// are pre-sign-extended to 64 bits so execution is a single wrapping
/// add; register-vs-immediate second operands are split into distinct
/// variants so the hot loop never re-inspects an [`Operand`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum POp {
    /// `rd = ra <op> rb` (register second operand).
    IntRR {
        /// Operation.
        op: IntOp,
        /// Destination register index.
        rd: u8,
        /// First source register index.
        ra: u8,
        /// Second source register index.
        rb: u8,
    },
    /// `rd = ra <op> imm` (immediate pre-extended to 64 bits).
    IntRI {
        /// Operation.
        op: IntOp,
        /// Destination register index.
        rd: u8,
        /// First source register index.
        ra: u8,
        /// Sign-extended immediate.
        imm: u64,
    },
    /// `rd = imm`.
    Li {
        /// Destination register index.
        rd: u8,
        /// Immediate bit pattern.
        imm: u64,
    },
    /// `fd = fa <op> fb`.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination FP register index.
        fd: u8,
        /// First source FP register index.
        fa: u8,
        /// Second source FP register index.
        fb: u8,
    },
    /// `fd = <op> fa`.
    FpUn {
        /// Operation.
        op: FpUnOp,
        /// Destination FP register index.
        fd: u8,
        /// Source FP register index.
        fa: u8,
    },
    /// `rd = (fa <cond> fb) as u64`.
    FpCmp {
        /// Predicate.
        op: FpCmpOp,
        /// Destination integer register index.
        rd: u8,
        /// First source FP register index.
        fa: u8,
        /// Second source FP register index.
        fb: u8,
    },
    /// `rd = MEM[base + disp]`.
    LoadInt {
        /// Destination register index.
        rd: u8,
        /// Base address register index.
        base: u8,
        /// Sign-extended word displacement.
        disp: u64,
    },
    /// `MEM[base + disp] = rs`.
    StoreInt {
        /// Value source register index.
        rs: u8,
        /// Base address register index.
        base: u8,
        /// Sign-extended word displacement.
        disp: u64,
    },
    /// `fd = MEM[base + disp]` as an IEEE double.
    LoadFp {
        /// Destination FP register index.
        fd: u8,
        /// Base address register index.
        base: u8,
        /// Sign-extended word displacement.
        disp: u64,
    },
    /// `MEM[base + disp] = fs` (bit pattern).
    StoreFp {
        /// Value source FP register index.
        fs: u8,
        /// Base address register index.
        base: u8,
        /// Sign-extended word displacement.
        disp: u64,
    },
    /// `fd = (ra as i64) as f64`.
    Itof {
        /// Destination FP register index.
        fd: u8,
        /// Source register index.
        ra: u8,
    },
    /// `rd = fa as i64` (saturating).
    Ftoi {
        /// Destination integer register index.
        rd: u8,
        /// Source FP register index.
        fa: u8,
    },
    /// Conditional branch on an integer register.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Tested register index.
        ra: u8,
        /// Taken target (instruction index).
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target (instruction index).
        target: u32,
    },
    /// Jump and link.
    Jsr {
        /// Link register index.
        link: u8,
        /// Target (instruction index).
        target: u32,
    },
    /// Indirect jump through a register.
    JmpReg {
        /// Register index holding the target.
        ra: u8,
    },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

impl POp {
    /// Predecode one static instruction.
    pub fn of(instr: &Instr) -> POp {
        match *instr {
            Instr::IntOp { op, rd, ra, rb } => match rb {
                Operand::Reg(r) => POp::IntRR {
                    op,
                    rd: rd.index(),
                    ra: ra.index(),
                    rb: r.index(),
                },
                Operand::Imm(v) => POp::IntRI {
                    op,
                    rd: rd.index(),
                    ra: ra.index(),
                    imm: v as i64 as u64,
                },
            },
            Instr::Li { rd, imm } => POp::Li {
                rd: rd.index(),
                imm: imm as u64,
            },
            Instr::FpOp { op, fd, fa, fb } => POp::Fp {
                op,
                fd: fd.index(),
                fa: fa.index(),
                fb: fb.index(),
            },
            Instr::FpUn { op, fd, fa } => POp::FpUn {
                op,
                fd: fd.index(),
                fa: fa.index(),
            },
            Instr::FpCmp { op, rd, fa, fb } => POp::FpCmp {
                op,
                rd: rd.index(),
                fa: fa.index(),
                fb: fb.index(),
            },
            Instr::LoadInt { rd, base, disp } => POp::LoadInt {
                rd: rd.index(),
                base: base.index(),
                disp: disp as i64 as u64,
            },
            Instr::StoreInt { rs, base, disp } => POp::StoreInt {
                rs: rs.index(),
                base: base.index(),
                disp: disp as i64 as u64,
            },
            Instr::LoadFp { fd, base, disp } => POp::LoadFp {
                fd: fd.index(),
                base: base.index(),
                disp: disp as i64 as u64,
            },
            Instr::StoreFp { fs, base, disp } => POp::StoreFp {
                fs: fs.index(),
                base: base.index(),
                disp: disp as i64 as u64,
            },
            Instr::Itof { fd, ra } => POp::Itof {
                fd: fd.index(),
                ra: ra.index(),
            },
            Instr::Ftoi { rd, fa } => POp::Ftoi {
                rd: rd.index(),
                fa: fa.index(),
            },
            Instr::Branch { cond, ra, target } => POp::Branch {
                cond,
                ra: ra.index(),
                target,
            },
            Instr::Jump { target } => POp::Jump { target },
            Instr::Jsr { link, target } => POp::Jsr {
                link: link.index(),
                target,
            },
            Instr::JmpReg { ra } => POp::JmpReg { ra: ra.index() },
            Instr::Halt => POp::Halt,
            Instr::Nop => POp::Nop,
        }
    }
}

/// A program predecoded into dense dispatch form: one [`POp`] per static
/// instruction plus a parallel table of precomputed [`OpClass`]es. Built
/// once per program; indexed by PC on every step.
#[derive(Clone, Debug)]
pub struct Predecoded {
    ops: Box<[POp]>,
    classes: Box<[OpClass]>,
}

impl Predecoded {
    /// Predecode a program's instruction array.
    pub fn of(instrs: &[Instr]) -> Predecoded {
        Predecoded {
            ops: instrs.iter().map(POp::of).collect(),
            classes: instrs.iter().map(OpClass::of).collect(),
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The predecoded op at `pc`, or `None` past the end of the program.
    #[inline]
    pub fn op(&self, pc: u32) -> Option<POp> {
        self.ops.get(pc as usize).copied()
    }

    /// Precomputed class of the instruction at `pc`. Panics out of range
    /// (callers fetch the op first).
    #[inline]
    pub fn class(&self, pc: u32) -> OpClass {
        self.classes[pc as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn predecode_resolves_operand_split_and_extends_immediates() {
        let rr = Instr::IntOp {
            op: IntOp::Add,
            rd: Reg::new(1),
            ra: Reg::new(2),
            rb: Operand::Reg(Reg::new(3)),
        };
        assert_eq!(
            POp::of(&rr),
            POp::IntRR {
                op: IntOp::Add,
                rd: 1,
                ra: 2,
                rb: 3
            }
        );
        let ri = Instr::IntOp {
            op: IntOp::Sub,
            rd: Reg::new(1),
            ra: Reg::new(2),
            rb: Operand::Imm(-5),
        };
        assert_eq!(
            POp::of(&ri),
            POp::IntRI {
                op: IntOp::Sub,
                rd: 1,
                ra: 2,
                imm: (-5i64) as u64
            }
        );
        let ld = Instr::LoadInt {
            rd: Reg::new(4),
            base: Reg::new(5),
            disp: -1,
        };
        assert_eq!(
            POp::of(&ld),
            POp::LoadInt {
                rd: 4,
                base: 5,
                disp: u64::MAX
            }
        );
    }

    #[test]
    fn table_is_parallel_and_classes_precomputed() {
        let instrs = [
            Instr::Li {
                rd: Reg::new(1),
                imm: 7,
            },
            Instr::FpUn {
                op: FpUnOp::Sqrt,
                fd: FReg::new(0),
                fa: FReg::new(1),
            },
            Instr::Halt,
        ];
        let pre = Predecoded::of(&instrs);
        assert_eq!(pre.len(), 3);
        assert!(!pre.is_empty());
        for (pc, instr) in instrs.iter().enumerate() {
            assert_eq!(pre.op(pc as u32), Some(POp::of(instr)));
            assert_eq!(pre.class(pc as u32), OpClass::of(instr));
        }
        assert_eq!(pre.op(3), None);
        assert_eq!(pre.class(1), OpClass::FpSqrt);
    }
}
