//! Architectural registers and storage locations.

use std::fmt;

/// Number of integer registers (`r0..r31`).
pub const NUM_IREGS: u8 = 32;

/// Number of floating-point registers (`f0..f31`).
pub const NUM_FREGS: u8 = 32;

/// An integer register. `r31` reads as zero and discards writes
/// (Alpha convention).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r31`.
    pub const ZERO: Reg = Reg(31);

    /// Conventional stack-pointer register (`r30`), used by the assembler's
    /// call helpers. The hardware attaches no special meaning to it.
    pub const SP: Reg = Reg(30);

    /// Construct `r{n}`. Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> Reg {
        assert!(n < NUM_IREGS);
        Reg(n)
    }

    /// Register number in `0..32`.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// `true` for the hardwired-zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register. `f31` reads as +0.0 and discards writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(u8);

impl FReg {
    /// The hardwired-zero register `f31`.
    pub const ZERO: FReg = FReg(31);

    /// Construct `f{n}`. Panics if `n >= 32`.
    #[inline]
    pub const fn new(n: u8) -> FReg {
        assert!(n < NUM_FREGS);
        FReg(n)
    }

    /// Register number in `0..32`.
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// `true` for the hardwired-zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A storage location: the unit of the paper's input/output sets.
///
/// A trace's *input* is the set of locations that are read before being
/// written (live-ins) together with their values; its *output* is the set
/// of locations written. Locations are integer registers, FP registers, or
/// 64-bit memory words identified by their word address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Loc {
    /// Integer register `r{0..31}`.
    IntReg(u8),
    /// Floating-point register `f{0..31}`.
    FpReg(u8),
    /// Memory word (word-granular address).
    Mem(u64),
}

impl Loc {
    /// Dense index for register locations: integer registers map to
    /// `0..32`, FP registers to `32..64`. Memory locations have no dense
    /// index (`None`); callers keep them in a hash map instead.
    #[inline]
    pub fn reg_index(self) -> Option<usize> {
        match self {
            Loc::IntReg(n) => Some(n as usize),
            Loc::FpReg(n) => Some(32 + n as usize),
            Loc::Mem(_) => None,
        }
    }

    /// `true` for memory locations.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Loc::Mem(_))
    }

    /// Stable 64-bit encoding used in signatures: registers occupy a
    /// reserved low range that word addresses are shifted past.
    #[inline]
    pub fn encode(self) -> u64 {
        match self {
            Loc::IntReg(n) => n as u64,
            Loc::FpReg(n) => 32 + n as u64,
            // Memory addresses are word-granular; shifting by 7 bits keeps
            // the encoding injective (addresses stay below 2^57 in
            // practice — the VM's address space is far smaller).
            Loc::Mem(a) => 64 + (a << 7),
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::IntReg(n) => write!(f, "r{n}"),
            Loc::FpReg(n) => write!(f, "f{n}"),
            Loc::Mem(a) => write!(f, "[{a:#x}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_registers() {
        assert!(Reg::ZERO.is_zero());
        assert!(FReg::ZERO.is_zero());
        assert!(!Reg::new(0).is_zero());
        assert_eq!(Reg::ZERO.index(), 31);
    }

    #[test]
    #[should_panic]
    fn out_of_range_reg_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn loc_reg_index_is_dense_and_disjoint() {
        assert_eq!(Loc::IntReg(0).reg_index(), Some(0));
        assert_eq!(Loc::IntReg(31).reg_index(), Some(31));
        assert_eq!(Loc::FpReg(0).reg_index(), Some(32));
        assert_eq!(Loc::FpReg(31).reg_index(), Some(63));
        assert_eq!(Loc::Mem(0).reg_index(), None);
    }

    #[test]
    fn loc_encoding_is_injective_across_kinds() {
        let locs = [
            Loc::IntReg(0),
            Loc::IntReg(31),
            Loc::FpReg(0),
            Loc::FpReg(31),
            Loc::Mem(0),
            Loc::Mem(1),
            Loc::Mem(12345),
        ];
        for (i, a) in locs.iter().enumerate() {
            for (j, b) in locs.iter().enumerate() {
                assert_eq!(a.encode() == b.encode(), i == j, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Loc::IntReg(3).to_string(), "r3");
        assert_eq!(Loc::FpReg(7).to_string(), "f7");
        assert_eq!(Loc::Mem(16).to_string(), "[0x10]");
    }
}
