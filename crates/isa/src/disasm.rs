//! Disassembly: `Display` for [`Instr`] producing assembler-compatible
//! text. The assembler's round-trip property tests (`parse ∘ disasm = id`)
//! lean on this module, so the emitted syntax must stay in lock-step with
//! `tlr-asm`'s grammar.

use crate::instr::Instr;
use std::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::IntOp { op, rd, ra, rb } => write!(f, "{} {rd}, {ra}, {rb}", op.mnemonic()),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::FpOp { op, fd, fa, fb } => write!(f, "{} {fd}, {fa}, {fb}", op.mnemonic()),
            Instr::FpUn { op, fd, fa } => write!(f, "{} {fd}, {fa}", op.mnemonic()),
            Instr::FpCmp { op, rd, fa, fb } => write!(f, "{} {rd}, {fa}, {fb}", op.mnemonic()),
            Instr::LoadInt { rd, base, disp } => write!(f, "ldq {rd}, {disp}({base})"),
            Instr::StoreInt { rs, base, disp } => write!(f, "stq {rs}, {disp}({base})"),
            Instr::LoadFp { fd, base, disp } => write!(f, "ldt {fd}, {disp}({base})"),
            Instr::StoreFp { fs, base, disp } => write!(f, "stt {fs}, {disp}({base})"),
            Instr::Itof { fd, ra } => write!(f, "itof {fd}, {ra}"),
            Instr::Ftoi { rd, fa } => write!(f, "ftoi {rd}, {fa}"),
            Instr::Branch { cond, ra, target } => {
                write!(f, "{} {ra}, @{target}", cond.mnemonic())
            }
            Instr::Jump { target } => write!(f, "br @{target}"),
            Instr::Jsr { link, target } => write!(f, "jsr {link}, @{target}"),
            Instr::JmpReg { ra } => write!(f, "jmp {ra}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

/// Render a whole instruction sequence with addresses, one per line.
pub fn disassemble(instrs: &[Instr]) -> String {
    let mut out = String::with_capacity(instrs.len() * 24);
    for (addr, instr) in instrs.iter().enumerate() {
        out.push_str(&format!("{addr:6}:  {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, FpOp, Instr, IntOp, Operand};
    use crate::reg::{FReg, Reg};

    #[test]
    fn display_forms() {
        let i = Instr::IntOp {
            op: IntOp::Add,
            rd: Reg::new(1),
            ra: Reg::new(2),
            rb: Operand::Imm(-3),
        };
        assert_eq!(i.to_string(), "addq r1, r2, -3");

        let l = Instr::LoadInt {
            rd: Reg::new(4),
            base: Reg::new(5),
            disp: 16,
        };
        assert_eq!(l.to_string(), "ldq r4, 16(r5)");

        let b = Instr::Branch {
            cond: BranchCond::Nez,
            ra: Reg::new(6),
            target: 42,
        };
        assert_eq!(b.to_string(), "bnez r6, @42");

        let fp = Instr::FpOp {
            op: FpOp::Div,
            fd: FReg::new(1),
            fa: FReg::new(2),
            fb: FReg::new(3),
        };
        assert_eq!(fp.to_string(), "divt f1, f2, f3");
    }

    #[test]
    fn disassemble_numbers_lines() {
        let prog = vec![Instr::Nop, Instr::Halt];
        let text = disassemble(&prog);
        assert!(text.contains("0:  nop"));
        assert!(text.contains("1:  halt"));
    }
}
