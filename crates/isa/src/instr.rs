//! Static instructions of the Alpha-flavoured ISA.
//!
//! Design notes relative to the real Alpha:
//!
//! * Code addresses are instruction indices (`CodeAddr = u32`), not byte
//!   addresses — the paper's analyses only use PCs as identifiers.
//! * Integer compare instructions write `0`/`1` to an integer register;
//!   conditional branches test an integer register against zero (`beqz`,
//!   `bltz`, ...), exactly the Alpha compare-then-branch idiom.
//! * FP compares also write `0`/`1` to an *integer* register, which keeps
//!   every branch a single-register test (the real Alpha writes an FP
//!   register and has FP branch forms; folding them changes nothing the
//!   reuse study observes and keeps the ISA orthogonal).
//! * There is no integer divide (the Alpha has none either); workloads use
//!   shifts/masks or FP division.
//! * `li` loads an arbitrary 64-bit immediate in one instruction (the real
//!   Alpha needs `lda`/`ldah` sequences; collapsing them only shortens
//!   instruction counts uniformly).

use crate::reg::{FReg, Reg};
use std::fmt;

/// A code address: an index into the program's instruction array.
pub type CodeAddr = u32;

/// Second source operand of an integer operation: register or a small
/// immediate (the assembler synthesizes larger constants via `li`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand, sign-extended to 64 bits.
    Imm(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

/// Integer ALU / multiply operations (`rd = ra <op> rb`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IntOp {
    /// Wrapping 64-bit add.
    Add,
    /// Wrapping 64-bit subtract.
    Sub,
    /// Wrapping 64-bit multiply (the only long-latency integer op).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `rb & 63`).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Signed compare: `rd = (ra == rb) as u64`.
    CmpEq,
    /// Signed compare: `rd = (ra < rb) as u64`.
    CmpLt,
    /// Signed compare: `rd = (ra <= rb) as u64`.
    CmpLe,
    /// Unsigned compare: `rd = (ra < rb) as u64`.
    CmpUlt,
}

impl IntOp {
    /// Assembler mnemonic (Alpha-style `q` suffix for quadword).
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "addq",
            IntOp::Sub => "subq",
            IntOp::Mul => "mulq",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Sll => "sll",
            IntOp::Srl => "srl",
            IntOp::Sra => "sra",
            IntOp::CmpEq => "cmpeq",
            IntOp::CmpLt => "cmplt",
            IntOp::CmpLe => "cmple",
            IntOp::CmpUlt => "cmpult",
        }
    }

    /// All integer operations (used by tests and fuzzers).
    pub const ALL: [IntOp; 13] = [
        IntOp::Add,
        IntOp::Sub,
        IntOp::Mul,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Sll,
        IntOp::Srl,
        IntOp::Sra,
        IntOp::CmpEq,
        IntOp::CmpLt,
        IntOp::CmpLe,
        IntOp::CmpUlt,
    ];
}

/// Two-source floating-point operations (`fd = fa <op> fb`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpOp {
    /// IEEE double add.
    Add,
    /// IEEE double subtract.
    Sub,
    /// IEEE double multiply.
    Mul,
    /// IEEE double divide (long latency).
    Div,
}

impl FpOp {
    /// Assembler mnemonic (Alpha `t` = IEEE double).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "addt",
            FpOp::Sub => "subt",
            FpOp::Mul => "mult",
            FpOp::Div => "divt",
        }
    }

    /// All FP binary operations.
    pub const ALL: [FpOp; 4] = [FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div];
}

/// Single-source floating-point operations (`fd = <op> fa`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpUnOp {
    /// IEEE square root (long latency).
    Sqrt,
    /// Negate.
    Neg,
    /// Absolute value.
    Abs,
    /// Register move.
    Mov,
}

impl FpUnOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnOp::Sqrt => "sqrtt",
            FpUnOp::Neg => "negt",
            FpUnOp::Abs => "abst",
            FpUnOp::Mov => "fmov",
        }
    }

    /// All FP unary operations.
    pub const ALL: [FpUnOp; 4] = [FpUnOp::Sqrt, FpUnOp::Neg, FpUnOp::Abs, FpUnOp::Mov];
}

/// FP compare predicates (`rd = (fa <cond> fb) as u64`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpCmpOp {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

impl FpCmpOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Eq => "cmpteq",
            FpCmpOp::Lt => "cmptlt",
            FpCmpOp::Le => "cmptle",
        }
    }
}

/// Branch conditions testing one integer register against zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BranchCond {
    /// Branch if register == 0.
    Eqz,
    /// Branch if register != 0.
    Nez,
    /// Branch if register < 0 (signed).
    Ltz,
    /// Branch if register <= 0 (signed).
    Lez,
    /// Branch if register > 0 (signed).
    Gtz,
    /// Branch if register >= 0 (signed).
    Gez,
}

impl BranchCond {
    /// Evaluate the condition against a register value.
    #[inline]
    pub fn eval(self, v: u64) -> bool {
        let s = v as i64;
        match self {
            BranchCond::Eqz => s == 0,
            BranchCond::Nez => s != 0,
            BranchCond::Ltz => s < 0,
            BranchCond::Lez => s <= 0,
            BranchCond::Gtz => s > 0,
            BranchCond::Gez => s >= 0,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eqz => "beqz",
            BranchCond::Nez => "bnez",
            BranchCond::Ltz => "bltz",
            BranchCond::Lez => "blez",
            BranchCond::Gtz => "bgtz",
            BranchCond::Gez => "bgez",
        }
    }

    /// All branch conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eqz,
        BranchCond::Nez,
        BranchCond::Ltz,
        BranchCond::Lez,
        BranchCond::Gtz,
        BranchCond::Gez,
    ];
}

/// A static instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    /// `rd = ra <op> operand`.
    IntOp {
        /// Operation.
        op: IntOp,
        /// Destination.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source (register or immediate).
        rb: Operand,
    },
    /// `rd = imm` (64-bit immediate load).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `fd = fa <op> fb`.
    FpOp {
        /// Operation.
        op: FpOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fa: FReg,
        /// Second source.
        fb: FReg,
    },
    /// `fd = <op> fa`.
    FpUn {
        /// Operation.
        op: FpUnOp,
        /// Destination.
        fd: FReg,
        /// Source.
        fa: FReg,
    },
    /// `rd = (fa <cond> fb) as u64` — FP compare into an integer register.
    FpCmp {
        /// Predicate.
        op: FpCmpOp,
        /// Destination (integer).
        rd: Reg,
        /// First source.
        fa: FReg,
        /// Second source.
        fb: FReg,
    },
    /// `rd = MEM[ra + disp]` (integer load, word-granular address).
    LoadInt {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word displacement.
        disp: i32,
    },
    /// `MEM[base + disp] = rs`.
    StoreInt {
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Word displacement.
        disp: i32,
    },
    /// `fd = MEM[base + disp]` reinterpreted as an IEEE double.
    LoadFp {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Word displacement.
        disp: i32,
    },
    /// `MEM[base + disp] = fs` (bit pattern of the double).
    StoreFp {
        /// Value source.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Word displacement.
        disp: i32,
    },
    /// `fd = (ra as i64) as f64` — integer to FP conversion.
    Itof {
        /// Destination.
        fd: FReg,
        /// Source.
        ra: Reg,
    },
    /// `rd = fa as i64` (truncating) — FP to integer conversion.
    Ftoi {
        /// Destination.
        rd: Reg,
        /// Source.
        fa: FReg,
    },
    /// Conditional branch on an integer register.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Tested register.
        ra: Reg,
        /// Target address.
        target: CodeAddr,
    },
    /// Unconditional jump.
    Jump {
        /// Target address.
        target: CodeAddr,
    },
    /// Jump and link: `link = return address; pc = target`.
    Jsr {
        /// Link register receiving `pc + 1`.
        link: Reg,
        /// Target address.
        target: CodeAddr,
    },
    /// Indirect jump: `pc = ra` (function return / computed goto).
    JmpReg {
        /// Register holding the target address.
        ra: Reg,
    },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// `true` for instructions that may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Jsr { .. }
                | Instr::JmpReg { .. }
                | Instr::Halt
        )
    }

    /// `true` for memory accesses.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::LoadInt { .. }
                | Instr::StoreInt { .. }
                | Instr::LoadFp { .. }
                | Instr::StoreFp { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_condition_semantics() {
        let neg = (-5i64) as u64;
        assert!(BranchCond::Eqz.eval(0));
        assert!(!BranchCond::Eqz.eval(1));
        assert!(BranchCond::Nez.eval(neg));
        assert!(BranchCond::Ltz.eval(neg));
        assert!(!BranchCond::Ltz.eval(0));
        assert!(BranchCond::Lez.eval(0));
        assert!(BranchCond::Gtz.eval(3));
        assert!(!BranchCond::Gtz.eval(0));
        assert!(BranchCond::Gez.eval(0));
        assert!(!BranchCond::Gez.eval(neg));
    }

    #[test]
    fn classification_helpers() {
        let b = Instr::Branch {
            cond: BranchCond::Eqz,
            ra: Reg::new(1),
            target: 0,
        };
        assert!(b.is_control());
        assert!(!b.is_mem());
        let ld = Instr::LoadInt {
            rd: Reg::new(1),
            base: Reg::new(2),
            disp: 0,
        };
        assert!(ld.is_mem());
        assert!(!ld.is_control());
        assert!(Instr::Halt.is_control());
        assert!(!Instr::Nop.is_control());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in IntOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in FpOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in FpUnOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for c in BranchCond::ALL {
            assert!(seen.insert(c.mnemonic()));
        }
    }
}
