//! Instruction classes and latency models.
//!
//! The paper: *"The latency of the instructions has been borrowed from the
//! latency of the Alpha 21164 instructions"* (§4, citing the 21164
//! Hardware Reference Manual). [`Alpha21164`] transcribes those operate
//! latencies; [`UnitLatency`] (everything = 1 cycle) and [`CustomLatency`]
//! exist for sensitivity tests.

use crate::instr::Instr;

/// Coarse instruction class used for latency lookup and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OpClass {
    /// Integer add/sub/logical/shift/compare and immediate loads.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch / jump / call / return.
    Branch,
    /// FP add/sub/neg/abs/move/compare.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// FP square root.
    FpSqrt,
    /// Int↔FP conversion.
    Cvt,
    /// No-op / halt.
    Nop,
}

impl OpClass {
    /// Number of instruction classes (`ALL.len()` as a const usable in
    /// array types).
    pub const COUNT: usize = Self::ALL.len();

    /// All classes (for exhaustive tests and histograms).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Cvt,
        OpClass::Nop,
    ];

    /// Classify a static instruction.
    pub fn of(instr: &Instr) -> OpClass {
        use crate::instr::{FpOp, FpUnOp, IntOp};
        match instr {
            Instr::IntOp { op: IntOp::Mul, .. } => OpClass::IntMul,
            Instr::IntOp { .. } | Instr::Li { .. } => OpClass::IntAlu,
            Instr::FpOp { op: FpOp::Div, .. } => OpClass::FpDiv,
            Instr::FpOp { .. } => match instr {
                Instr::FpOp { op: FpOp::Mul, .. } => OpClass::FpMul,
                _ => OpClass::FpAdd,
            },
            Instr::FpUn {
                op: FpUnOp::Sqrt, ..
            } => OpClass::FpSqrt,
            Instr::FpUn { .. } | Instr::FpCmp { .. } => OpClass::FpAdd,
            Instr::LoadInt { .. } | Instr::LoadFp { .. } => OpClass::Load,
            Instr::StoreInt { .. } | Instr::StoreFp { .. } => OpClass::Store,
            Instr::Itof { .. } | Instr::Ftoi { .. } => OpClass::Cvt,
            Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Jsr { .. }
            | Instr::JmpReg { .. } => OpClass::Branch,
            Instr::Halt | Instr::Nop => OpClass::Nop,
        }
    }

    /// Dense index of this class: `OpClass::ALL[c.index()] == c`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable lowercase name, for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::FpSqrt => "fp-sqrt",
            OpClass::Cvt => "cvt",
            OpClass::Nop => "nop",
        }
    }

    /// `true` for classes whose instructions reference memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for floating-point compute classes.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt | OpClass::Cvt
        )
    }
}

/// A per-[`OpClass`] instruction histogram: how many instructions of
/// each class a trace (or any instruction stream) contains.
///
/// This is the unit of *attribution*: a trace carrying its mix lets a
/// reuse hit report exactly which instruction classes were skipped, and
/// lets a latency model price the skip in saved cycles. Counts saturate
/// at `u32::MAX` per lane (a trace is bounded far below that anyway).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ClassMix {
    counts: [u32; OpClass::COUNT],
}

impl ClassMix {
    /// The all-zero mix (also the `Default`).
    pub const EMPTY: ClassMix = ClassMix {
        counts: [0; OpClass::COUNT],
    };

    /// Build from a per-class count array in [`OpClass::ALL`] order.
    pub fn from_counts(counts: [u32; OpClass::COUNT]) -> Self {
        Self { counts }
    }

    /// Count one instruction of `class` (saturating).
    #[inline]
    pub fn record(&mut self, class: OpClass) {
        let lane = &mut self.counts[class.index()];
        *lane = lane.saturating_add(1);
    }

    /// The count for one class.
    #[inline]
    pub fn get(self, class: OpClass) -> u32 {
        self.counts[class.index()]
    }

    /// Total instructions across every class.
    pub fn total(self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// `true` when every lane is zero (e.g. a record imported from a
    /// snapshot written before mixes existed).
    pub fn is_empty(self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Lane-wise saturating sum — the mix of two concatenated traces.
    pub fn sum(self, other: ClassMix) -> ClassMix {
        let mut out = self;
        for (lane, add) in out.counts.iter_mut().zip(other.counts) {
            *lane = lane.saturating_add(add);
        }
        out
    }

    /// Iterate `(class, count)` in [`OpClass::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = (OpClass, u32)> {
        OpClass::ALL.into_iter().map(move |c| (c, self.get(c)))
    }

    /// Cycles this mix would cost to execute under `model` — i.e. the
    /// cycles a reuse hit on a trace with this mix saves.
    pub fn saved_cycles(self, model: &dyn LatencyModel) -> u64 {
        self.iter()
            .map(|(class, n)| u64::from(n).saturating_mul(model.latency(class)))
            .fold(0u64, u64::saturating_add)
    }
}

/// A latency model maps an instruction class to a result latency in cycles.
pub trait LatencyModel: Sync {
    /// Latency in cycles for `class`. Must be ≥ 1.
    fn latency(&self, class: OpClass) -> u64;
}

/// Alpha 21164 operate latencies (Hardware Reference Manual, 1995):
///
/// | class | cycles | note |
/// |---|---|---|
/// | integer ALU | 1 | add/logical/shift/compare |
/// | integer multiply | 8 | `mull`; `mulq` is 12 — we use one class |
/// | load | 2 | D-cache hit |
/// | store | 1 | |
/// | branch | 1 | |
/// | FP add/sub/cmp | 4 | |
/// | FP multiply | 4 | |
/// | FP divide | 22 | double precision (15–31 range; typical quoted 22) |
/// | FP sqrt | 30 | (21164A FSQRT-class latency) |
/// | convert | 4 | |
#[derive(Clone, Copy, Debug, Default)]
pub struct Alpha21164;

impl LatencyModel for Alpha21164 {
    #[inline]
    fn latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 8,
            OpClass::Load => 2,
            OpClass::Store => 1,
            OpClass::Branch => 1,
            OpClass::FpAdd => 4,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 22,
            OpClass::FpSqrt => 30,
            OpClass::Cvt => 4,
            OpClass::Nop => 1,
        }
    }
}

/// Every instruction takes one cycle — isolates dataflow-shape effects
/// from latency effects in sensitivity studies.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitLatency;

impl LatencyModel for UnitLatency {
    #[inline]
    fn latency(&self, _class: OpClass) -> u64 {
        1
    }
}

/// A user-supplied latency table.
#[derive(Clone, Debug)]
pub struct CustomLatency {
    table: [u64; OpClass::ALL.len()],
}

impl CustomLatency {
    /// Start from an existing model.
    pub fn from_model(model: &dyn LatencyModel) -> Self {
        let mut table = [1u64; OpClass::ALL.len()];
        for (i, class) in OpClass::ALL.iter().enumerate() {
            table[i] = model.latency(*class);
        }
        Self { table }
    }

    /// Override the latency for one class. Panics on zero (completion
    /// times must strictly advance).
    pub fn set(mut self, class: OpClass, cycles: u64) -> Self {
        assert!(cycles >= 1, "latency must be >= 1 cycle");
        self.table[class.index()] = cycles;
        self
    }
}

impl LatencyModel for CustomLatency {
    #[inline]
    fn latency(&self, class: OpClass) -> u64 {
        self.table[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, FpOp, FpUnOp, Instr, IntOp, Operand};
    use crate::reg::{FReg, Reg};

    #[test]
    fn alpha_latencies_are_positive_and_ordered() {
        let m = Alpha21164;
        for class in OpClass::ALL {
            assert!(m.latency(class) >= 1);
        }
        assert!(m.latency(OpClass::FpDiv) > m.latency(OpClass::FpMul));
        assert!(m.latency(OpClass::IntMul) > m.latency(OpClass::IntAlu));
        assert_eq!(m.latency(OpClass::Load), 2);
    }

    #[test]
    fn classification_covers_every_shape() {
        let r = Reg::new(1);
        let f = FReg::new(1);
        let cases = [
            (
                Instr::IntOp {
                    op: IntOp::Add,
                    rd: r,
                    ra: r,
                    rb: Operand::Imm(1),
                },
                OpClass::IntAlu,
            ),
            (
                Instr::IntOp {
                    op: IntOp::Mul,
                    rd: r,
                    ra: r,
                    rb: Operand::Reg(r),
                },
                OpClass::IntMul,
            ),
            (Instr::Li { rd: r, imm: 7 }, OpClass::IntAlu),
            (
                Instr::FpOp {
                    op: FpOp::Add,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpAdd,
            ),
            (
                Instr::FpOp {
                    op: FpOp::Mul,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpMul,
            ),
            (
                Instr::FpOp {
                    op: FpOp::Div,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpDiv,
            ),
            (
                Instr::FpUn {
                    op: FpUnOp::Sqrt,
                    fd: f,
                    fa: f,
                },
                OpClass::FpSqrt,
            ),
            (
                Instr::FpUn {
                    op: FpUnOp::Neg,
                    fd: f,
                    fa: f,
                },
                OpClass::FpAdd,
            ),
            (
                Instr::LoadInt {
                    rd: r,
                    base: r,
                    disp: 0,
                },
                OpClass::Load,
            ),
            (
                Instr::StoreFp {
                    fs: f,
                    base: r,
                    disp: 0,
                },
                OpClass::Store,
            ),
            (Instr::Itof { fd: f, ra: r }, OpClass::Cvt),
            (Instr::Ftoi { rd: r, fa: f }, OpClass::Cvt),
            (
                Instr::Branch {
                    cond: BranchCond::Eqz,
                    ra: r,
                    target: 0,
                },
                OpClass::Branch,
            ),
            (Instr::Jump { target: 0 }, OpClass::Branch),
            (Instr::Halt, OpClass::Nop),
        ];
        for (instr, expect) in cases {
            assert_eq!(OpClass::of(&instr), expect, "{instr:?}");
        }
    }

    #[test]
    fn index_matches_all_order() {
        assert_eq!(OpClass::COUNT, OpClass::ALL.len());
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(OpClass::ALL[class.index()], class);
        }
    }

    #[test]
    fn class_mix_counts_sums_and_prices() {
        let mut mix = ClassMix::EMPTY;
        assert!(mix.is_empty());
        assert_eq!(mix.total(), 0);
        mix.record(OpClass::IntAlu);
        mix.record(OpClass::IntAlu);
        mix.record(OpClass::FpDiv);
        assert!(!mix.is_empty());
        assert_eq!(mix.get(OpClass::IntAlu), 2);
        assert_eq!(mix.get(OpClass::FpDiv), 1);
        assert_eq!(mix.get(OpClass::Load), 0);
        assert_eq!(mix.total(), 3);
        // 2×1 (IntAlu) + 1×22 (FpDiv) under the Alpha table.
        assert_eq!(mix.saved_cycles(&Alpha21164), 24);
        assert_eq!(mix.saved_cycles(&UnitLatency), 3);

        let doubled = mix.sum(mix);
        assert_eq!(doubled.get(OpClass::IntAlu), 4);
        assert_eq!(doubled.total(), 6);

        let mut counts = [0u32; OpClass::COUNT];
        counts[OpClass::Store.index()] = 5;
        let stores = ClassMix::from_counts(counts);
        assert_eq!(stores.get(OpClass::Store), 5);
        assert_eq!(
            stores.iter().filter(|&(_, n)| n > 0).count(),
            1,
            "iter covers every lane exactly once"
        );
    }

    #[test]
    fn class_mix_saturates_instead_of_wrapping() {
        let mut mix = ClassMix::from_counts([u32::MAX; OpClass::COUNT]);
        mix.record(OpClass::IntAlu);
        assert_eq!(mix.get(OpClass::IntAlu), u32::MAX);
        let sum = mix.sum(mix);
        assert_eq!(sum.get(OpClass::Nop), u32::MAX);
    }

    #[test]
    fn custom_latency_overrides() {
        let m = CustomLatency::from_model(&Alpha21164).set(OpClass::Load, 10);
        assert_eq!(m.latency(OpClass::Load), 10);
        assert_eq!(m.latency(OpClass::IntAlu), 1);
    }

    #[test]
    #[should_panic(expected = "latency must be >= 1")]
    fn zero_latency_rejected() {
        let _ = CustomLatency::from_model(&UnitLatency).set(OpClass::Load, 0);
    }
}
