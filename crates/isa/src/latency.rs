//! Instruction classes and latency models.
//!
//! The paper: *"The latency of the instructions has been borrowed from the
//! latency of the Alpha 21164 instructions"* (§4, citing the 21164
//! Hardware Reference Manual). [`Alpha21164`] transcribes those operate
//! latencies; [`UnitLatency`] (everything = 1 cycle) and [`CustomLatency`]
//! exist for sensitivity tests.

use crate::instr::Instr;

/// Coarse instruction class used for latency lookup and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OpClass {
    /// Integer add/sub/logical/shift/compare and immediate loads.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch / jump / call / return.
    Branch,
    /// FP add/sub/neg/abs/move/compare.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// FP square root.
    FpSqrt,
    /// Int↔FP conversion.
    Cvt,
    /// No-op / halt.
    Nop,
}

impl OpClass {
    /// All classes (for exhaustive tests and histograms).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Cvt,
        OpClass::Nop,
    ];

    /// Classify a static instruction.
    pub fn of(instr: &Instr) -> OpClass {
        use crate::instr::{FpOp, FpUnOp, IntOp};
        match instr {
            Instr::IntOp { op: IntOp::Mul, .. } => OpClass::IntMul,
            Instr::IntOp { .. } | Instr::Li { .. } => OpClass::IntAlu,
            Instr::FpOp { op: FpOp::Div, .. } => OpClass::FpDiv,
            Instr::FpOp { .. } => match instr {
                Instr::FpOp { op: FpOp::Mul, .. } => OpClass::FpMul,
                _ => OpClass::FpAdd,
            },
            Instr::FpUn {
                op: FpUnOp::Sqrt, ..
            } => OpClass::FpSqrt,
            Instr::FpUn { .. } | Instr::FpCmp { .. } => OpClass::FpAdd,
            Instr::LoadInt { .. } | Instr::LoadFp { .. } => OpClass::Load,
            Instr::StoreInt { .. } | Instr::StoreFp { .. } => OpClass::Store,
            Instr::Itof { .. } | Instr::Ftoi { .. } => OpClass::Cvt,
            Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Jsr { .. }
            | Instr::JmpReg { .. } => OpClass::Branch,
            Instr::Halt | Instr::Nop => OpClass::Nop,
        }
    }

    /// `true` for classes whose instructions reference memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// `true` for floating-point compute classes.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt | OpClass::Cvt
        )
    }
}

/// A latency model maps an instruction class to a result latency in cycles.
pub trait LatencyModel: Sync {
    /// Latency in cycles for `class`. Must be ≥ 1.
    fn latency(&self, class: OpClass) -> u64;
}

/// Alpha 21164 operate latencies (Hardware Reference Manual, 1995):
///
/// | class | cycles | note |
/// |---|---|---|
/// | integer ALU | 1 | add/logical/shift/compare |
/// | integer multiply | 8 | `mull`; `mulq` is 12 — we use one class |
/// | load | 2 | D-cache hit |
/// | store | 1 | |
/// | branch | 1 | |
/// | FP add/sub/cmp | 4 | |
/// | FP multiply | 4 | |
/// | FP divide | 22 | double precision (15–31 range; typical quoted 22) |
/// | FP sqrt | 30 | (21164A FSQRT-class latency) |
/// | convert | 4 | |
#[derive(Clone, Copy, Debug, Default)]
pub struct Alpha21164;

impl LatencyModel for Alpha21164 {
    #[inline]
    fn latency(&self, class: OpClass) -> u64 {
        match class {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 8,
            OpClass::Load => 2,
            OpClass::Store => 1,
            OpClass::Branch => 1,
            OpClass::FpAdd => 4,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 22,
            OpClass::FpSqrt => 30,
            OpClass::Cvt => 4,
            OpClass::Nop => 1,
        }
    }
}

/// Every instruction takes one cycle — isolates dataflow-shape effects
/// from latency effects in sensitivity studies.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitLatency;

impl LatencyModel for UnitLatency {
    #[inline]
    fn latency(&self, _class: OpClass) -> u64 {
        1
    }
}

/// A user-supplied latency table.
#[derive(Clone, Debug)]
pub struct CustomLatency {
    table: [u64; OpClass::ALL.len()],
}

impl CustomLatency {
    /// Start from an existing model.
    pub fn from_model(model: &dyn LatencyModel) -> Self {
        let mut table = [1u64; OpClass::ALL.len()];
        for (i, class) in OpClass::ALL.iter().enumerate() {
            table[i] = model.latency(*class);
        }
        Self { table }
    }

    /// Override the latency for one class. Panics on zero (completion
    /// times must strictly advance).
    pub fn set(mut self, class: OpClass, cycles: u64) -> Self {
        assert!(cycles >= 1, "latency must be >= 1 cycle");
        let idx = OpClass::ALL.iter().position(|c| *c == class).unwrap();
        self.table[idx] = cycles;
        self
    }
}

impl LatencyModel for CustomLatency {
    #[inline]
    fn latency(&self, class: OpClass) -> u64 {
        let idx = OpClass::ALL.iter().position(|c| *c == class).unwrap();
        self.table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, FpOp, FpUnOp, Instr, IntOp, Operand};
    use crate::reg::{FReg, Reg};

    #[test]
    fn alpha_latencies_are_positive_and_ordered() {
        let m = Alpha21164;
        for class in OpClass::ALL {
            assert!(m.latency(class) >= 1);
        }
        assert!(m.latency(OpClass::FpDiv) > m.latency(OpClass::FpMul));
        assert!(m.latency(OpClass::IntMul) > m.latency(OpClass::IntAlu));
        assert_eq!(m.latency(OpClass::Load), 2);
    }

    #[test]
    fn classification_covers_every_shape() {
        let r = Reg::new(1);
        let f = FReg::new(1);
        let cases = [
            (
                Instr::IntOp {
                    op: IntOp::Add,
                    rd: r,
                    ra: r,
                    rb: Operand::Imm(1),
                },
                OpClass::IntAlu,
            ),
            (
                Instr::IntOp {
                    op: IntOp::Mul,
                    rd: r,
                    ra: r,
                    rb: Operand::Reg(r),
                },
                OpClass::IntMul,
            ),
            (Instr::Li { rd: r, imm: 7 }, OpClass::IntAlu),
            (
                Instr::FpOp {
                    op: FpOp::Add,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpAdd,
            ),
            (
                Instr::FpOp {
                    op: FpOp::Mul,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpMul,
            ),
            (
                Instr::FpOp {
                    op: FpOp::Div,
                    fd: f,
                    fa: f,
                    fb: f,
                },
                OpClass::FpDiv,
            ),
            (
                Instr::FpUn {
                    op: FpUnOp::Sqrt,
                    fd: f,
                    fa: f,
                },
                OpClass::FpSqrt,
            ),
            (
                Instr::FpUn {
                    op: FpUnOp::Neg,
                    fd: f,
                    fa: f,
                },
                OpClass::FpAdd,
            ),
            (
                Instr::LoadInt {
                    rd: r,
                    base: r,
                    disp: 0,
                },
                OpClass::Load,
            ),
            (
                Instr::StoreFp {
                    fs: f,
                    base: r,
                    disp: 0,
                },
                OpClass::Store,
            ),
            (Instr::Itof { fd: f, ra: r }, OpClass::Cvt),
            (Instr::Ftoi { rd: r, fa: f }, OpClass::Cvt),
            (
                Instr::Branch {
                    cond: BranchCond::Eqz,
                    ra: r,
                    target: 0,
                },
                OpClass::Branch,
            ),
            (Instr::Jump { target: 0 }, OpClass::Branch),
            (Instr::Halt, OpClass::Nop),
        ];
        for (instr, expect) in cases {
            assert_eq!(OpClass::of(&instr), expect, "{instr:?}");
        }
    }

    #[test]
    fn custom_latency_overrides() {
        let m = CustomLatency::from_model(&Alpha21164).set(OpClass::Load, 10);
        assert_eq!(m.latency(OpClass::Load), 10);
        assert_eq!(m.latency(OpClass::IntAlu), 1);
    }

    #[test]
    #[should_panic(expected = "latency must be >= 1")]
    fn zero_latency_rejected() {
        let _ = CustomLatency::from_model(&UnitLatency).set(OpClass::Load, 0);
    }
}
