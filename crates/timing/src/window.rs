//! Instruction-window models.
//!
//! The finite model implements the paper's rule: the completion time of an
//! instruction is additionally bounded below by "the graduation time of
//! the instruction W locations above in the trace", where graduation time
//! is the running maximum of completion times ("the maximum completion
//! time of any previous instruction, including itself"). Only the last W
//! graduation times need tracking — a ring buffer.

/// An instruction window: either unbounded or a W-entry ring.
#[derive(Clone, Debug)]
pub enum Window {
    /// No window constraint (the paper's "infinite window" scenario).
    Infinite,
    /// W-entry window.
    Finite {
        /// Ring of the last W graduation times.
        ring: Vec<u64>,
        /// Number of slots consumed so far.
        issued: u64,
        /// Running maximum of completion times.
        grad: u64,
    },
}

impl Window {
    /// Unbounded window.
    pub fn infinite() -> Self {
        Window::Infinite
    }

    /// W-entry window. `w` must be ≥ 1.
    pub fn finite(w: usize) -> Self {
        assert!(w >= 1, "window size must be at least 1");
        Window::Finite {
            ring: vec![0; w],
            issued: 0,
            grad: 0,
        }
    }

    /// Earliest time the *next* instruction (or reuse operation) may
    /// begin: the graduation time of the instruction W slots above, or 0
    /// while the window has free slots / for the infinite window.
    #[inline]
    pub fn issue_floor(&self) -> u64 {
        match self {
            Window::Infinite => 0,
            Window::Finite { ring, issued, .. } => {
                if (*issued as usize) < ring.len() {
                    0
                } else {
                    ring[(*issued as usize) % ring.len()]
                }
            }
        }
    }

    /// Consume one window slot for an operation completing at
    /// `completion`.
    #[inline]
    pub fn occupy(&mut self, completion: u64) {
        if let Window::Finite { ring, issued, grad } = self {
            *grad = (*grad).max(completion);
            let idx = (*issued as usize) % ring.len();
            ring[idx] = *grad;
            *issued += 1;
        }
    }

    /// Window capacity (`None` for infinite).
    pub fn capacity(&self) -> Option<usize> {
        match self {
            Window::Infinite => None,
            Window::Finite { ring, .. } => Some(ring.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_window_never_constrains() {
        let mut w = Window::infinite();
        for t in [5, 100, 3] {
            assert_eq!(w.issue_floor(), 0);
            w.occupy(t);
        }
    }

    #[test]
    fn finite_window_floor_is_grad_w_back() {
        let mut w = Window::finite(2);
        // Slots 0 and 1 are free.
        assert_eq!(w.issue_floor(), 0);
        w.occupy(10); // instr 0: grad 10
        assert_eq!(w.issue_floor(), 0);
        w.occupy(4); // instr 1: grad stays 10
                     // Next instruction (index 2) is floored by grad of instr 0 = 10.
        assert_eq!(w.issue_floor(), 10);
        w.occupy(20); // instr 2: grad 20
                      // Instr 3 floored by grad of instr 1 = 10.
        assert_eq!(w.issue_floor(), 10);
        w.occupy(5); // instr 3
                     // Instr 4 floored by grad of instr 2 = 20.
        assert_eq!(w.issue_floor(), 20);
    }

    #[test]
    fn graduation_is_running_max() {
        let mut w = Window::finite(1);
        w.occupy(100);
        assert_eq!(w.issue_floor(), 100);
        w.occupy(1); // completes earlier, but graduation is running max
        assert_eq!(w.issue_floor(), 100);
        w.occupy(200);
        assert_eq!(w.issue_floor(), 200);
    }

    #[test]
    #[should_panic(expected = "window size")]
    fn zero_window_rejected() {
        let _ = Window::finite(0);
    }

    #[test]
    fn capacity_reporting() {
        assert_eq!(Window::infinite().capacity(), None);
        assert_eq!(Window::finite(256).capacity(), Some(256));
    }
}
