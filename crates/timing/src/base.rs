//! Base-machine analysis as a streaming sink.

use crate::sim::TimingSim;
use crate::window::Window;
use tlr_isa::{DynInstr, LatencyModel, StreamSink};

/// Result of a base-machine timing pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingResult {
    /// Dynamic instructions analyzed.
    pub instrs: u64,
    /// Total cycles (max completion time).
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// A [`StreamSink`] that runs the base machine (no reuse) over the
/// stream it observes.
pub struct BaseTimingSink<'a> {
    sim: TimingSim<'a>,
}

impl<'a> BaseTimingSink<'a> {
    /// New sink over the given window and latency model.
    pub fn new(window: Window, latency: &'a dyn LatencyModel) -> Self {
        Self {
            sim: TimingSim::new(window, latency),
        }
    }

    /// Final result.
    pub fn result(&self) -> TimingResult {
        TimingResult {
            instrs: self.sim.instr_count(),
            cycles: self.sim.cycles(),
            ipc: self.sim.ipc(),
        }
    }
}

impl StreamSink for BaseTimingSink<'_> {
    #[inline]
    fn observe(&mut self, d: &DynInstr) {
        self.sim.step_normal(d);
    }
}

/// One-call helper: analyze a materialized stream (tests, examples).
pub fn analyze_base(
    stream: &[DynInstr],
    window: Window,
    latency: &dyn LatencyModel,
) -> TimingResult {
    let mut sink = BaseTimingSink::new(window, latency);
    for d in stream {
        sink.observe(d);
    }
    sink.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;
    use tlr_isa::{Alpha21164, CollectSink};
    use tlr_vm::Vm;

    fn stream_of(src: &str) -> Vec<DynInstr> {
        let prog = assemble(src).unwrap();
        let mut vm = Vm::new(&prog);
        let mut sink = CollectSink::default();
        vm.run(100_000, &mut sink).unwrap();
        sink.records
    }

    #[test]
    fn serial_program_ipc_below_one() {
        // A pointer-chase style loop: every instruction depends on the
        // previous one, and loads cost 2 cycles.
        let stream = stream_of(
            r#"
            .org 0x10
    v:      .word 0
            li      r1, 100
            li      r2, 0x10
    loop:   ldq     r3, 0(r2)
            addq    r3, r3, 1
            stq     r3, 0(r2)
            subq    r1, r1, 1
            bnez    r1, loop
            halt
            "#,
        );
        let res = analyze_base(&stream, Window::infinite(), &Alpha21164);
        assert!(res.ipc < 2.0, "ipc={}", res.ipc);
        assert_eq!(res.instrs, stream.len() as u64);
    }

    #[test]
    fn finite_window_ipc_never_exceeds_infinite() {
        let stream = stream_of(
            r#"
            li      r1, 200
    loop:   addq    r2, r2, 1
            addq    r3, r3, 2
            addq    r4, r4, 3
            subq    r1, r1, 1
            bnez    r1, loop
            halt
            "#,
        );
        let inf = analyze_base(&stream, Window::infinite(), &Alpha21164);
        let fin = analyze_base(&stream, Window::finite(16), &Alpha21164);
        assert!(fin.ipc <= inf.ipc + 1e-9);
        assert!(fin.cycles >= inf.cycles);
    }

    #[test]
    fn empty_stream() {
        let res = analyze_base(&[], Window::infinite(), &Alpha21164);
        assert_eq!(res.instrs, 0);
        assert_eq!(res.cycles, 0);
        assert_eq!(res.ipc, 0.0);
    }
}
