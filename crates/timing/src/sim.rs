//! The reuse-aware timing simulator.

use crate::tables::CompletionTables;
use crate::window::Window;
use tlr_isa::{DynInstr, LatencyModel, Loc};

/// Completion-time simulator over a dynamic instruction stream.
///
/// Drives the paper's three execution modes. The caller (the reuse study
/// in `tlr-core`) decides *which* mode each instruction takes; this type
/// owns the arithmetic and the bookkeeping.
pub struct TimingSim<'a> {
    tables: CompletionTables,
    window: Window,
    latency: &'a dyn LatencyModel,
    max_completion: u64,
    instrs: u64,
}

impl<'a> TimingSim<'a> {
    /// New simulator over the given window model and latency table.
    pub fn new(window: Window, latency: &'a dyn LatencyModel) -> Self {
        Self {
            tables: CompletionTables::new(),
            window,
            latency,
            max_completion: 0,
            instrs: 0,
        }
    }

    /// Total cycles so far (maximum completion time of any instruction).
    pub fn cycles(&self) -> u64 {
        self.max_completion
    }

    /// Dynamic instructions accounted (including members of reused
    /// traces — reuse skips *work*, not *architectural instructions*).
    pub fn instr_count(&self) -> u64 {
        self.instrs
    }

    /// Instructions per cycle over everything stepped so far.
    pub fn ipc(&self) -> f64 {
        if self.max_completion == 0 {
            0.0
        } else {
            self.instrs as f64 / self.max_completion as f64
        }
    }

    /// Access the completion tables (used by the trace-level study to
    /// compute live-in readiness).
    pub fn tables(&self) -> &CompletionTables {
        &self.tables
    }

    /// The base machine's move: `completion = max(input producers,
    /// window floor) + latency`, occupying one window slot.
    pub fn step_normal(&mut self, d: &DynInstr) -> u64 {
        let lat = self.latency.latency(d.class);
        let floor = self.window.issue_floor();
        let ready = self.tables.max_over_reads(&d.reads).max(floor);
        let t = ready + lat;
        self.commit_writes(d, t);
        self.window.occupy(t);
        self.max_completion = self.max_completion.max(t);
        self.instrs += 1;
        t
    }

    /// Instruction-level reuse with the paper's oracle: the instruction
    /// completes at `max(inputs, floor) + min(latency, reuse_latency)` —
    /// i.e. reuse is applied only when it does not lose to normal
    /// execution. The instruction is still fetched, so it occupies a
    /// window slot exactly like a normal instruction.
    pub fn step_reused_instr(&mut self, d: &DynInstr, reuse_latency: u64) -> u64 {
        let lat = self.latency.latency(d.class).min(reuse_latency);
        let floor = self.window.issue_floor();
        let ready = self.tables.max_over_reads(&d.reads).max(floor);
        let t = ready + lat;
        self.commit_writes(d, t);
        self.window.occupy(t);
        self.max_completion = self.max_completion.max(t);
        self.instrs += 1;
        t
    }

    /// Start a reused trace: returns `(floor, reuse_completion)` where
    /// `reuse_completion = max(live-in producers, floor) + reuse_latency`
    /// is when the single reuse operation delivers every trace output.
    ///
    /// `live_ins` is the trace's live-in location list (registers and
    /// memory words read before written inside the trace).
    pub fn trace_floor<'b>(
        &self,
        live_ins: impl IntoIterator<Item = &'b Loc>,
        reuse_latency: u64,
    ) -> (u64, u64) {
        let floor = self.window.issue_floor();
        let ready = self.tables.max_over_locs(live_ins).max(floor);
        (floor, ready + reuse_latency)
    }

    /// Step one member instruction of a reused trace, with the paper's
    /// per-instruction oracle: the instruction's outputs become available
    /// at `min(reuse_completion, normal execution)` where the normal
    /// alternative is `max(own producers, floor at trace entry) + its
    /// latency`. No window slot is consumed — trace members are neither
    /// fetched nor inserted in the window.
    ///
    /// Returns the chosen completion time.
    pub fn step_trace_member(&mut self, d: &DynInstr, floor: u64, reuse_completion: u64) -> u64 {
        let lat = self.latency.latency(d.class);
        let normal = self.tables.max_over_reads(&d.reads).max(floor) + lat;
        let t = normal.min(reuse_completion);
        self.commit_writes(d, t);
        self.max_completion = self.max_completion.max(t);
        self.instrs += 1;
        t
    }

    /// Finish a reused trace: consume `slots` window entries (0 = ideal
    /// bypass; 1 = the state-updating reuse operation the paper's §3.3
    /// inserts for precise exceptions) completing at `trace_completion`.
    pub fn end_trace(&mut self, trace_completion: u64, slots: u32) {
        for _ in 0..slots {
            self.window.occupy(trace_completion);
        }
    }

    #[inline]
    fn commit_writes(&mut self, d: &DynInstr, t: u64) {
        for (loc, _) in d.writes.iter() {
            self.tables.set(*loc, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::{Alpha21164, OpClass, UnitLatency};

    fn di(pc: u32, class: OpClass, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);
    const R3: Loc = Loc::IntReg(3);

    #[test]
    fn dependent_chain_serializes() {
        // r1 = ...; r2 = f(r1); r3 = f(r2): completions 1, 2, 3.
        let lat = UnitLatency;
        let mut sim = TimingSim::new(Window::infinite(), &lat);
        assert_eq!(sim.step_normal(&di(0, OpClass::IntAlu, &[], &[(R1, 0)])), 1);
        assert_eq!(
            sim.step_normal(&di(1, OpClass::IntAlu, &[(R1, 0)], &[(R2, 0)])),
            2
        );
        assert_eq!(
            sim.step_normal(&di(2, OpClass::IntAlu, &[(R2, 0)], &[(R3, 0)])),
            3
        );
        assert_eq!(sim.cycles(), 3);
        assert_eq!(sim.ipc(), 1.0);
    }

    #[test]
    fn independent_instructions_parallelize() {
        let lat = UnitLatency;
        let mut sim = TimingSim::new(Window::infinite(), &lat);
        for pc in 0..100 {
            let t = sim.step_normal(&di(pc, OpClass::IntAlu, &[], &[(Loc::Mem(pc as u64), 0)]));
            assert_eq!(t, 1);
        }
        assert_eq!(sim.cycles(), 1);
        assert_eq!(sim.ipc(), 100.0);
    }

    #[test]
    fn memory_dependence_serializes_store_load() {
        let lat = Alpha21164;
        let mut sim = TimingSim::new(Window::infinite(), &lat);
        // store to [5] completes at 1 (store latency 1)
        sim.step_normal(&di(0, OpClass::Store, &[], &[(Loc::Mem(5), 0)]));
        // load from [5] completes at 1 + 2
        let t = sim.step_normal(&di(1, OpClass::Load, &[(Loc::Mem(5), 0)], &[(R1, 0)]));
        assert_eq!(t, 3);
    }

    #[test]
    fn finite_window_caps_parallelism() {
        // 1-entry window: even independent unit-latency instructions
        // serialize completely.
        let lat = UnitLatency;
        let mut sim = TimingSim::new(Window::finite(1), &lat);
        for pc in 0..10 {
            sim.step_normal(&di(pc, OpClass::IntAlu, &[], &[]));
        }
        assert_eq!(sim.cycles(), 10);
        assert!((sim.ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wider_window_never_slower() {
        let lat = Alpha21164;
        let streams: Vec<DynInstr> = (0..200)
            .map(|pc| {
                if pc % 3 == 0 {
                    di(pc, OpClass::IntMul, &[(R1, 0)], &[(R1, 0)])
                } else {
                    di(pc, OpClass::IntAlu, &[], &[(R2, 0)])
                }
            })
            .collect();
        let mut cycles = Vec::new();
        for w in [1usize, 4, 64, 1024] {
            let mut sim = TimingSim::new(Window::finite(w), &lat);
            for d in &streams {
                sim.step_normal(d);
            }
            cycles.push(sim.cycles());
        }
        for pair in cycles.windows(2) {
            assert!(pair[1] <= pair[0], "wider window slower: {cycles:?}");
        }
    }

    #[test]
    fn reused_instr_oracle_never_slower() {
        let lat = Alpha21164;
        // FP divide: latency 22; with reuse latency 1 the reused copy
        // completes 21 cycles earlier.
        let div = di(
            0,
            OpClass::FpDiv,
            &[(Loc::FpReg(1), 0)],
            &[(Loc::FpReg(2), 0)],
        );
        let mut a = TimingSim::new(Window::infinite(), &lat);
        let mut b = TimingSim::new(Window::infinite(), &lat);
        let tn = a.step_normal(&div);
        let tr = b.step_reused_instr(&div, 1);
        assert_eq!(tn, 22);
        assert_eq!(tr, 1);
        // And with an absurd reuse latency the oracle falls back.
        let mut c = TimingSim::new(Window::infinite(), &lat);
        assert_eq!(c.step_reused_instr(&div, 1000), 22);
    }

    #[test]
    fn trace_reuse_collapses_dependent_chain() {
        let lat = UnitLatency;
        // Chain of 10 dependent instructions: base = 10 cycles.
        let chain: Vec<DynInstr> = (0..10)
            .map(|pc| di(pc, OpClass::IntAlu, &[(R1, 0)], &[(R1, 0)]))
            .collect();
        let mut base = TimingSim::new(Window::infinite(), &lat);
        for d in &chain {
            base.step_normal(d);
        }
        assert_eq!(base.cycles(), 10);

        // Reused as one trace with live-in {r1}: everything completes at
        // reuse latency 1.
        let mut tlr = TimingSim::new(Window::infinite(), &lat);
        let (floor, t_reuse) = tlr.trace_floor([&R1], 1);
        assert_eq!((floor, t_reuse), (0, 1));
        let mut max_t = 0;
        for d in &chain {
            max_t = max_t.max(tlr.step_trace_member(d, floor, t_reuse));
        }
        tlr.end_trace(max_t, 1);
        assert_eq!(tlr.cycles(), 1);
        // 10 instructions in 1 cycle: beyond the dataflow limit.
        assert_eq!(tlr.ipc(), 10.0);
    }

    #[test]
    fn trace_member_oracle_prefers_normal_when_faster() {
        let lat = UnitLatency;
        let mut sim = TimingSim::new(Window::infinite(), &lat);
        // Live-in r1 not ready until cycle 50.
        sim.step_normal(&di(
            0,
            OpClass::FpSqrt, // unit latency model: still 1
            &[],
            &[(R1, 0)],
        ));
        sim.tables();
        // Fake: force r1 later by a chain.
        for pc in 1..50 {
            sim.step_normal(&di(pc, OpClass::IntAlu, &[(R1, 0)], &[(R1, 0)]));
        }
        assert_eq!(sim.tables().get(R1), 50);
        // Trace whose live-in is r1 (ready at 50) but whose member only
        // reads r2 (ready at 0): the member's normal path (t=1) wins over
        // the reuse path (t=51).
        let (floor, t_reuse) = sim.trace_floor([&R1], 1);
        assert_eq!(t_reuse, 51);
        let t = sim.step_trace_member(
            &di(50, OpClass::IntAlu, &[(R2, 0)], &[(R3, 0)]),
            floor,
            t_reuse,
        );
        assert_eq!(t, 1);
    }

    #[test]
    fn window_bypass_frees_slots() {
        // W=1, a stream of independent instructions, alternating: with
        // per-instruction occupancy the stream serializes; as a reused
        // trace occupying a single slot it does not.
        let lat = UnitLatency;
        let instrs: Vec<DynInstr> = (0..8).map(|pc| di(pc, OpClass::IntAlu, &[], &[])).collect();

        let mut per_instr = TimingSim::new(Window::finite(1), &lat);
        for d in &instrs {
            per_instr.step_normal(d);
        }
        assert_eq!(per_instr.cycles(), 8);

        let mut traced = TimingSim::new(Window::finite(1), &lat);
        let (floor, t_reuse) = traced.trace_floor([], 1);
        let mut max_t = 0;
        for d in &instrs {
            max_t = max_t.max(traced.step_trace_member(d, floor, t_reuse));
        }
        traced.end_trace(max_t, 1);
        assert_eq!(traced.cycles(), 1);
    }
}
