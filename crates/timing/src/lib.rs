#![warn(missing_docs)]
//! # tlr-timing
//!
//! The paper's timing methodology (§4), an extension of Austin & Sohi's
//! dynamic dependence analysis:
//!
//! * **Infinite window** — each instruction's completion time is the
//!   maximum completion time of the producers of its inputs plus its
//!   latency. Inputs cover registers *and* memory words, so store→load
//!   dependences serialize exactly like register dependences. IPC is the
//!   instruction count divided by the maximum completion time.
//!
//! * **Finite window of W entries** — additionally, instruction *i* may
//!   not begin before the *graduation time* of instruction *i − W*, where
//!   graduation time is the running maximum of completion times. Only the
//!   last W graduation times are tracked (a ring buffer).
//!
//! * **Reuse-aware stepping** — [`TimingSim`] exposes the three moves the
//!   reuse studies need: [`TimingSim::step_normal`] (base machine),
//!   [`TimingSim::step_reused_instr`] (instruction-level reuse with the
//!   paper's oracle: never slower than normal execution), and the
//!   trace-level protocol ([`TimingSim::trace_floor`] /
//!   [`TimingSim::step_trace_member`] / [`TimingSim::end_trace`]) in
//!   which a whole reused trace completes at the trace's live-in
//!   readiness plus one reuse latency and occupies a configurable number
//!   of window slots (0 or 1) instead of one per instruction — the
//!   fetch-skip / window-bypass effect that makes trace-level reuse beat
//!   instruction-level reuse in the limited-window scenario.
//!
//! The number of functional units is infinite throughout, as in the
//! paper ("we focus on scenarios with a limited instruction window but
//! infinite number of functional units").

mod base;
mod sim;
mod tables;
mod window;

pub use base::{analyze_base, BaseTimingSink, TimingResult};
pub use sim::TimingSim;
pub use tables::CompletionTables;
pub use window::Window;
