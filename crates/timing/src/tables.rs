//! Completion-time tables over storage locations.
//!
//! "For each logical register and each memory location, the completion
//! time of the latest instruction that has updated such storage location
//! so far is kept in a table" (§4). Registers live in a dense 64-entry
//! array; memory words in a hash map keyed by word address.

use tlr_isa::Loc;
use tlr_util::FxHashMap;

/// Completion time per storage location. Locations never written complete
/// at time 0 (available from the start).
#[derive(Clone, Debug)]
pub struct CompletionTables {
    regs: [u64; 64],
    mem: FxHashMap<u64, u64>,
}

impl Default for CompletionTables {
    fn default() -> Self {
        Self::new()
    }
}

impl CompletionTables {
    /// Fresh tables (everything ready at cycle 0).
    pub fn new() -> Self {
        Self {
            regs: [0; 64],
            mem: FxHashMap::default(),
        }
    }

    /// Completion time of the latest writer of `loc`.
    #[inline]
    pub fn get(&self, loc: Loc) -> u64 {
        match loc.reg_index() {
            Some(i) => self.regs[i],
            None => match loc {
                Loc::Mem(addr) => self.mem.get(&addr).copied().unwrap_or(0),
                _ => unreachable!(),
            },
        }
    }

    /// Record that `loc` was (re)written by an instruction completing at
    /// `time`.
    #[inline]
    pub fn set(&mut self, loc: Loc, time: u64) {
        match loc.reg_index() {
            Some(i) => self.regs[i] = time,
            None => match loc {
                Loc::Mem(addr) => {
                    self.mem.insert(addr, time);
                }
                _ => unreachable!(),
            },
        }
    }

    /// Maximum completion time over a read set (0 for an empty set).
    #[inline]
    pub fn max_over_reads(&self, reads: &[(Loc, u64)]) -> u64 {
        reads
            .iter()
            .map(|(loc, _)| self.get(*loc))
            .max()
            .unwrap_or(0)
    }

    /// Maximum completion time over a list of locations.
    #[inline]
    pub fn max_over_locs<'a>(&self, locs: impl IntoIterator<Item = &'a Loc>) -> u64 {
        locs.into_iter()
            .map(|loc| self.get(*loc))
            .max()
            .unwrap_or(0)
    }

    /// Number of memory words tracked (footprint reporting).
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_locations_complete_at_zero() {
        let t = CompletionTables::new();
        assert_eq!(t.get(Loc::IntReg(5)), 0);
        assert_eq!(t.get(Loc::FpReg(5)), 0);
        assert_eq!(t.get(Loc::Mem(123)), 0);
    }

    #[test]
    fn set_get_roundtrip_all_kinds() {
        let mut t = CompletionTables::new();
        t.set(Loc::IntReg(3), 10);
        t.set(Loc::FpReg(3), 20);
        t.set(Loc::Mem(3), 30);
        assert_eq!(t.get(Loc::IntReg(3)), 10);
        assert_eq!(t.get(Loc::FpReg(3)), 20);
        assert_eq!(t.get(Loc::Mem(3)), 30);
        // Int and FP register 3 are distinct locations.
        t.set(Loc::IntReg(3), 11);
        assert_eq!(t.get(Loc::FpReg(3)), 20);
    }

    #[test]
    fn max_over_reads_takes_latest_producer() {
        let mut t = CompletionTables::new();
        t.set(Loc::IntReg(1), 5);
        t.set(Loc::Mem(9), 12);
        let reads = [(Loc::IntReg(1), 0), (Loc::Mem(9), 0), (Loc::IntReg(2), 0)];
        assert_eq!(t.max_over_reads(&reads), 12);
        assert_eq!(t.max_over_reads(&[]), 0);
    }
}
