//! `gcc` — optimizing C compiler (SPECint95 126.gcc).
//!
//! In the paper: very reusable (Figure 3 puts it among the highest), yet
//! with *almost no* speed-up from instruction-level reuse (Figure 4a:
//! ≈1.0) and a modest trace-level one. The reason: the critical path is
//! bookkeeping — counters and accumulators taking fresh values — made of
//! 1-cycle operations that reuse cannot shorten even when it could match
//! them.
//!
//! Mechanism: a lexer-style finite state machine. Tokens from a repeated
//! source pattern are classified through a static class table and
//! dispatched through a *jump table* (indirect `jmp`, as compilers'
//! switch statements compile to). All dispatch work repeats every pass
//! (R). Each handler increments its class counter — genuinely chained
//! fresh adds (F) that form the critical path and cap both reuse levels.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const TEXT: u64 = 0x1000;
const CLASSTBL: u64 = 0x2000; // token -> class
const COUNTS: u64 = 0x3000; // per-class counters
const NTOKENS: u64 = 160;
const VOCAB: u64 = 32;
const NCLASSES: u64 = 8;

fn source(iters: u32) -> String {
    // One handler per class: load/increment/store its counter, then
    // rejoin. Handlers are distinct code (distinct PCs), like a real
    // switch.
    let mut handlers = String::new();
    for c in 0..NCLASSES {
        handlers.push_str(&format!(
            r#"
hand{c}: addq    r5, zero, COUNTS
        ldq     r6, {c}(r5)         ; F: evolving class counter
        addq    r6, r6, 1           ; F: the chained critical path
        stq     r6, {c}(r5)         ; F
        br      join
"#
        ));
    }
    format!(
        r#"
        .equ    TEXT, {TEXT}
        .equ    CLASSTBL, {CLASSTBL}
        .equ    COUNTS, {COUNTS}
        .equ    NTOKENS, {NTOKENS}

        li      r9, {iters}
pass:   li      r1, TEXT
        li      r2, NTOKENS
tok:    ldq     r3, 0(r1)           ; R: token (pattern repeats)
        addq    r4, r3, CLASSTBL    ; R
        ldq     r4, 0(r4)           ; R: class (static table)
        addq    r4, r4, jumptbl_base ; R: handler table slot
        ldq     r4, 0(r4)           ; R: handler address (static)
        jmp     r4                  ; R: switch dispatch
{handlers}
join:   addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, tok             ; R
        subq    r9, r9, 1           ; F
        bnez    r9, pass            ; F
        halt

        .equ    jumptbl_base, 0x4000
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("gcc kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x6cc_001);
    for i in 0..NTOKENS {
        prog.data.push((TEXT + i, rng.next_below(VOCAB)));
    }
    for t in 0..VOCAB {
        prog.data.push((CLASSTBL + t, rng.next_below(NCLASSES)));
    }
    // Jump table: handler code addresses, resolved from labels.
    for c in 0..NCLASSES {
        let addr = prog
            .code_label(&format!("hand{c}"))
            .expect("handler label must exist");
        prog.data.push((0x4000 + c, addr as u64));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "gcc",
        suite: Suite::Int,
        description: "lexer FSM with jump-table dispatch: dispatch reuses, but chained \
                      1-cycle class counters own the critical path (ILR gains ~nothing)",
        paper: PaperRefs {
            reusability_pct: 94.0,
            ilr_speedup_inf: 1.05,
            ilr_speedup_w256: 1.05,
            tlr_speedup_inf: 1.5,
            tlr_speedup_w256: 2.8,
            trace_size: 16.0,
        },
        default_iters: 190,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;
    use tlr_isa::NullSink;

    #[test]
    fn profile_matches_gcc_shape() {
        let prog = build(11, 30);
        let p = profile(&prog, 60_000);
        assert!(
            (75.0..96.0).contains(&p.pct()),
            "gcc reusability {}",
            p.pct()
        );
        assert!(p.avg_trace() < 30.0, "gcc trace size {}", p.avg_trace());
    }

    #[test]
    fn class_counters_add_up_to_token_count() {
        let prog = build(5, 3);
        let mut vm = tlr_vm::Vm::new(&prog);
        vm.run(10_000_000, &mut NullSink).unwrap();
        let total: u64 = (0..NCLASSES).map(|c| vm.memory().read(COUNTS + c)).sum();
        assert_eq!(total, 3 * NTOKENS);
    }
}
