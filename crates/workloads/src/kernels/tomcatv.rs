//! `tomcatv` — vectorized mesh generation (SPECfp95 101.tomcatv).
//!
//! High-reusability FP benchmark with mid-sized traces (≈40) and a solid
//! trace-level speed-up; its square roots give instruction-level reuse
//! something real to shorten.
//!
//! Mechanism: repeated smoothing passes over a *static* mesh: the
//! coordinate arrays are read-only, so every distance computation —
//! including the 30-cycle `sqrtt` — repeats exactly. Cells are visited
//! through a static permutation chase (serial, reusable). Every third
//! cell a residual diagnostic is recomputed from the pass number (fresh,
//! unchained), which breaks traces at the ≈40-instruction scale.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const CELLS: u64 = 96;
const NEXT: u64 = 0x1000;
const XS: u64 = 0x1100;
const YS: u64 = 0x1200;
const OUT: u64 = 0x1300;
const SCRATCH: u64 = 0x1400;
const COEFF: u64 = 0x800;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    NEXT, {NEXT}
        .equ    XS, {XS}
        .equ    YS, {YS}
        .equ    OUT, {OUT}
        .equ    SCRATCH, {SCRATCH}
        .equ    COEFF, {COEFF}
        .equ    CELLS, {CELLS}

        li      r9, {iters}
        li      r10, 0              ; pass number
        li      r1, 0               ; chase cursor: NEVER reset — the
                                    ; permutation closes after CELLS steps,
                                    ; so the serial chase chain runs across
                                    ; all passes with repeating values
pass:   li      r2, CELLS
        li      r11, 0              ; cell counter within pass
cell:   addq    r3, r1, NEXT        ; R
        ldq     r1, 0(r3)           ; R: serial chase (critical path)
        addq    r4, r1, XS          ; R
        ldt     f1, 0(r4)           ; R: static x
        addq    r5, r1, YS          ; R
        ldt     f2, 0(r5)           ; R: static y
        mult    f3, f1, f1          ; R
        mult    f4, f2, f2          ; R
        addt    f5, f3, f4          ; R
        sqrtt   f6, f5              ; R: 30-cycle op, fully reusable
        ldt     f7, 0(zero)         ; R: smoothing coefficient (word 0)
        mult    f8, f6, f7          ; R
        addq    r6, r1, OUT         ; R
        stt     f8, 0(r6)           ; R: same smoothed value every pass
        addq    r11, r11, 1         ; R (resets per pass)
        mulq    r7, r11, 0xAAAB     ; R: pseudo-period selector (repeats per pass)
        and     r7, r7, 1           ; R: fires on ~1/2 of cells
        bnez    r7, skipd           ; R
        addq    r8, r1, SCRATCH     ; R (kept ahead of the fresh burst so
                                    ;    the burst stays contiguous)
        itof    f9, r10             ; F: residual from pass number
        mult    f9, f9, f8          ; F
        stt     f9, 0(r8)           ; F
skipd:  subq    r2, r2, 1           ; R
        bnez    r2, cell            ; R
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, pass            ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("tomcatv kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x70_c47);
    // Smoothing coefficient lives at word 0 (loaded via 0(zero)).
    prog.data.push((0, 0.75f64.to_bits()));
    let stride = 2 * rng.next_below(CELLS / 2) + 1; // odd => coprime to 96? not always
                                                    // 96 = 2^5 * 3: an odd stride coprime to 96 must also avoid 3.
    let stride = if stride.is_multiple_of(3) {
        stride + 2
    } else {
        stride
    };
    for i in 0..CELLS {
        prog.data.push((NEXT + i, (i + stride) % CELLS));
    }
    for i in 0..CELLS {
        prog.data
            .push((XS + i, rng.next_f64_in(-8.0, 8.0).to_bits()));
        prog.data
            .push((YS + i, rng.next_f64_in(-8.0, 8.0).to_bits()));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "tomcatv",
        suite: Suite::Fp,
        description: "mesh smoothing over static coordinates: reusable sqrt-heavy bodies \
                      on a permutation-chase chain; pass-number residuals break traces",
        paper: PaperRefs {
            reusability_pct: 90.0,
            ilr_speedup_inf: 1.6,
            ilr_speedup_w256: 1.5,
            tlr_speedup_inf: 4.0,
            tlr_speedup_w256: 6.0,
            trace_size: 45.0,
        },
        default_iters: 220,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_tomcatv_shape() {
        let prog = build(11, 25);
        let p = profile(&prog, 60_000);
        assert!(
            (80.0..98.0).contains(&p.pct()),
            "tomcatv reusability {}",
            p.pct()
        );
        assert!(
            (15.0..120.0).contains(&p.avg_trace()),
            "tomcatv trace size {}",
            p.avg_trace()
        );
    }

    #[test]
    fn permutation_visits_every_cell() {
        let prog = build(23, 1);
        let next: std::collections::HashMap<u64, u64> = prog
            .data
            .iter()
            .filter(|(a, _)| (NEXT..NEXT + CELLS).contains(a))
            .map(|(a, v)| (a - NEXT, *v))
            .collect();
        let mut cur = 0u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..CELLS {
            assert!(seen.insert(cur));
            cur = next[&cur];
        }
        assert_eq!(seen.len() as u64, CELLS);
    }
}
