//! `su2cor` — quantum chromodynamics, quenched SU(2) gauge field
//! (SPECfp95 103.su2cor).
//!
//! Mid-to-high FP benchmark: good reusability, ≈30-instruction traces,
//! moderate trace-level speed-up.
//!
//! Mechanism: the gauge configuration is *quenched* — link matrices are
//! drawn from a small pool of distinct values and never updated. Sweeps
//! walk the links through a static permutation (a dependent load chain,
//! which is the reusable critical path), load the link's pooled matrix
//! elements and form plaquette-like products — all repeating exactly
//! every sweep. A per-pair diagnostic recomputed from the sweep number
//! (fresh values, but *not* serially chained) breaks traces every couple
//! of links; one genuinely chained accumulator per sweep keeps a thin
//! fresh spine.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const LINKS: u64 = 256;
const POOL_SIZE: u64 = 8;
const PERM: u64 = 0x1000; // next-link permutation
const POOLIDX: u64 = 0x1400; // link -> pool index
const POOL: u64 = 0x1800; // pool of 4-double "matrices"
const SITE: u64 = 0x2000; // per-link results
const SCRATCH: u64 = 0x2800; // diagnostics
const ACC: u64 = 0x2ff0;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    PERM, {PERM}
        .equ    POOLIDX, {POOLIDX}
        .equ    POOL, {POOL}
        .equ    SITE, {SITE}
        .equ    SCRATCH, {SCRATCH}
        .equ    ACC, {ACC}
        .equ    LINKS, {LINKS}

        li      r9, {iters}
        li      r10, 0              ; sweep number
        li      r1, 0               ; chase cursor: never reset — the link
                                    ; permutation closes after LINKS steps
sweep:  li      r2, LINKS
        fmov    f9, f31             ; R: zero the per-sweep action
link:   addq    r3, r1, PERM        ; R
        ldq     r1, 0(r3)           ; R: chase to next link (serial chain)
        addq    r4, r1, POOLIDX     ; R
        ldq     r5, 0(r4)           ; R: pool index (pooled, repeats)
        sll     r6, r5, 2           ; R
        addq    r6, r6, POOL        ; R
        ldt     f1, 0(r6)           ; R: matrix elements (pooled)
        ldt     f2, 1(r6)           ; R
        ldt     f3, 2(r6)           ; R
        ldt     f4, 3(r6)           ; R
        mult    f5, f1, f4          ; R: plaquette-ish determinant terms
        mult    f6, f2, f3          ; R
        subt    f7, f5, f6          ; R
        addq    r7, r1, SITE        ; R
        stt     f7, 0(r7)           ; R: same value every sweep
        and     r8, r1, 1           ; R: every other link...
        bnez    r8, skipd           ; R
        itof    f8, r10             ; F: diagnostic from sweep number
        mult    f8, f8, f7          ; F (fresh × pooled)
        addq    r7, r1, SCRATCH     ; R
        stt     f8, 0(r7)           ; F
skipd:  addt    f9, f9, f7          ; R: sweep action (resets every sweep)
        subq    r2, r2, 1           ; R
        bnez    r2, link            ; R
        ldt     f10, ACC(zero)      ; F: global action (chained across sweeps)
        addt    f10, f10, f9        ; F
        stt     f10, ACC(zero)      ; F
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, sweep           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("su2cor kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x52c_071);
    // Single-cycle permutation over the links (a rotated index walk with
    // a seeded stride that is coprime to LINKS keeps it one cycle).
    let stride = 2 * rng.next_below(LINKS / 2) + 1; // odd => coprime to 256
    for i in 0..LINKS {
        prog.data.push((PERM + i, (i + stride) % LINKS));
    }
    for i in 0..LINKS {
        prog.data.push((POOLIDX + i, rng.next_below(POOL_SIZE)));
    }
    for m in 0..POOL_SIZE {
        for e in 0..4 {
            prog.data
                .push((POOL + m * 4 + e, rng.next_f64_in(-1.0, 1.0).to_bits()));
        }
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "su2cor",
        suite: Suite::Fp,
        description: "quenched gauge sweeps: pooled link matrices and a permutation-chase \
                      chain reuse; sweep-number diagnostics break traces every other link",
        paper: PaperRefs {
            reusability_pct: 85.0,
            ilr_speedup_inf: 1.5,
            ilr_speedup_w256: 1.4,
            tlr_speedup_inf: 2.5,
            tlr_speedup_w256: 3.2,
            trace_size: 30.0,
        },
        default_iters: 80,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_su2cor_shape() {
        let prog = build(11, 15);
        let p = profile(&prog, 60_000);
        assert!(
            (75.0..96.0).contains(&p.pct()),
            "su2cor reusability {}",
            p.pct()
        );
        assert!(
            (10.0..80.0).contains(&p.avg_trace()),
            "su2cor trace size {}",
            p.avg_trace()
        );
    }

    #[test]
    fn permutation_is_a_single_cycle() {
        let prog = build(9, 1);
        let perm: std::collections::HashMap<u64, u64> = prog
            .data
            .iter()
            .filter(|(a, _)| (PERM..PERM + LINKS).contains(a))
            .map(|(a, v)| (a - PERM, *v))
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut cur = 0u64;
        for _ in 0..LINKS {
            assert!(seen.insert(cur), "permutation revisits {cur} early");
            cur = perm[&cur];
        }
        assert_eq!(cur, 0, "permutation must close a single cycle");
    }
}
