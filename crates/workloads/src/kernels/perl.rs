//! `perl` — Perl interpreter (SPECint95 134.perl).
//!
//! The paper's cautionary tale: reusability is high, yet the
//! infinite-window trace-level speed-up is **1.01** — the lowest of the
//! suite — while the limited-window run still gains from fetch/window
//! bypass. The critical path simply is not reusable.
//!
//! Mechanism: hashing words from a fixed dictionary into a symbol table.
//! Per-word work (rolling hash over the word's characters, bucket probe)
//! repeats exactly — every word is from the dictionary — so most
//! instructions are reusable. But the interpreter's *global state* chain
//! `g = g × 31 + h(word)` takes a fresh value on every word forever: an
//! unbreakable serial multiply chain that neither reuse level can touch.
//! Bucket hit counters add mid-word fresh bursts that keep traces near
//! the paper's ≈15.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const NWORDS: u64 = 64;
const WORDLEN: u64 = 8;
const WORDS: u64 = 0x1000; // dictionary: NWORDS × WORDLEN chars
const BUCKETS: u64 = 0x2000; // hit counters
const GLOBAL: u64 = 0x2f00;
const SEQ: u64 = 0x3000; // word sequence (indices into dictionary)
const SEQLEN: u64 = 128;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    WORDS, {WORDS}
        .equ    BUCKETS, {BUCKETS}
        .equ    GLOBAL, {GLOBAL}
        .equ    SEQ, {SEQ}
        .equ    SEQLEN, {SEQLEN}
        .equ    WORDLEN, {WORDLEN}

        li      r9, {iters}
        ldq     r10, GLOBAL(zero)   ; global interpreter state (F chain)
pass:   li      r1, 0               ; sequence cursor
        li      r2, SEQLEN
word:   addq    r3, r1, SEQ         ; R
        ldq     r4, 0(r3)           ; R: word index (sequence repeats)
        sll     r5, r4, 3           ; R
        addq    r5, r5, WORDS       ; R: word base
        li      r6, WORDLEN         ; R
        li      r7, 5381            ; R: per-word hash seed (djb2-style)
hchar:  ldq     r8, 0(r5)           ; R: character (dictionary is static)
        mulq    r7, r7, 33          ; R: rolling hash (repeats per word)
        addq    r7, r7, r8          ; R
        addq    r5, r5, 1           ; R
        subq    r6, r6, 1           ; R
        bnez    r6, hchar           ; R
        and     r11, r7, 63         ; R: bucket index
        addq    r11, r11, BUCKETS   ; R
        ldq     r12, 0(r11)         ; F: hit counter (evolves per bucket)
        addq    r12, r12, 1         ; F
        stq     r12, 0(r11)         ; F
        mulq    r10, r10, 31        ; F: GLOBAL STATE — the serial chain
        addq    r10, r10, r7        ; F:   no value ever repeats
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, word            ; R
        subq    r9, r9, 1           ; F
        bnez    r9, pass            ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("perl kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x9e_4151);
    for w in 0..NWORDS {
        for c in 0..WORDLEN {
            prog.data
                .push((WORDS + w * WORDLEN + c, 32 + rng.next_below(96)));
        }
    }
    for i in 0..SEQLEN {
        prog.data.push((SEQ + i, rng.next_below(NWORDS)));
    }
    prog.data.push((GLOBAL, 0x9e3779b97f4a7c15 ^ seed));
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "perl",
        suite: Suite::Int,
        description: "word hashing with a fresh global-state multiply chain: reusable \
                      bodies, unreusable critical path (the paper's 1.01x TLR case)",
        paper: PaperRefs {
            reusability_pct: 88.0,
            ilr_speedup_inf: 1.2,
            ilr_speedup_w256: 1.2,
            tlr_speedup_inf: 1.01,
            tlr_speedup_w256: 2.0,
            trace_size: 15.0,
        },
        default_iters: 75,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_perl_shape() {
        let prog = build(11, 10);
        let p = profile(&prog, 60_000);
        assert!(
            (80.0..96.0).contains(&p.pct()),
            "perl reusability {}",
            p.pct()
        );
        assert!(
            (6.0..40.0).contains(&p.avg_trace()),
            "perl trace size {}",
            p.avg_trace()
        );
    }
}
