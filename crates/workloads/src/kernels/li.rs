//! `li` — XLISP interpreter (SPECint95 130.li).
//!
//! High-reusability integer benchmark with ≈20-instruction traces and a
//! solid trace-level speed-up: interpreters re-walk the same data
//! structures with the same values constantly.
//!
//! Mechanism: an expression evaluator over a static heap of cons cells.
//! A pool of small arithmetic expression trees is evaluated round-robin
//! using an explicit value stack. Tree walks are dependent load chains
//! (`car`/`cdr` chasing — the reusable critical path); stack traffic
//! repeats exactly per evaluation because the stack pointer pattern and
//! the pushed values are identical every time a given tree is evaluated.
//! The per-evaluation result is folded into a report slot selected by
//! the round number (fresh, unchained).

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const NTREES: u64 = 16;
const ROOTS: u64 = 0x1000; // tree roots
const HEAP: u64 = 0x1100; // cons cells: [tag, left, right] triples
const STACK: u64 = 0x4000;
const REPORT: u64 = 0x5000;

/// Node tags.
const TAG_LEAF: u64 = 0;
const TAG_ADD: u64 = 1;
const TAG_MUL: u64 = 2;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    ROOTS, {ROOTS}
        .equ    STACK, {STACK}
        .equ    REPORT, {REPORT}
        .equ    NTREES, {NTREES}

        li      r9, {iters}
        li      r10, 0              ; round number
        li      r22, 3              ; environment cursor: never reset; it
                                    ; advances by a full-period shift-add
                                    ; LCG (5c+1 mod 16) once per eval —
                                    ; the interpreter's serial, reusable
                                    ; spine (environment rotation)
round:  li      r1, 0               ; tree index (R: resets per round)
        li      r2, NTREES
tree:   addq    r3, r1, ROOTS       ; R
        ldq     r4, 0(r3)           ; R: root cell address
        li      r20, STACK          ; R: work-stack pointer (node stack)
        li      r21, STACK          ; R: value-stack pointer
        addq    r21, r21, 64        ; R
        ; push root on the node stack
        stq     r4, 0(r20)          ; R
        addq    r20, r20, 1         ; R
walk:   li      r6, STACK           ; R: done when the node stack empties
        subq    r6, r20, r6         ; R
        beqz    r6, done            ; R
        subq    r20, r20, 1         ; R
        ldq     r4, 0(r20)          ; R: pop node
        bltz    r4, apply           ; R: negative = pending operator marker
        ldq     r5, 0(r4)           ; R: tag (car chase — the load chain)
        beqz    r5, leaf            ; R
        ; Operator node: push marker (-tag), then children.
        subq    r6, zero, r5        ; R
        stq     r6, 0(r20)          ; R
        addq    r20, r20, 1         ; R
        ldq     r7, 1(r4)           ; R: left child (cdr chase)
        ldq     r8, 2(r4)           ; R: right child
        stq     r7, 0(r20)          ; R
        addq    r20, r20, 1         ; R
        stq     r8, 0(r20)          ; R
        addq    r20, r20, 1         ; R
        br      walk                ; R
leaf:   ldq     r7, 1(r4)           ; R: leaf value
        stq     r7, 0(r21)          ; R: push on value stack
        addq    r21, r21, 1         ; R
        br      walk                ; R
apply:  subq    r21, r21, 1         ; R
        ldq     r7, 0(r21)          ; R
        subq    r21, r21, 1         ; R
        ldq     r8, 0(r21)          ; R
        addq    r5, zero, r4        ; R: marker = -tag
        addq    r5, r5, {TAG_ADD}   ; R: is it ADD (marker == -1)?
        beqz    r5, doadd           ; R
        mulq    r7, r7, r8          ; R: MUL node (8-cycle, reusable)
        br      store               ; R
doadd:  addq    r7, r7, r8          ; R
store:  stq     r7, 0(r21)          ; R
        addq    r21, r21, 1         ; R
        ; Per-application profile write (the interpreter's instrumentation
        ; counter): keyed by round number — a fresh burst at every reduce,
        ; which keeps maximal reusable runs near the paper's scale.
        addq    r12, r22, REPORT    ; R
        xor     r13, r7, r10        ; F
        stq     r13, 32(r12)        ; F
        br      walk                ; R
        ; Evaluation finished: value on top of the value stack.
done:   subq    r21, r21, 1         ; R
        ldq     r7, 0(r21)          ; R: tree result (same every round)
        ; Rotate the environment: three LCG steps (deep 1-cycle serial
        ; chain, reusable — the trace-level target).
        sll     r23, r22, 2         ; R
        addq    r22, r22, r23       ; R
        addq    r22, r22, 1         ; R
        and     r22, r22, 15        ; R
        sll     r23, r22, 2         ; R
        addq    r22, r22, r23       ; R
        addq    r22, r22, 1         ; R
        and     r22, r22, 15        ; R
        sll     r23, r22, 2         ; R
        addq    r22, r22, r23       ; R
        addq    r22, r22, 1         ; R
        and     r22, r22, 15        ; R
        addq    r11, r22, REPORT    ; R: report slot from the environment
        xor     r8, r7, r10         ; F: fold with round number (unchained)
        stq     r8, 0(r11)          ; F
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, tree            ; R
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, round           ; F
        halt
"#
    )
}

/// Generate a random expression tree into the heap image; returns the
/// root cell address. Cells are `[tag, left/value, right]` triples.
fn gen_tree(
    rng: &mut Xoshiro256StarStar,
    cells: &mut Vec<(u64, u64, u64)>,
    next_addr: &mut u64,
    depth: u32,
) -> u64 {
    let addr = *next_addr;
    *next_addr += 3;
    if depth == 0 || rng.next_below(4) == 0 {
        cells.push((TAG_LEAF, rng.next_below(1000), 0));
    } else {
        let tag = if rng.next_below(2) == 0 {
            TAG_ADD
        } else {
            TAG_MUL
        };
        // Reserve this cell's slot before generating children.
        let slot = cells.len();
        cells.push((tag, 0, 0));
        let left = gen_tree(rng, cells, next_addr, depth - 1);
        let right = gen_tree(rng, cells, next_addr, depth - 1);
        cells[slot] = (tag, left, right);
    }
    addr
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("li kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x11_59e1);
    let mut cells: Vec<(u64, u64, u64)> = Vec::new();
    let mut next_addr = HEAP;
    let mut roots = Vec::new();
    for _ in 0..NTREES {
        roots.push(gen_tree(&mut rng, &mut cells, &mut next_addr, 3));
    }
    for (i, root) in roots.iter().enumerate() {
        prog.data.push((ROOTS + i as u64, *root));
    }
    let mut addr = HEAP;
    for (tag, l, r) in cells {
        prog.data.push((addr, tag));
        prog.data.push((addr + 1, l));
        prog.data.push((addr + 2, r));
        addr += 3;
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "li",
        suite: Suite::Int,
        description: "lisp-style expression evaluator: cons-cell chases and value-stack \
                      traffic repeat exactly per evaluation",
        paper: PaperRefs {
            reusability_pct: 93.0,
            ilr_speedup_inf: 1.5,
            ilr_speedup_w256: 1.4,
            tlr_speedup_inf: 3.0,
            tlr_speedup_w256: 3.5,
            trace_size: 20.0,
        },
        default_iters: 250,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;
    use tlr_isa::NullSink;

    #[test]
    fn evaluator_terminates_every_round() {
        let prog = build(3, 2);
        let mut vm = tlr_vm::Vm::new(&prog);
        let outcome = vm.run(10_000_000, &mut NullSink).unwrap();
        assert!(matches!(outcome, tlr_vm::RunOutcome::Halted { .. }));
    }

    #[test]
    fn profile_matches_li_shape() {
        let prog = build(11, 40);
        let p = profile(&prog, 60_000);
        assert!(
            (82.0..98.0).contains(&p.pct()),
            "li reusability {}",
            p.pct()
        );
        assert!(
            (6.0..90.0).contains(&p.avg_trace()),
            "li trace size {}",
            p.avg_trace()
        );
    }
}
