//! `vortex` — object-oriented in-memory database (SPECint95 147.vortex).
//!
//! High-reusability integer benchmark with ≈22-instruction traces and a
//! good trace-level speed-up: database queries repeatedly traverse the
//! same index structures for the same keys.
//!
//! Mechanism: transactions walk a static query list through a
//! permutation chase (the reusable serial chain), hash the query key
//! (reusable multiply), probe an open-addressing index of a static
//! record table, and validate the record's schema fields. A small
//! fraction of transactions also write an audit entry derived from the
//! transaction epoch (fresh, unchained).

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const NRECORDS: u64 = 256; // power of two (probe mask)
const NQUERIES: u64 = 64;
const QKEYS: u64 = 0x1000; // query keys (subset of record keys)
const QNEXT: u64 = 0x1100; // query permutation chase
const INDEX: u64 = 0x2000; // open-addressing key slots
const RECORDS: u64 = 0x3000; // 4 fields per record
const AUDIT: u64 = 0x5000;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    QKEYS, {QKEYS}
        .equ    QNEXT, {QNEXT}
        .equ    INDEX, {INDEX}
        .equ    RECORDS, {RECORDS}
        .equ    AUDIT, {AUDIT}
        .equ    NQUERIES, {NQUERIES}

        li      r9, {iters}
        li      r10, 0              ; epoch
        li      r1, 0               ; query cursor: never reset — the chase
                                    ; permutation closes after NQUERIES steps
epoch:  li      r2, NQUERIES
txn:    addq    r3, r1, QNEXT       ; R
        ldq     r1, 0(r3)           ; R: chase to next query (serial chain)
        addq    r4, r1, QKEYS       ; R
        ldq     r5, 0(r4)           ; R: key (static query set)
        mulq    r6, r5, 40503       ; R: hash (8-cycle, reusable)
        and     r6, r6, 255         ; R: slot
probe:  addq    r7, r6, INDEX       ; R
        ldq     r8, 0(r7)           ; R: slot key (static index)
        cmpeq   r11, r8, r5         ; R
        bnez    r11, found          ; R
        addq    r6, r6, 1           ; R: linear probe
        and     r6, r6, 255         ; R
        br      probe               ; R
found:  sll     r12, r6, 2          ; R
        addq    r12, r12, RECORDS   ; R
        ldq     r13, 0(r12)         ; R: field 0 (static record)
        ldq     r14, 1(r12)         ; R
        ldq     r15, 2(r12)         ; R
        xor     r16, r13, r14       ; R: schema validation
        xor     r16, r16, r15       ; R
        xor     r18, r16, r10       ; F: audit value from epoch (unchained)
        and     r19, r10, 255       ; F
        addq    r19, r19, AUDIT     ; F
        stq     r18, 0(r19)         ; F
next:   subq    r2, r2, 1           ; R
        bnez    r2, txn             ; R
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, epoch           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("vortex kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x04_0e7e);
    // Static record keys, placed with open addressing so every probe
    // sequence terminates.
    let mut slots = vec![0u64; NRECORDS as usize];
    let mut keys = Vec::new();
    for _ in 0..NRECORDS / 2 {
        // Nonzero keys; half-full table keeps probe chains short.
        let key = 1 + rng.next_below(1 << 30);
        let mut slot = (key.wrapping_mul(40503) & 255) as usize;
        while slots[slot] != 0 {
            slot = (slot + 1) & 255;
        }
        slots[slot] = key;
        keys.push(key);
    }
    for (i, k) in slots.iter().enumerate() {
        prog.data.push((INDEX + i as u64, *k));
    }
    for i in 0..NRECORDS * 4 {
        prog.data.push((RECORDS + i, rng.next_below(1 << 20)));
    }
    // Query keys: always present in the index (lookups succeed).
    for q in 0..NQUERIES {
        let k = keys[rng.next_below(keys.len() as u64) as usize];
        prog.data.push((QKEYS + q, k));
    }
    let mut stride = 2 * rng.next_below(NQUERIES / 2) + 1; // odd => coprime to 64
    if stride == 0 {
        stride = 1;
    }
    for i in 0..NQUERIES {
        prog.data.push((QNEXT + i, (i + stride) % NQUERIES));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "vortex",
        suite: Suite::Int,
        description: "in-memory DB transactions: static index probes and record validation \
                      on a query-chase chain; epoch-derived audit writes",
        paper: PaperRefs {
            reusability_pct: 94.0,
            ilr_speedup_inf: 1.3,
            ilr_speedup_w256: 1.3,
            tlr_speedup_inf: 3.0,
            tlr_speedup_w256: 4.0,
            trace_size: 22.0,
        },
        default_iters: 260,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;
    use tlr_isa::NullSink;

    #[test]
    fn every_lookup_terminates() {
        let prog = build(3, 2);
        let mut vm = tlr_vm::Vm::new(&prog);
        let outcome = vm.run(10_000_000, &mut NullSink).unwrap();
        assert!(matches!(outcome, tlr_vm::RunOutcome::Halted { .. }));
    }

    #[test]
    fn profile_matches_vortex_shape() {
        let prog = build(11, 30);
        let p = profile(&prog, 60_000);
        assert!(
            (85.0..99.0).contains(&p.pct()),
            "vortex reusability {}",
            p.pct()
        );
        assert!(
            (8.0..80.0).contains(&p.avg_trace()),
            "vortex trace size {}",
            p.avg_trace()
        );
    }
}
