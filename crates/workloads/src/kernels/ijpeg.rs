//! `ijpeg` — JPEG compression (SPECint95 132.ijpeg).
//!
//! The paper's trace-level champion for the infinite window: Figure 6a
//! reports an 11.57× speed-up — the whole per-block transform chain
//! collapses — with the longest integer traces (≈37).
//!
//! Mechanism: DCT-style butterfly transforms over image blocks drawn
//! from a small pool of distinct pixel rows (smooth images repeat block
//! content), linked by a DC *predictor* carried from block to block —
//! JPEG's DC DPCM coding. The predictor advances by a full-period
//! shift-add recurrence (guaranteed periodic, never reset), so the deep
//! serial chain it forms across the entire run consists of repeating
//! 1-cycle operations: trace-level reuse collapses whole blocks of it at
//! once, while instruction-level reuse gains almost nothing (there is no
//! latency to shave off a 1-cycle link) — reproducing ijpeg's signature
//! combination of a huge TLR win with a modest ILR one. One output write
//! per block is recomputed from the pass number (fresh, unchained).

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const BLOCKS: u64 = 128;
const POOL_ROWS: u64 = 12;
const BLKIDX: u64 = 0x1000; // block -> pool row
const POOL: u64 = 0x1100; // pool rows of 8 pixels
const OUT: u64 = 0x2000;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    BLKIDX, {BLKIDX}
        .equ    POOL, {POOL}
        .equ    OUT, {OUT}
        .equ    BLOCKS, {BLOCKS}

        li      r9, {iters}
        li      r10, 0              ; pass number
        li      r3, 7               ; DC predictor state: NEVER reset.
                                    ; It advances by a full-period
                                    ; shift-add LCG (5c+1 mod 16), so its
                                    ; value sequence is periodic and the
                                    ; deep 1-cycle chain through it is
                                    ; fully reusable — exactly what trace
                                    ; reuse collapses and instruction
                                    ; reuse cannot (1-cycle links).
pass:   li      r1, 0               ; block index
        li      r2, BLOCKS
blk:    addq    r4, r1, BLKIDX      ; R
        ldq     r5, 0(r4)           ; R: pool row id (static mapping)
        sll     r5, r5, 3           ; R
        addq    r5, r5, POOL        ; R
        ldq     r11, 0(r5)          ; R: pixels (pooled rows repeat)
        ldq     r12, 1(r5)          ; R
        ldq     r13, 2(r5)          ; R
        ldq     r14, 3(r5)          ; R
        ldq     r15, 4(r5)          ; R
        ldq     r16, 5(r5)          ; R
        ldq     r17, 6(r5)          ; R
        ldq     r18, 7(r5)          ; R
        addq    r11, r11, r3        ; R: DC predictor feeds the butterfly,
                                    ;    so the whole transform chains
        addq    r19, r11, r18       ; R: butterfly stage 1
        subq    r20, r11, r18       ; R
        addq    r21, r12, r17       ; R
        subq    r22, r12, r17       ; R
        addq    r23, r13, r16       ; R
        subq    r24, r13, r16       ; R
        addq    r25, r14, r15       ; R
        subq    r26, r14, r15       ; R
        addq    r27, r19, r25       ; R: stage 2
        subq    r28, r19, r25       ; R
        addq    r19, r21, r23       ; R
        subq    r21, r21, r23       ; R
        addq    r27, r27, r19       ; R: DC term
        sll     r28, r28, 1         ; R
        xor     r28, r28, r21       ; R
        xor     r28, r28, r20       ; R
        xor     r28, r28, r22       ; R
        xor     r28, r28, r24       ; R
        xor     r28, r28, r26       ; R
        ; DC predictor advance: three full-period LCG steps (c = 5c+1
        ; mod 16 each), the serial spine of the whole run.
        sll     r29, r3, 2          ; R
        addq    r3, r3, r29         ; R
        addq    r3, r3, 1           ; R
        and     r3, r3, 15          ; R
        sll     r29, r3, 2          ; R
        addq    r3, r3, r29         ; R
        addq    r3, r3, 1           ; R
        and     r3, r3, 15          ; R
        sll     r29, r3, 2          ; R
        addq    r3, r3, r29         ; R
        addq    r3, r3, 1           ; R
        and     r3, r3, 15          ; R
        addq    r7, r1, OUT         ; R
        xor     r6, r10, r3         ; F: output coefficient (pass-derived)
        stq     r6, 0(r7)           ; F
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, blk             ; R
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, pass            ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("ijpeg kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x13_9e61);
    for b in 0..BLOCKS {
        prog.data.push((BLKIDX + b, rng.next_below(POOL_ROWS)));
    }
    for r in 0..POOL_ROWS {
        for p in 0..8 {
            prog.data.push((POOL + r * 8 + p, rng.next_below(256)));
        }
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "ijpeg",
        suite: Suite::Int,
        description: "DCT butterflies over pooled blocks linked by the DC predictor chain: \
                      the whole per-pass chain is reusable (the paper's 11.6x TLR standout)",
        paper: PaperRefs {
            reusability_pct: 96.0,
            ilr_speedup_inf: 1.3,
            ilr_speedup_w256: 1.3,
            tlr_speedup_inf: 11.57,
            tlr_speedup_w256: 8.0,
            trace_size: 36.7,
        },
        default_iters: 160,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_ijpeg_shape() {
        let prog = build(11, 30);
        let p = profile(&prog, 60_000);
        assert!(p.pct() > 88.0, "ijpeg reusability {}", p.pct());
        assert!(
            (20.0..60.0).contains(&p.avg_trace()),
            "ijpeg trace size {}",
            p.avg_trace()
        );
    }
}
