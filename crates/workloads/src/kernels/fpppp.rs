//! `fpppp` — quantum chemistry two-electron integrals (SPECfp95
//! 145.fpppp).
//!
//! The real program is famous for enormous straight-line basic blocks of
//! floating-point code. In the paper it shows decent instruction-level
//! reusability but almost no ILR speed-up (Figure 4a: ≈1.0) and short
//! traces with little TLR gain.
//!
//! Mechanism: a large *generated* straight-line block (built with
//! [`tlr_asm::ProgramBuilder`], as the real code is compiler-unrolled)
//! evaluating integral-like contractions. Most operands are static basis
//! coefficients (R loads and R products of static values), but every few
//! operations the running contraction accumulates into an evolving total
//! (F), so reusable runs stay short and the critical path — the fresh
//! accumulator chain of 1-and-4-cycle ops — is untouchable by reuse.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{Program, ProgramBuilder};
use tlr_isa::{FReg, Reg};
use tlr_util::Xoshiro256StarStar;

const COEFF: u64 = 0x1000;
/// Static coefficients in the block.
const N_COEFF: u64 = 128;
/// Contraction groups per straight-line block.
const GROUPS: usize = 40;

fn build(seed: u64, iters: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xf9_9990);

    b.org(COEFF);
    let coeffs: Vec<f64> = (0..N_COEFF).map(|_| rng.next_f64_in(0.1, 2.0)).collect();
    b.doubles(&coeffs);

    let r_iter = Reg::new(9);
    let r_base = Reg::new(8);
    let f_acc = FReg::new(20); // evolving total (F chain)
    let f_drift = FReg::new(21);

    b.li(r_iter, iters as i64);
    b.li(r_base, COEFF as i64);
    // A tiny strictly-positive drift keeps the accumulator fresh forever.
    b.ldt(f_drift, 0, r_base);
    let top = b.here();

    // The straight-line "basic block": GROUPS contraction groups. Each
    // group loads static coefficients, combines them (all R — the values
    // repeat every outer iteration), then folds into the evolving
    // accumulator (F) — the fold is the trace breaker.
    //
    // The block *structure* (which coefficient each group touches) is
    // compiled code: it uses a fixed generator stream so that the code is
    // identical across seeds — only the coefficient *values* are seeded.
    let mut pick = Xoshiro256StarStar::new(0x000b_10c4);
    for _ in 0..GROUPS {
        let c0 = pick.next_below(N_COEFF) as i32;
        let c1 = pick.next_below(N_COEFF) as i32;
        let c2 = pick.next_below(N_COEFF) as i32;
        let (f1, f2, f3, f4) = (FReg::new(1), FReg::new(2), FReg::new(3), FReg::new(4));
        b.ldt(f1, c0, r_base); // R
        b.ldt(f2, c1, r_base); // R
        b.ldt(f3, c2, r_base); // R
        b.mult(f4, f1, f2); // R (static × static)
        b.addt(f4, f4, f3); // R
        b.mult(f4, f4, f1); // R
                            // Fold into the evolving total: F, breaks the reusable run.
        b.addt(f_acc, f_acc, f4); // F
        b.addt(f_acc, f_acc, f_drift); // F
    }
    b.subq(r_iter, r_iter, 1); // F (outer counter)
    b.bnez(r_iter, top);
    // Publish the total so the block is observable.
    b.stt(f_acc, (COEFF + N_COEFF) as i32, Reg::ZERO);
    b.halt();
    b.build()
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "fpppp",
        suite: Suite::Fp,
        description: "giant generated straight-line FP block: static contractions reuse, \
                      the evolving accumulator chain defeats both reuse levels",
        paper: PaperRefs {
            reusability_pct: 84.0,
            ilr_speedup_inf: 1.05,
            ilr_speedup_w256: 1.05,
            tlr_speedup_inf: 1.6,
            tlr_speedup_w256: 2.2,
            trace_size: 4.2,
        },
        default_iters: 1500,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_fpppp_shape() {
        let prog = build(11, 150);
        let p = profile(&prog, 50_000);
        assert!(
            (70.0..92.0).contains(&p.pct()),
            "fpppp reusability {}",
            p.pct()
        );
        assert!(
            p.avg_trace() < 10.0,
            "fpppp traces too long: {}",
            p.avg_trace()
        );
    }

    #[test]
    fn block_is_straight_line_heavy() {
        // The generated block should dwarf its loop overhead: branch
        // density well under 2%.
        let prog = build(1, 1);
        let branches = prog.instrs.iter().filter(|i| i.is_control()).count();
        assert!(
            (branches as f64) < 0.02 * prog.len() as f64,
            "{branches} branches in {} instrs",
            prog.len()
        );
    }
}
