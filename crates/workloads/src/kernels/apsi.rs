//! `apsi` — mesoscale meteorology (SPECfp95 141.apsi).
//!
//! Mid-pack FP benchmark: moderate reusability (~75%), short traces
//! (~4), small speed-ups.
//!
//! Mechanism: temperature advection over a *static terrain field*. Per
//! grid point, the terrain lookups, slope interpolation and addressing
//! all repeat every sweep (R); the temperature value itself evolves
//! (pressure forcing added each step), so the load/update/store of `t[i]`
//! is fresh (F). The F burst is deliberately interleaved mid-body so
//! maximal reusable runs stay short even though overall reusability is
//! fair.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const N: u64 = 96;
const TERRAIN: u64 = 0x1000;
const TEMP: u64 = 0x2000;
const COEFF: u64 = 0x800;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    TERRAIN, {TERRAIN}
        .equ    TEMP, {TEMP}
        .equ    COEFF, {COEFF}
        .equ    N, {N}

        li      r9, {iters}
sweep:  li      r1, 0               ; index
        li      r2, N
        subq    r2, r2, 1
        li      r7, TERRAIN
        li      r6, TEMP
        li      r8, COEFF
inner:  addq    r4, r7, r1          ; R: &terrain[i]
        ldt     f1, 0(r4)           ; R: static terrain
        ldt     f2, 1(r4)           ; R
        subt    f3, f2, f1          ; R: slope
        ldt     f4, 0(r8)           ; R: gradient coefficient
        mult    f5, f3, f4          ; R: forcing term (static per i)
        addq    r5, r6, r1          ; R: &t[i]
        ldt     f6, 0(r5)           ; F: evolving temperature
        addt    f7, f6, f5          ; F
        ldt     f8, 1(r8)           ; R: drift constant
        addt    f7, f7, f8          ; F: strict drift keeps values fresh
        stt     f7, 0(r5)           ; F
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, inner           ; R
        subq    r9, r9, 1           ; F
        bnez    r9, sweep           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("apsi kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x0a_9651);
    prog.data.push((COEFF, 0.0625f64.to_bits()));
    prog.data.push((COEFF + 1, 0.03125f64.to_bits()));
    for i in 0..=N {
        prog.data
            .push((TERRAIN + i, rng.next_f64_in(0.0, 100.0).to_bits()));
    }
    for i in 0..N {
        prog.data
            .push((TEMP + i, rng.next_f64_in(260.0, 300.0).to_bits()));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "apsi",
        suite: Suite::Fp,
        description: "temperature advection over static terrain: static interpolation \
                      reuses, evolving temperature interleaves fresh bursts (short traces)",
        paper: PaperRefs {
            reusability_pct: 75.0,
            ilr_speedup_inf: 1.3,
            ilr_speedup_w256: 1.25,
            tlr_speedup_inf: 1.5,
            tlr_speedup_w256: 2.0,
            trace_size: 4.5,
        },
        default_iters: 300,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn reusability_is_moderate_traces_short() {
        let prog = build(11, 40);
        let p = profile(&prog, 60_000);
        assert!(
            (60.0..88.0).contains(&p.pct()),
            "apsi reusability {}",
            p.pct()
        );
        assert!(
            p.avg_trace() < 12.0,
            "apsi traces too long: {}",
            p.avg_trace()
        );
        // More reusable than applu's band.
        assert!(p.pct() > 55.0);
    }
}
