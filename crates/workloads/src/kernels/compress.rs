//! `compress` — LZW text compression (SPECint95 129.compress).
//!
//! In the paper: ~90% reusable, an instruction-level speed-up of ≈2.5
//! (second best) — because the hot dependence chain contains an integer
//! *multiply* whose operands repeat — and a solid trace-level win.
//!
//! Mechanism: a word-token LZW-style scanner. The FSM state advances by
//! a full-period multiply LCG (`state = 5·state + 1 mod 16`, guaranteed
//! periodic by Hull–Dobell, never reset), putting a *reusable 8-cycle
//! multiply* on the run-long serial critical path — that is what gives
//! instruction-level reuse its 2.5× here (reuse collapses each multiply
//! link from 8 cycles to 1). Per-token hashing and dictionary probes
//! repeat every pass. Every other token a small output checksum is
//! recomputed from the pass number (fresh but unchained), breaking traces
//! at the ≈25-instruction scale.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const PATTERN: u64 = 0x1000; // token pattern
const DICT: u64 = 0x2000; // static dictionary (mask+1 entries)
const OUT: u64 = 0x3000;
const NTOKENS: u64 = 128;
const VOCAB: u64 = 24;
const MASK: u64 = 1023;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    PATTERN, {PATTERN}
        .equ    DICT, {DICT}
        .equ    OUT, {OUT}
        .equ    NTOKENS, {NTOKENS}
        .equ    MASK, {MASK}

        li      r9, {iters}
        li      r10, 0              ; pass number
        li      r3, 9               ; FSM state: never reset. Advances by
                                    ; a full-period multiply LCG
                                    ; (5c+1 mod 16) every 4th token: an
                                    ; 8-cycle multiply on the reusable
                                    ; critical path — the source of the
                                    ; paper's 2.5x ILR win.
pass:   li      r1, PATTERN         ; token cursor (R: resets per pass)
        li      r2, NTOKENS
        li      r11, 0              ; token index
tok:    ldq     r4, 0(r1)           ; R: next token (pattern repeats)
        mulq    r5, r4, 31          ; R: token hash (off-spine multiply)
        addq    r6, r5, r3          ; R: mix with the FSM state
        and     r6, r6, MASK        ; R
        addq    r6, r6, DICT        ; R
        ldq     r7, 0(r6)           ; R: dictionary probe (static dict)
        and     r8, r11, 7          ; R: spine advances every 8th token
        bnez    r8, nosp            ; R
        mulq    r3, r3, 5           ; R: LCG spine link (8 cycles, reusable)
        addq    r3, r3, 1           ; R
        and     r3, r3, 15          ; R
nosp:   and     r8, r11, 1          ; R: every other token...
        bnez    r8, skip            ; R
        addq    r13, r11, OUT       ; R
        xor     r12, r10, r7        ; F: checksum from pass number (unchained)
        sll     r12, r12, 3         ; F
        stq     r12, 0(r13)         ; F
skip:   addq    r11, r11, 1         ; R
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, tok             ; R
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, pass            ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("compress kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0xc0_4b12);
    for i in 0..NTOKENS {
        prog.data.push((PATTERN + i, rng.next_below(VOCAB)));
    }
    for i in 0..=MASK {
        prog.data.push((DICT + i, rng.next_below(1 << 16)));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "compress",
        suite: Suite::Int,
        description: "LZW-style token FSM: a reusable multiply+load state chain is the \
                      critical path (the paper's 2.5x ILR standout)",
        paper: PaperRefs {
            reusability_pct: 92.0,
            ilr_speedup_inf: 2.5,
            ilr_speedup_w256: 1.8,
            tlr_speedup_inf: 3.5,
            tlr_speedup_w256: 4.2,
            trace_size: 25.0,
        },
        default_iters: 280,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_compress_shape() {
        let prog = build(11, 40);
        let p = profile(&prog, 60_000);
        assert!(
            (82.0..97.0).contains(&p.pct()),
            "compress reusability {}",
            p.pct()
        );
        assert!(
            (10.0..60.0).contains(&p.avg_trace()),
            "compress trace size {}",
            p.avg_trace()
        );
    }
}
