//! The 14 SPEC95-named kernels.
//!
//! ## The four dials every kernel is built around
//!
//! The limit studies respond to exactly four stream properties, so each
//! kernel is a deliberate mix of four ingredient classes:
//!
//! * **R — repeating work**: instructions whose (PC, input values) recur
//!   (loads of stable tables, inner-loop control that restarts every
//!   outer iteration, arithmetic over pooled values). Raises Figure 3
//!   reusability.
//! * **F — fresh work**: instructions that see new values every time
//!   (global accumulators, time-evolving fields, outermost counters).
//!   Caps reusability and *breaks traces*: the average maximal-run length
//!   (Figure 7) is roughly the R:F interleave period.
//! * **Critical-path composition**: if the longest dataflow chain is made
//!   of R-instructions, trace reuse collapses it and the infinite-window
//!   speed-up (Figure 6a) is large (`ijpeg`, `hydro2d`, `turb3d`); if it
//!   is F (a serial accumulator), infinite-window TLR gains ≈ nothing
//!   (`perl` at 1.01) and only the window-bypass effect (Figure 6b)
//!   remains.
//! * **Latency on the reusable path**: reusable multiplies (8 cycles) or
//!   sqrt (30) give instruction-level reuse something to shorten
//!   (`turb3d` at 4.0, `compress` at 2.5); reusable 1-cycle ALU chains
//!   give it nothing (`gcc`, `fpppp` ≈ 1.0).
//!
//! Every kernel documents its mix in these terms. Iteration counts are
//! parameterized; data images are seeded and generated in Rust.

pub mod applu;
pub mod apsi;
pub mod compress;
pub mod fpppp;
pub mod gcc;
pub mod go;
pub mod hydro2d;
pub mod ijpeg;
pub mod li;
pub mod perl;
pub mod su2cor;
pub mod tomcatv;
pub mod turb3d;
pub mod vortex;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared profile-measurement helpers for kernel unit tests (a local
    //! reusability counter so this crate does not dev-depend on
    //! `tlr-core`).

    use tlr_asm::Program;
    use tlr_isa::{DynInstr, StreamSink};
    use tlr_util::FxHashSet;
    use tlr_vm::Vm;

    #[derive(Default)]
    pub struct ReuseProfile {
        seen: FxHashSet<(u32, u128)>,
        pub total: u64,
        pub reusable: u64,
        /// Current run of reusable instructions.
        run: u64,
        /// Completed maximal runs (count, instr sum).
        pub runs: u64,
        pub run_instrs: u64,
    }

    impl ReuseProfile {
        pub fn pct(&self) -> f64 {
            100.0 * self.reusable as f64 / self.total as f64
        }

        pub fn avg_trace(&self) -> f64 {
            if self.runs == 0 {
                0.0
            } else {
                self.run_instrs as f64 / self.runs as f64
            }
        }

        fn close_run(&mut self) {
            if self.run > 0 {
                self.runs += 1;
                self.run_instrs += self.run;
                self.run = 0;
            }
        }
    }

    impl StreamSink for ReuseProfile {
        fn observe(&mut self, d: &DynInstr) {
            self.total += 1;
            if !self.seen.insert((d.pc, d.input_signature())) {
                self.reusable += 1;
                self.run += 1;
            } else {
                self.close_run();
            }
        }

        fn finish(&mut self) {
            self.close_run();
        }
    }

    /// Run `prog` for `budget` instructions and profile reusability.
    pub fn profile(prog: &Program, budget: u64) -> ReuseProfile {
        let mut vm = Vm::new(prog);
        let mut p = ReuseProfile::default();
        vm.run(budget, &mut p).expect("kernel must execute cleanly");
        p
    }
}
