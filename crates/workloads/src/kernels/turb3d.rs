//! `turb3d` — turbulence simulation / FFT (SPECfp95 125.turb3d).
//!
//! The paper's stand-out for *instruction-level* reuse: Figure 4a shows a
//! speed-up of ≈4.0 — the highest of the suite — because its critical
//! path is a chain of dependent floating-point multiplies (4 cycles
//! each) whose operand values repeat.
//!
//! Mechanism: butterfly-style passes. Each outer iteration reloads the
//! seed value `z0` and runs 64 blocks of 16 *dependent* multiplies by
//! per-block twiddle factors. Twiddles are exact powers of two arranged
//! to cancel over every 8 blocks, so all products are exact and repeat
//! bit-for-bit every outer iteration — the multiply chain is fully
//! reusable (ILR cuts each 4-cycle link to 1, TLR collapses whole blocks
//! to one reuse op). A per-block diagnostic recomputed from the
//! iteration number (fresh, unchained) keeps traces around block size
//! without adding a serial fresh chain.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const TWIDDLE: u64 = 0x1000; // 8 exact-power-of-two twiddles
const Z0: u64 = 0x1010;
const SCRATCH: u64 = 0x1100;
const CHECK: u64 = 0x1ff0;
const BLOCKS: u32 = 128;

fn source(iters: u32) -> String {
    // 16 multiplies, unrolled as in the real FFT inner loops: four
    // interleaved dependent chains of four (real FFTs carry several
    // butterflies in flight), so the finite-window base machine sees
    // 4-wide ILP rather than one fully serial chain.
    let round = "        mult    f1, f1, f2          ; R: chain 0 link\n\
                 \x20       mult    f11, f11, f2        ; R: chain 1 link\n\
                 \x20       mult    f12, f12, f2        ; R: chain 2 link\n\
                 \x20       mult    f13, f13, f2        ; R: chain 3 link\n";
    let muls = round.repeat(4);
    format!(
        r#"
        .equ    TWIDDLE, {TWIDDLE}
        .equ    Z0, {Z0}
        .equ    SCRATCH, {SCRATCH}
        .equ    CHECK, {CHECK}

        li      r9, {iters}
        li      r10, 0              ; iteration number
outer:  ldt     f1, Z0(zero)        ; R: reload seeds (restart the chains)
        ldt     f11, Z0(zero)       ; R
        ldt     f12, Z0(zero)       ; R
        ldt     f13, Z0(zero)       ; R
        li      r2, {BLOCKS}        ; R: block counter (resets per outer)
        li      r3, 0               ; R: block index
        fmov    f5, f31             ; R: zero the per-iter checksum
block:  and     r4, r3, 7           ; R
        addq    r4, r4, TWIDDLE     ; R
        ldt     f2, 0(r4)           ; R: twiddle (exact power of two)
{muls}        addq    r5, r3, SCRATCH     ; R
        itof    f3, r10             ; F: per-block diagnostic (unchained)
        mult    f4, f3, f2          ; F
        stt     f4, 0(r5)           ; F
        addt    f5, f5, f4          ; F: per-iteration checksum chain —
                                    ;    fresh, but it RESETS every outer
                                    ;    iteration, so it caps neither the
                                    ;    multiply chain (ILR's win) nor
                                    ;    the infinite-window overlap
        addq    r3, r3, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, block           ; R
        stt     f5, CHECK(zero)     ; F
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, outer           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("turb3d kernel must assemble");
    // Exact powers of two; each consecutive group of 8 multiplies to 1.0
    // overall (16 uses each per block), so |z| stays in a safe exponent
    // band forever and every product is exact.
    let twiddles: [f64; 8] = [0.5, 2.0, 0.25, 4.0, 2.0, 0.5, 4.0, 0.25];
    for (i, t) in twiddles.iter().enumerate() {
        prog.data.push((TWIDDLE + i as u64, t.to_bits()));
    }
    // The seed perturbs z0's mantissa (any dyadic value works; products
    // by powers of two only shift the exponent).
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x70b_3d1);
    let z0 = 1.0 + (rng.next_below(1 << 20) as f64) / (1u64 << 21) as f64;
    prog.data.push((Z0, z0.to_bits()));
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "turb3d",
        suite: Suite::Fp,
        description: "FFT-style dependent multiply chains over exact twiddles: the \
                      reusable 4-cycle-multiply critical path gives the suite's best ILR win",
        paper: PaperRefs {
            reusability_pct: 90.0,
            ilr_speedup_inf: 4.0,
            ilr_speedup_w256: 2.6,
            tlr_speedup_inf: 5.0,
            tlr_speedup_w256: 7.0,
            trace_size: 28.0,
        },
        default_iters: 300,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;
    use tlr_isa::NullSink;

    #[test]
    fn profile_matches_turb3d_shape() {
        let prog = build(11, 40);
        let p = profile(&prog, 60_000);
        assert!(
            (80.0..97.0).contains(&p.pct()),
            "turb3d reusability {}",
            p.pct()
        );
        assert!(
            (10.0..60.0).contains(&p.avg_trace()),
            "turb3d trace size {}",
            p.avg_trace()
        );
    }

    #[test]
    fn chain_values_stay_exact_and_bounded() {
        let prog = build(3, 4);
        let mut vm = tlr_vm::Vm::new(&prog);
        vm.run(10_000_000, &mut NullSink).unwrap();
        let check = vm.memory().read_f64(CHECK);
        assert!(check.is_finite());
        assert!(check != 0.0);
    }
}
