//! `hydro2d` — hydrodynamical Navier–Stokes solver (SPECfp95 104.hydro2d).
//!
//! The paper's most reusable benchmark: 99% instruction-level
//! reusability, by far the largest traces (Figure 7: ≈203 instructions)
//! and the largest limited-window trace-level speed-up.
//!
//! Mechanism: a Gauss–Seidel relaxation sweep over a field that sits on
//! an *exact fixed point* of its own update. The field is initialized to
//! a linear ramp of dyadic values (`u[i] = a + b·i` with `a`, `b` exact
//! binary fractions), and `u[i] = 0.5 × (u[i-1] + u[i+1])` reproduces the
//! ramp bit-for-bit — every sum and product is exact in IEEE double. From
//! the second sweep on, every load, FP op, store, and the whole inner
//! control restarts with identical values: one enormous reusable run per
//! anchor-delimited segment, serial along the in-place dependence chain
//! (which is exactly what trace reuse collapses).
//!
//! Every 16th cell is an *anchor*: it is not relaxed; instead a small
//! sweep-dependent diagnostic is computed into a scratch array (F burst),
//! which breaks the reusable run — calibrating the average trace length
//! to the ≈200 region — and keeps reusability just under 100%.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const N: u64 = 240;
const GRID: u64 = 0x1000;
const SCRATCH: u64 = 0x3000;
const COEFF: u64 = 0x800;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    GRID, {GRID}
        .equ    SCRATCH, {SCRATCH}
        .equ    COEFF, {COEFF}
        .equ    N, {N}

        li      r9, {iters}         ; sweeps (outer, fresh)
        li      r10, 0              ; sweep number s (fresh)
sweep:  li      r1, 1               ; cell index
        li      r2, N
        subq    r2, r2, 2
        li      r7, GRID
        li      r6, SCRATCH
        li      r8, COEFF
cell:   and     r4, r1, 15          ; R: anchor test (anchors every 16)
        beqz    r4, anchor          ; R
        addq    r3, r7, r1          ; R: &u[i]
        ldt     f1, -1(r3)          ; R: u[i-1] (exact fixed point)
        ldt     f2, 1(r3)           ; R: u[i+1]
        addt    f3, f1, f2          ; R: exact dyadic sum
        ldt     f4, 0(r8)           ; R: 0.5
        mult    f5, f3, f4          ; R: exact halving
        ; Two filter stages (v -> 2v -> v, both exact in IEEE double):
        ; they deepen the serial store->load chain per cell without
        ; disturbing the fixed point — the solver's smoothing passes.
        addt    f6, f5, f5          ; R: exact doubling
        mult    f5, f6, f4          ; R: exact halving back
        addt    f6, f5, f5          ; R
        mult    f5, f6, f4          ; R
        stt     f5, 0(r3)           ; R: stores the identical value
        br      next                ; R
anchor: itof    f6, r10             ; F: sweep-dependent diagnostic
        ldt     f7, 1(r8)           ; R: delta
        mult    f8, f6, f7          ; F
        addq    r5, r6, r1          ; R: &scratch[i]
        stt     f8, 0(r5)           ; F
next:   addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, cell            ; R
        addq    r10, r10, 1         ; F (sweep number)
        subq    r9, r9, 1           ; F
        bnez    r9, sweep           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("hydro2d kernel must assemble");
    prog.data.push((COEFF, 0.5f64.to_bits()));
    prog.data.push((COEFF + 1, 0.015625f64.to_bits()));
    // Exact-dyadic linear ramp: a + b·i with a=1.0, b=0.25. All the
    // relaxation arithmetic on these values is exact, so the field is a
    // bitwise fixed point. The seed perturbs only the (never-relaxed)
    // scratch initialization, keeping the ramp's exactness intact.
    for i in 0..N {
        let v = 1.0 + 0.25 * i as f64;
        prog.data.push((GRID + i, v.to_bits()));
    }
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x4d_d201);
    for i in 0..N {
        prog.data
            .push((SCRATCH + i, rng.next_f64_in(0.0, 1.0).to_bits()));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "hydro2d",
        suite: Suite::Fp,
        description: "Gauss-Seidel relaxation on an exact fixed point: bitwise-identical \
                      sweeps give ~99% reusability and ~200-instruction traces",
        paper: PaperRefs {
            reusability_pct: 99.0,
            ilr_speedup_inf: 1.7,
            ilr_speedup_w256: 1.6,
            tlr_speedup_inf: 8.0,
            tlr_speedup_w256: 19.4,
            trace_size: 203.0,
        },
        default_iters: 250,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;
    use tlr_isa::NullSink;

    #[test]
    fn fixed_point_is_bitwise_exact() {
        let prog = build(5, 3);
        let mut vm = tlr_vm::Vm::new(&prog);
        vm.run(10_000_000, &mut NullSink).unwrap();
        for i in 1..N - 1 {
            if i % 16 == 0 {
                continue;
            }
            let expect = 1.0 + 0.25 * i as f64;
            assert_eq!(
                vm.memory().read_f64(GRID + i),
                expect,
                "cell {i} drifted off the fixed point"
            );
        }
    }

    #[test]
    fn reusability_is_extreme_and_traces_huge() {
        let prog = build(5, 40);
        let p = profile(&prog, 100_000);
        assert!(p.pct() > 93.0, "hydro2d reusability {}", p.pct());
        assert!(
            p.avg_trace() > 60.0,
            "hydro2d traces too short: {}",
            p.avg_trace()
        );
    }
}
