//! `applu` — parabolic/elliptic PDE solver (SPECfp95 110.applu).
//!
//! The paper's least reusable benchmark (Figure 3: ≈53%) with the
//! shortest traces (Figure 7: ≈2–3) and near-zero trace-level speed-up.
//!
//! Mechanism: an SSOR-style time-stepping sweep over a 1-D field whose
//! values *never repeat* — a constant source term is added every step, so
//! the field grows monotonically and every load, FP operation and store
//! sees fresh values. Only addressing arithmetic, coefficient loads and
//! inner-loop control (which restart identically every sweep) are
//! reusable, giving the ≈50% R:F mix and 2–4-long reusable runs between
//! fresh FP bursts.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

/// Field size (words).
const N: u64 = 64;
/// Field base address.
const FIELD: u64 = 0x1000;
/// Coefficient block address.
const COEFF: u64 = 0x800;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    FIELD, {FIELD}
        .equ    COEFF, {COEFF}
        .equ    N, {N}

        li      r9, {iters}         ; time steps (outer, fresh counter)
sweep:  li      r1, FIELD
        addq    r1, r1, 1           ; start at element 1
        li      r2, N
        subq    r2, r2, 2           ; interior elements
        li      r8, COEFF
inner:  subq    r4, r1, 1           ; R: address of u[i-1]
        addq    r5, r1, 1           ; R: address of u[i+1]
        ldt     f1, 0(r4)           ; F: evolving field
        ldt     f2, 0(r1)           ; F
        ldt     f3, 0(r5)           ; F
        ldt     f4, 0(r8)           ; R: c1 (static coefficient)
        ldt     f5, 1(r8)           ; R: c2
        ldt     f10, 2(r8)          ; R: c3 (source term)
        addt    f6, f1, f3          ; F: neighbour sum
        mult    f7, f6, f5          ; F
        mult    f8, f2, f4          ; F
        addt    f9, f7, f8          ; F
        addt    f9, f9, f10         ; F: += source, keeps values fresh
        stt     f9, 0(r1)           ; F
        addq    r1, r1, 1           ; R
        subq    r2, r2, 1           ; R
        bnez    r2, inner           ; R
        subq    r9, r9, 1           ; F (outer counter)
        bnez    r9, sweep           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("applu kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x0a11_0701); // per-kernel stream tag
                                                               // c1 + 2*c2 < 1 keeps the field bounded per step; c3 > 0 guarantees
                                                               // strict growth (no accidental fixed point, hence no accidental reuse).
    prog.data.push((COEFF, 0.5f64.to_bits()));
    prog.data.push((COEFF + 1, 0.2f64.to_bits()));
    prog.data.push((COEFF + 2, 0.125f64.to_bits()));
    for i in 0..N {
        let v = rng.next_f64_in(0.0, 4.0);
        prog.data.push((FIELD + i, v.to_bits()));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "applu",
        suite: Suite::Fp,
        description: "SSOR time-stepper with a source term: field values never repeat; \
                      only addressing/control reuse (paper's least reusable program)",
        paper: PaperRefs {
            reusability_pct: 53.0,
            ilr_speedup_inf: 1.15,
            ilr_speedup_w256: 1.15,
            tlr_speedup_inf: 1.2,
            tlr_speedup_w256: 1.7,
            trace_size: 2.8,
        },
        default_iters: 500,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn reusability_is_low_and_traces_short() {
        let prog = build(11, 60);
        let p = profile(&prog, 60_000);
        assert!(
            (35.0..70.0).contains(&p.pct()),
            "applu reusability {} outside the low band",
            p.pct()
        );
        assert!(p.avg_trace() < 8.0, "traces too long: {}", p.avg_trace());
    }

    #[test]
    fn field_actually_evolves() {
        use tlr_isa::NullSink;
        let prog = build(3, 5);
        let mut vm = tlr_vm::Vm::new(&prog);
        let before = vm.memory().read_f64(FIELD + 10);
        vm.run(10_000_000, &mut NullSink).unwrap();
        let after = vm.memory().read_f64(FIELD + 10);
        assert_ne!(before, after);
        assert!(after.is_finite());
    }
}
