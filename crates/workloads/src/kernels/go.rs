//! `go` — game of Go, position evaluation (SPECint95 099.go).
//!
//! Mid-pack integer benchmark: high reusability, ≈20-instruction traces,
//! moderate speed-ups at both levels.
//!
//! Mechanism: repeated evaluation rounds over a board that changes only
//! slightly between rounds (a handful of stones placed/removed, as in
//! game-tree search re-evaluating siblings). The evaluator walks the
//! board through a serpentine chase (reusable serial chain), scores each
//! point from its stone and two neighbours (reusable except around the
//! mutated cells), and folds row sums into a per-round report indexed by
//! round (fresh but unchained). Mutation values derive from the round
//! number, so no long fresh chain forms.

use crate::{PaperRefs, Suite, Workload};
use tlr_asm::{assemble, Program};
use tlr_util::Xoshiro256StarStar;

const SIZE: u64 = 192; // board cells (serpentine order)
const BOARD: u64 = 0x1000;
const NEXT: u64 = 0x2000; // serpentine successor
const ROWSUM: u64 = 0x3000;
const REPORT: u64 = 0x3400;

fn source(iters: u32) -> String {
    format!(
        r#"
        .equ    BOARD, {BOARD}
        .equ    NEXT, {NEXT}
        .equ    ROWSUM, {ROWSUM}
        .equ    REPORT, {REPORT}
        .equ    SIZE, {SIZE}

        li      r9, {iters}
        li      r10, 0              ; round number
        li      r1, 0               ; board cursor: never reset — the
                                    ; serpentine closes after SIZE steps
round:  li      r2, SIZE
        li      r5, 0               ; row accumulator (resets per round)
cell:   addq    r3, r1, NEXT        ; R
        ldq     r1, 0(r3)           ; R: serpentine chase (serial chain)
        addq    r4, r1, BOARD       ; R
        ldq     r6, 0(r4)           ; R (F near mutated cells)
        ldq     r7, 1(r4)           ; R: neighbour
        sll     r8, r6, 2           ; R: pattern score
        xor     r8, r8, r7          ; R
        addq    r5, r5, r8          ; R: row accumulator (repeats per round
                                    ;    for rows without mutations)
        and     r11, r1, 1          ; R: row report every other cell
        bnez    r11, norow          ; R
        sra     r12, r1, 1          ; R: row index
        addq    r12, r12, ROWSUM    ; R
        xor     r13, r5, r10        ; F: fold the round number (unchained)
        stq     r13, 0(r12)         ; F: per-round row report
        li      r5, 0               ; R
norow:  subq    r2, r2, 1           ; R
        bnez    r2, cell            ; R
        ; Mutate one stone: position and value derived from the round
        ; number only (fresh burst, no chained accumulator).
        mulq    r13, r10, 1597334677 ; F: Weyl-style position hash
        and     r13, r13, 127       ; F
        addq    r13, r13, BOARD     ; F
        and     r14, r10, 3         ; F: stone colour/empty
        stq     r14, 0(r13)         ; F
        and     r15, r10, 255       ; F
        addq    r15, r15, REPORT    ; F
        stq     r5, 0(r15)          ; F: report slot indexed by round
        addq    r10, r10, 1         ; F
        subq    r9, r9, 1           ; F
        bnez    r9, round           ; F
        halt
"#
    )
}

fn build(seed: u64, iters: u32) -> Program {
    let mut prog = assemble(&source(iters)).expect("go kernel must assemble");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x60_0660);
    for i in 0..SIZE {
        prog.data.push((BOARD + i, rng.next_below(3)));
    }
    // Serpentine order: a fixed odd-stride walk (coprime with 192: odd
    // and not divisible by 3).
    let mut stride = 2 * rng.next_below(SIZE / 2) + 1;
    if stride.is_multiple_of(3) {
        stride += 2;
    }
    for i in 0..SIZE {
        prog.data.push((NEXT + i, (i + stride) % SIZE));
    }
    prog
}

/// Register the workload.
pub fn workload() -> Workload {
    Workload {
        name: "go",
        suite: Suite::Int,
        description: "board evaluation rounds with sparse mutations: serpentine scan \
                      chains reuse, mutated neighbourhoods inject fresh work",
        paper: PaperRefs {
            reusability_pct: 90.0,
            ilr_speedup_inf: 1.3,
            ilr_speedup_w256: 1.3,
            tlr_speedup_inf: 2.2,
            tlr_speedup_w256: 3.0,
            trace_size: 18.0,
        },
        default_iters: 280,
        build,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::profile;

    #[test]
    fn profile_matches_go_shape() {
        let prog = build(11, 30);
        let p = profile(&prog, 60_000);
        assert!(
            (78.0..97.0).contains(&p.pct()),
            "go reusability {}",
            p.pct()
        );
        assert!(
            (6.0..80.0).contains(&p.avg_trace()),
            "go trace size {}",
            p.avg_trace()
        );
    }
}
