//! Parameterized synthetic `DynInstr` streams.
//!
//! These bypass the VM: property tests and micro-benchmarks of the
//! analyzers need streams with a *dialled-in* redundancy level, generated
//! fast. Unlike arbitrary random records, the streams produced here are
//! **dataflow-consistent**: every read reports the value currently held
//! by the location (as established by earlier writes or the initial
//! image), and every instruction is deterministic (equal inputs imply
//! equal outputs). Those are the premises of the paper's Theorem 1, so
//! the theorem checkers can run over these streams as adversarial input.
//!
//! Fresh (never-repeating) values are not conjured out of thin air — that
//! would break determinism. They originate the way real programs make
//! them: a counter location is incremented (a deterministic instruction
//! whose *inputs* never repeat) and copied into the target location.

use tlr_isa::{DynInstr, Loc, OpClass};
use tlr_util::fxhash::fx_hash_u64;
use tlr_util::{FxHashMap, SplitMix64};

/// Configuration for the synthetic stream generator.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of distinct worker instructions (PCs).
    pub static_instrs: u32,
    /// Probability (0–1) that a worker executes with pooled (repeating)
    /// inputs rather than a freshly generated one.
    pub redundancy: f64,
    /// Number of pooled input tuples per worker PC.
    pub tuples_per_pc: u32,
    /// Fraction of worker PCs that are loads (read a memory word).
    pub mem_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            static_instrs: 256,
            redundancy: 0.8,
            tuples_per_pc: 8,
            mem_fraction: 0.3,
            seed: 1,
        }
    }
}

/// The counter location feeding fresh values.
const COUNTER: Loc = Loc::Mem(0xC0DE);

/// Simulated machine state: location → current value, with a
/// deterministic initial image.
struct MachineState {
    state: FxHashMap<Loc, u64>,
}

impl MachineState {
    fn new() -> Self {
        Self {
            state: FxHashMap::default(),
        }
    }

    fn read(&self, loc: Loc) -> u64 {
        self.state
            .get(&loc)
            .copied()
            .unwrap_or_else(|| fx_hash_u64(loc.encode()) & 0xffff)
    }

    fn write(&mut self, loc: Loc, value: u64) {
        self.state.insert(loc, value);
    }
}

/// Generate at least `n` dynamic instructions under `config` (the exact
/// count can exceed `n` by the trailing setup instructions of the last
/// logical step; the vector is truncated to `n`).
pub fn generate(config: &SyntheticConfig, n: usize) -> Vec<DynInstr> {
    let mut rng = SplitMix64::new(config.seed);
    let mut machine = MachineState::new();
    let mut out = Vec::with_capacity(n + 4);
    let s = config.static_instrs;

    // PC space layout: workers `0..s`, pooled pokes
    // `s .. s + s*tuples`, the counter increment at `inc_pc`, fresh
    // pokes `fresh_base .. fresh_base + s`.
    let poke_base = s;
    let inc_pc = s + s * config.tuples_per_pc;
    let fresh_base = inc_pc + 1;

    let emit = |out: &mut Vec<DynInstr>,
                pc: u32,
                class: OpClass,
                reads: &[(Loc, u64)],
                writes: &[(Loc, u64)]| {
        out.push(DynInstr {
            pc,
            next_pc: pc + 1,
            class,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        });
    };

    while out.len() < n {
        let pc = rng.next_below(s as u64) as u32;
        let pc_hash_unit = fx_hash_u64(pc as u64 ^ 0xfeed) as f64 / u64::MAX as f64;
        let is_mem = pc_hash_unit < config.mem_fraction;
        let loc_a = Loc::IntReg((pc % 24) as u8);
        let loc_b = if is_mem {
            Loc::Mem(0x100 + (pc % 32) as u64)
        } else {
            Loc::IntReg((pc % 23 + 1) as u8)
        };

        if rng.next_f64() < config.redundancy {
            // Pooled setup: a constant-generator instruction (its own PC
            // per (worker, tuple), like an `li`) establishes one of the
            // worker's recurring input values.
            let t = rng.next_below(config.tuples_per_pc as u64) as u32;
            let va = fx_hash_u64(((pc as u64) << 20) | t as u64) & 0xfffff;
            let vb = fx_hash_u64(((pc as u64) << 21) | t as u64) & 0xfffff;
            let poke_pc = poke_base + pc * config.tuples_per_pc + t;
            emit(
                &mut out,
                poke_pc,
                OpClass::IntAlu,
                &[],
                &[(loc_a, va), (loc_b, vb)],
            );
            machine.write(loc_a, va);
            machine.write(loc_b, vb);
        } else {
            // Fresh setup: bump the counter (inputs never repeat) and
            // copy it into the worker's input location.
            let c = machine.read(COUNTER);
            emit(
                &mut out,
                inc_pc,
                OpClass::IntAlu,
                &[(COUNTER, c)],
                &[(COUNTER, c.wrapping_add(1))],
            );
            machine.write(COUNTER, c.wrapping_add(1));
            let c = machine.read(COUNTER);
            let fresh = c.wrapping_mul(0x9e37_79b9) | (1 << 48);
            emit(
                &mut out,
                fresh_base + pc,
                OpClass::IntAlu,
                &[(COUNTER, c)],
                &[(loc_a, fresh), (loc_b, fresh ^ 0x5555)],
            );
            machine.write(loc_a, fresh);
            machine.write(loc_b, fresh ^ 0x5555);
        }

        // The worker: reads its two locations from the machine state and
        // writes a deterministic function of (pc, inputs).
        let va = machine.read(loc_a);
        let vb = machine.read(loc_b);
        let result = fx_hash_u64(((pc as u64) << 32) ^ va ^ vb.rotate_left(17));
        // Worker results land in registers no worker reads (r24..r29),
        // so one PC's output never churns another PC's input pool.
        let wloc = Loc::IntReg((pc % 6 + 24) as u8);
        emit(
            &mut out,
            pc,
            if is_mem {
                OpClass::Load
            } else {
                OpClass::IntAlu
            },
            &[(loc_a, va), (loc_b, vb)],
            &[(wloc, result)],
        );
        machine.write(wloc, result);
    }
    out.truncate(n);
    out
}

/// A stream that alternates runs of `run_len` redundant instructions
/// with one fresh instruction — a precise trace-shape generator for
/// testing the partitioner (average maximal run ≈ `run_len` in the
/// second half). Dataflow-consistent: the breaker draws its fresh value
/// from a counter chain.
pub fn run_shaped(seed: u64, run_len: usize, runs: usize) -> Vec<DynInstr> {
    let _ = seed; // shape is deterministic; kept for API stability
    let mut out = Vec::with_capacity(2 * runs * (run_len + 2));
    let mut counter = 0u64;
    for _round in 0..2 {
        for r in 0..runs {
            for k in 0..run_len {
                let pc = (r * (run_len + 2) + k) as u32;
                let mut d = DynInstr {
                    pc,
                    next_pc: pc + 1,
                    class: OpClass::IntAlu,
                    reads: Default::default(),
                    writes: Default::default(),
                };
                d.reads.push((Loc::IntReg(1), 42)); // constant input
                d.writes.push((Loc::IntReg(2), 43));
                out.push(d);
            }
            // The breaker: a counter bump whose inputs never repeat.
            let pc = (r * (run_len + 2) + run_len) as u32;
            let mut d = DynInstr {
                pc,
                next_pc: pc + 1,
                class: OpClass::IntAlu,
                reads: Default::default(),
                writes: Default::default(),
            };
            d.reads.push((COUNTER, counter));
            d.writes.push((COUNTER, counter + 1));
            counter += 1;
            out.push(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_util::FxHashSet;

    fn measured_redundancy(stream: &[DynInstr]) -> f64 {
        let mut seen: FxHashSet<(u32, u128)> = FxHashSet::default();
        let mut reusable = 0u64;
        for d in stream {
            if !seen.insert((d.pc, d.input_signature())) {
                reusable += 1;
            }
        }
        reusable as f64 / stream.len() as f64
    }

    #[test]
    fn redundancy_dial_works() {
        // With the setup instructions in the stream, the measured
        // redundancy is a damped version of the dial: pooled pokes are
        // reusable, counter bumps never are. It must still be monotone
        // and span a wide range.
        let measure = |target: f64| {
            let cfg = SyntheticConfig {
                redundancy: target,
                seed: 7,
                ..Default::default()
            };
            measured_redundancy(&generate(&cfg, 50_000))
        };
        let lo = measure(0.1);
        let mid = measure(0.5);
        let hi = measure(0.95);
        assert!(lo < mid && mid < hi, "not monotone: {lo} {mid} {hi}");
        assert!(lo < 0.25, "lo {lo}");
        assert!(hi > 0.75, "hi {hi}");
    }

    #[test]
    fn streams_are_dataflow_consistent() {
        // Replaying the stream against a location→value map must agree
        // with every recorded read.
        let cfg = SyntheticConfig {
            redundancy: 0.6,
            seed: 3,
            ..Default::default()
        };
        let stream = generate(&cfg, 30_000);
        let mut state: FxHashMap<Loc, u64> = FxHashMap::default();
        for (i, d) in stream.iter().enumerate() {
            for (loc, v) in d.reads.iter() {
                if let Some(cur) = state.get(loc) {
                    assert_eq!(cur, v, "instr {i} read stale value at {loc}");
                }
            }
            for (loc, v) in d.writes.iter() {
                state.insert(*loc, *v);
            }
        }
    }

    #[test]
    fn determinism_equal_inputs_equal_outputs() {
        let cfg = SyntheticConfig::default();
        let stream = generate(&cfg, 20_000);
        let mut by_input: std::collections::HashMap<u128, u128> = Default::default();
        for d in &stream {
            let inp = d.input_signature();
            let outp = d.output_signature();
            if let Some(prev) = by_input.insert(inp, outp) {
                assert_eq!(prev, outp, "same inputs produced different outputs");
            }
        }
    }

    #[test]
    fn run_shaped_has_requested_shape() {
        let stream = run_shaped(3, 10, 20);
        let mut seen: FxHashSet<(u32, u128)> = FxHashSet::default();
        let flags: Vec<bool> = stream
            .iter()
            .map(|d| !seen.insert((d.pc, d.input_signature())))
            .collect();
        let second_half = &flags[flags.len() / 2..];
        let mut runs = Vec::new();
        let mut cur = 0;
        for &f in second_half {
            if f {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        assert!(!runs.is_empty());
        assert!(runs.iter().all(|&r| r == 10), "runs: {runs:?}");
    }
}
