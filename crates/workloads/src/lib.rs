#![warn(missing_docs)]
//! # tlr-workloads
//!
//! The workload substrate: 14 kernels named after the paper's SPEC95
//! subset (7 integer + 7 floating-point), each hand-written in the
//! trace-reuse ISA to mimic the *value-redundancy profile* that drives
//! the corresponding benchmark's behaviour in the paper's figures.
//!
//! ## Why synthetic kernels are a faithful substitute
//!
//! The paper's analyses consume only the dynamic instruction stream with
//! operand values. What determines every reported number is:
//!
//! 1. the fraction of dynamic instructions whose (PC, input values)
//!    repeat — Figure 3;
//! 2. whether the *critical dataflow path* consists of repeating values
//!    (then trace reuse collapses it and beats the dataflow limit —
//!    Figure 6a) or of fresh values (then only the window-bypass effect
//!    helps — Figure 6b vs 6a);
//! 3. the lengths of maximal reusable runs — Figure 7;
//! 4. the latency mix on reusable critical paths — Figures 4/5/8.
//!
//! Each kernel documents which mechanism it exercises and which paper
//! benchmark it stands in for. The per-benchmark `paper` reference
//! numbers are digitized (approximately) from the figures and printed
//! next to measured values by the `reproduce` harness.
//!
//! ## Determinism
//!
//! A kernel is a pure function of `(seed, iterations)`. Input images are
//! generated with the workspace's own RNGs, so streams are bit-stable
//! across platforms and releases.

pub mod kernels;
pub mod synthetic;

use tlr_asm::Program;

/// Benchmark suite, as the paper splits averages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// SPECint95 subset.
    Int,
    /// SPECfp95 subset.
    Fp,
}

impl Suite {
    /// Label used in tables ("INT" / "FP").
    pub fn label(self) -> &'static str {
        match self {
            Suite::Int => "INT",
            Suite::Fp => "FP",
        }
    }
}

/// Paper-reported values for one benchmark, digitized from the figures
/// (the text gives exact values only for a few points; the rest are
/// approximate bar heights — see EXPERIMENTS.md).
#[derive(Clone, Copy, Debug)]
pub struct PaperRefs {
    /// Figure 3: instruction-level reusability (% of dynamic instrs).
    pub reusability_pct: f64,
    /// Figure 4a: ILR speed-up, infinite window, 1-cycle latency.
    pub ilr_speedup_inf: f64,
    /// Figure 5a: ILR speed-up, 256-entry window, 1-cycle latency.
    pub ilr_speedup_w256: f64,
    /// Figure 6a: TLR speed-up, infinite window, 1-cycle latency.
    pub tlr_speedup_inf: f64,
    /// Figure 6b: TLR speed-up, 256-entry window, 1-cycle latency.
    pub tlr_speedup_w256: f64,
    /// Figure 7: average (maximal reusable) trace size.
    pub trace_size: f64,
}

/// A registered workload.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Benchmark name (paper's SPEC95 subset).
    pub name: &'static str,
    /// Suite (integer / floating point).
    pub suite: Suite,
    /// One-line description of the kernel and the mechanism it models.
    pub description: &'static str,
    /// Paper-reported reference values.
    pub paper: PaperRefs,
    /// Default outer iteration count — sized so the default harness
    /// budget (≈400k dynamic instructions) is reached before `halt`.
    pub default_iters: u32,
    build: fn(seed: u64, iters: u32) -> Program,
}

impl Workload {
    /// Build the program for `seed` with the default iteration count.
    pub fn program(&self, seed: u64) -> Program {
        (self.build)(seed, self.default_iters)
    }

    /// Build with an explicit iteration count (tests use small counts to
    /// reach `halt` quickly).
    pub fn program_with(&self, seed: u64, iters: u32) -> Program {
        (self.build)(seed, iters)
    }
}

/// All 14 workloads in the paper's listing order (FP suite first in the
/// figures' x-axes: applu..turb3d, then compress..vortex).
pub fn all() -> Vec<Workload> {
    vec![
        kernels::applu::workload(),
        kernels::apsi::workload(),
        kernels::fpppp::workload(),
        kernels::hydro2d::workload(),
        kernels::su2cor::workload(),
        kernels::tomcatv::workload(),
        kernels::turb3d::workload(),
        kernels::compress::workload(),
        kernels::gcc::workload(),
        kernels::go::workload(),
        kernels::ijpeg::workload(),
        kernels::li::workload(),
        kernels::perl::workload(),
        kernels::vortex::workload(),
    ]
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The integer subset.
pub fn int_suite() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.suite == Suite::Int)
        .collect()
}

/// The FP subset.
pub fn fp_suite() -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == Suite::Fp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::NullSink;
    use tlr_vm::{RunOutcome, Vm};

    #[test]
    fn registry_is_complete() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "applu", "apsi", "fpppp", "hydro2d", "su2cor", "tomcatv", "turb3d", "compress",
                "gcc", "go", "ijpeg", "li", "perl", "vortex",
            ]
        );
        assert_eq!(int_suite().len(), 7);
        assert_eq!(fp_suite().len(), 7);
        assert!(by_name("hydro2d").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn every_workload_assembles_and_halts() {
        for w in all() {
            let prog = w.program_with(42, 2);
            assert!(!prog.is_empty(), "{}: empty program", w.name);
            let mut vm = Vm::new(&prog);
            let outcome = vm
                .run(5_000_000, &mut NullSink)
                .unwrap_or_else(|e| panic!("{}: vm error {e}", w.name));
            assert!(
                matches!(outcome, RunOutcome::Halted { .. }),
                "{}: did not halt in 5M instrs",
                w.name
            );
        }
    }

    #[test]
    fn default_iters_fill_the_default_budget() {
        // Each workload must sustain at least 400k dynamic instructions
        // at its default iteration count (the harness default).
        for w in all() {
            let prog = w.program(7);
            let mut vm = Vm::new(&prog);
            let outcome = vm.run(400_000, &mut NullSink).unwrap();
            assert!(
                matches!(outcome, RunOutcome::BudgetExhausted { .. }),
                "{}: halted after only {} instrs",
                w.name,
                outcome.executed()
            );
        }
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        for w in all() {
            let a = w.program_with(5, 2);
            let b = w.program_with(5, 2);
            assert_eq!(a.instrs, b.instrs, "{}", w.name);
            assert_eq!(a.data, b.data, "{}", w.name);
        }
    }

    #[test]
    fn seeds_change_data_not_code() {
        for w in all() {
            let a = w.program_with(1, 2);
            let b = w.program_with(2, 2);
            assert_eq!(
                a.instrs, b.instrs,
                "{}: code must not depend on seed",
                w.name
            );
        }
    }
}
