//! Fleet pooling: solo-warm vs merged-warm comparison (ours, enabled by
//! `tlr-serve`).
//!
//! A fleet serving many runs of one program accumulates *several* RTM
//! snapshots of it — different runs explore different traces (here:
//! different collection heuristics stand in for run-to-run diversity).
//! The snapshot registry pools them with [`RtmSnapshot::merge`] before
//! warm-starting. This experiment measures what the pooling buys: for
//! every workload, two cold runs under different heuristics each export
//! a snapshot; a third configuration then warm-starts from snapshot A
//! alone, from B alone, and from `merge(A, B)`.
//!
//! What pooling guarantees — and what it cannot: the merged warm start
//! is never worse than the *weaker* solo warm start on any workload,
//! and on average it beats the *better* one (both gated by
//! [`check_fleet`]). It is not always ≥ the better solo on *every*
//! workload: when the union of two runs' traces exceeds what the RTM
//! geometry can hold, something must be evicted, and the evicted half
//! can be the one the better solo run kept (workloads whose union fits,
//! e.g. `ijpeg`, do reuse strictly more from the merge — the
//! integration tests pin that).
//!
//! The merged snapshot round-trips through the `tlr-persist` binary
//! codec in memory, so the comparison also exercises snapshot
//! validation on real merged state.

use crate::harness::{pool_run, HarnessConfig};
use tlr_core::{EngineConfig, EngineStats, Heuristic, RtmConfig, RtmSnapshot, TraceReuseEngine};
use tlr_persist::program_fingerprint;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_stats::Table;

/// The two cold-run heuristics standing in for run-to-run diversity,
/// and the heuristic of the warm serving runs.
pub const FLEET_COLD_A: Heuristic = Heuristic::FixedExp(2);
/// Second cold producer (see [`FLEET_COLD_A`]).
pub const FLEET_COLD_B: Heuristic = Heuristic::FixedExp(6);
/// Heuristic the warm serving runs collect with.
pub const FLEET_WARM: Heuristic = Heuristic::FixedExp(4);

/// Solo-warm vs merged-warm outcome for one workload.
pub struct FleetCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Warm run seeded from cold run A's snapshot alone.
    pub warm_a: EngineStats,
    /// Warm run seeded from cold run B's snapshot alone.
    pub warm_b: EngineStats,
    /// Warm run seeded from `merge(A, B)`.
    pub warm_merged: EngineStats,
    /// Traces in the merged snapshot.
    pub merged_traces: usize,
    /// Input traces across both snapshots before deduplication.
    pub input_traces: usize,
    /// Conflicting records resolved during the merge (0 for snapshots
    /// of one deterministic program).
    pub conflicts: u64,
}

/// Run the fleet comparison over every workload, in parallel.
pub fn run_fleet(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<FleetCell> {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    pool_run(threads, workloads, |w| {
        let prog = w.program(cfg.seed);
        let snap_of = |heuristic: Heuristic| -> RtmSnapshot {
            let mut engine = TraceReuseEngine::new(&prog, EngineConfig::paper(rtm, heuristic));
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: cold engine error: {e}", w.name));
            engine
                .export_rtm()
                .expect("value-comparison backend snapshots")
        };
        let snap_a = snap_of(FLEET_COLD_A);
        let snap_b = snap_of(FLEET_COLD_B);

        let outcome = RtmSnapshot::merge_detailed(&[snap_a.clone(), snap_b.clone()])
            .unwrap_or_else(|e| panic!("{}: merge error: {e}", w.name));

        // Through the binary codec, as the registry's disk path would go.
        let fingerprint = program_fingerprint(&prog);
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, fingerprint, &outcome.snapshot)
            .unwrap_or_else(|e| panic!("{}: snapshot write error: {e}", w.name));
        let (_, merged) = read_snapshot(&mut bytes.as_slice(), Some(fingerprint))
            .unwrap_or_else(|e| panic!("{}: snapshot read error: {e}", w.name));

        let warm_config = EngineConfig::paper(rtm, FLEET_WARM);
        let warm_run = |snapshot: &RtmSnapshot| -> EngineStats {
            TraceReuseEngine::new_warm(&prog, warm_config, snapshot)
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name))
        };
        FleetCell {
            name: w.name,
            warm_a: warm_run(&snap_a),
            warm_b: warm_run(&snap_b),
            warm_merged: warm_run(&merged),
            merged_traces: merged.traces.len(),
            input_traces: outcome.input_traces,
            conflicts: outcome.conflicts,
        }
    })
}

/// Table: per benchmark, solo-warm A/B vs merged-warm `pct_reused()`
/// and the merge's dedup ratio, with means on the last row.
pub fn fleet_table(cells: &[FleetCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "warm A %",
        "warm B %",
        "merged %",
        "delta vs best solo",
        "merged traces",
        "input traces",
    ]);
    let (mut a_sum, mut b_sum, mut m_sum) = (0.0, 0.0, 0.0);
    for cell in cells {
        let a = cell.warm_a.pct_reused();
        let b = cell.warm_b.pct_reused();
        let m = cell.warm_merged.pct_reused();
        a_sum += a;
        b_sum += b;
        m_sum += m;
        table.row(vec![
            cell.name.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{m:.1}"),
            format!("{:+.1}", m - a.max(b)),
            cell.merged_traces.to_string(),
            cell.input_traces.to_string(),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(vec![
            "mean".to_string(),
            format!("{:.1}", a_sum / n),
            format!("{:.1}", b_sum / n),
            format!("{:.1}", m_sum / n),
            format!("{:+.1}", (m_sum - a_sum.max(b_sum)) / n),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// Regression gate for CI, checking what pooling soundly guarantees:
/// per workload, merged-warm reuse is at least the *weaker* solo-warm
/// reuse (a merge never costs more than its least useful contributor);
/// averaged over the suite, merged-warm beats the better solo mean; and
/// merging snapshots of one deterministic program reports no conflicts.
pub fn check_fleet(cells: &[FleetCell]) -> Result<(), String> {
    let (mut a_sum, mut b_sum, mut m_sum) = (0.0f64, 0.0f64, 0.0f64);
    for cell in cells {
        let (a, b) = (cell.warm_a.pct_reused(), cell.warm_b.pct_reused());
        let merged = cell.warm_merged.pct_reused();
        a_sum += a;
        b_sum += b;
        m_sum += merged;
        if merged < a.min(b) - 1e-9 {
            return Err(format!(
                "{}: merged-warm reuse {merged:.3}% below the weaker solo-warm {:.3}%",
                cell.name,
                a.min(b)
            ));
        }
        if cell.conflicts != 0 {
            return Err(format!(
                "{}: {} conflicting records while merging snapshots of one program",
                cell.name, cell.conflicts
            ));
        }
    }
    if !cells.is_empty() && m_sum < a_sum.max(b_sum) - 1e-9 {
        return Err(format!(
            "suite mean: merged-warm {:.3}% below best solo-warm mean {:.3}%",
            m_sum / cells.len() as f64,
            a_sum.max(b_sum) / cells.len() as f64
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_pooling_invariants_hold() {
        let cfg = HarnessConfig {
            budget: 30_000,
            ..HarnessConfig::quick()
        };
        let cells = run_fleet(&cfg, RtmConfig::RTM_32K);
        assert_eq!(cells.len(), tlr_workloads::all().len());
        check_fleet(&cells).unwrap();
        for cell in &cells {
            assert!(cell.merged_traces > 0, "{}: empty merge", cell.name);
            assert!(
                cell.merged_traces <= cell.input_traces,
                "{}: merge grew the trace set",
                cell.name
            );
        }
        let table = fleet_table(&cells);
        assert_eq!(table.len(), cells.len() + 1);
    }
}
