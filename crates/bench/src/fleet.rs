//! Fleet pooling: solo-warm vs merged-warm comparison (ours, enabled by
//! `tlr-serve`).
//!
//! A fleet serving many runs of one program accumulates *several* RTM
//! snapshots of it — different runs explore different traces (here:
//! different collection heuristics stand in for run-to-run diversity).
//! The snapshot registry pools them with [`RtmSnapshot::merge`] before
//! warm-starting. This experiment measures what the pooling buys: for
//! every workload, two cold runs under different heuristics each export
//! a snapshot; a third configuration then warm-starts from snapshot A
//! alone, from B alone, and from `merge(A, B)`.
//!
//! What pooling guarantees — and what it cannot: the merged warm start
//! is never worse than the *weaker* solo warm start on any workload,
//! and on average it beats the *better* one (both gated by
//! [`check_fleet`]). It is not always ≥ the better solo on *every*
//! workload: when the union of two runs' traces exceeds what the RTM
//! geometry can hold, something must be evicted, and the evicted half
//! can be the one the better solo run kept (workloads whose union fits,
//! e.g. `ijpeg`, do reuse strictly more from the merge — the
//! integration tests pin that).
//!
//! The merged snapshot round-trips through the `tlr-persist` binary
//! codec in memory, so the comparison also exercises snapshot
//! validation on real merged state.
//!
//! Two execution shapes produce the same cells: the default
//! [`FleetExecution::Batched`] drives every fleet member as a
//! [`BatchRunner`] instance in this process (two batch phases: all cold
//! producers, then — after merging — all warm consumers), while
//! [`FleetExecution::Pooled`] keeps the legacy shape of one reference
//! engine per worker-pool task. Reuse decisions are substrate-
//! independent, so both shapes must report identical statistics.

use crate::batch::{BatchRunner, BatchSpec, Schedule};
use crate::harness::{pool_run, HarnessConfig};
use tlr_core::{EngineConfig, EngineStats, Heuristic, RtmConfig, RtmSnapshot, TraceReuseEngine};
use tlr_persist::program_fingerprint;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_stats::Table;

/// The two cold-run heuristics standing in for run-to-run diversity,
/// and the heuristic of the warm serving runs.
pub const FLEET_COLD_A: Heuristic = Heuristic::FixedExp(2);
/// Second cold producer (see [`FLEET_COLD_A`]).
pub const FLEET_COLD_B: Heuristic = Heuristic::FixedExp(6);
/// Heuristic the warm serving runs collect with.
pub const FLEET_WARM: Heuristic = Heuristic::FixedExp(4);

/// Solo-warm vs merged-warm outcome for one workload.
pub struct FleetCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Warm run seeded from cold run A's snapshot alone.
    pub warm_a: EngineStats,
    /// Warm run seeded from cold run B's snapshot alone.
    pub warm_b: EngineStats,
    /// Warm run seeded from `merge(A, B)`.
    pub warm_merged: EngineStats,
    /// Traces in the merged snapshot.
    pub merged_traces: usize,
    /// Input traces across both snapshots before deduplication.
    pub input_traces: usize,
    /// Conflicting records resolved during the merge (0 for snapshots
    /// of one deterministic program).
    pub conflicts: u64,
}

/// How the fleet's member runs are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetExecution {
    /// All member runs batched in this process on the fast substrate
    /// (the default): one [`BatchRunner`] for every cold producer, a
    /// second for every warm consumer.
    Batched(Schedule),
    /// Legacy shape: one reference engine per worker-pool task, as the
    /// per-process drivers did.
    Pooled,
}

impl Default for FleetExecution {
    fn default() -> Self {
        FleetExecution::Batched(Schedule::RunToCompletion)
    }
}

impl FleetExecution {
    /// Stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FleetExecution::Batched(Schedule::RunToCompletion) => "batched",
            FleetExecution::Batched(Schedule::RoundRobin { .. }) => "batched/rr",
            FleetExecution::Pooled => "pooled",
        }
    }
}

/// Merge two cold snapshots and round-trip the result through the
/// `tlr-persist` binary codec, as the registry's disk path would.
fn merge_and_roundtrip(
    name: &str,
    prog: &tlr_asm::Program,
    snap_a: RtmSnapshot,
    snap_b: RtmSnapshot,
) -> (RtmSnapshot, usize, u64) {
    let outcome = RtmSnapshot::merge_detailed(&[snap_a, snap_b])
        .unwrap_or_else(|e| panic!("{name}: merge error: {e}"));
    let fingerprint = program_fingerprint(prog);
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, fingerprint, &outcome.snapshot)
        .unwrap_or_else(|e| panic!("{name}: snapshot write error: {e}"));
    let (_, merged) = read_snapshot(&mut bytes.as_slice(), Some(fingerprint))
        .unwrap_or_else(|e| panic!("{name}: snapshot read error: {e}"));
    (merged, outcome.input_traces, outcome.conflicts)
}

/// Run the fleet comparison over every workload with the default
/// in-process batched execution.
pub fn run_fleet(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<FleetCell> {
    run_fleet_with(cfg, rtm, FleetExecution::default())
}

/// Run the fleet comparison under an explicit execution shape.
pub fn run_fleet_with(
    cfg: &HarnessConfig,
    rtm: RtmConfig,
    execution: FleetExecution,
) -> Vec<FleetCell> {
    match execution {
        FleetExecution::Batched(schedule) => run_fleet_batched(cfg, rtm, schedule),
        FleetExecution::Pooled => run_fleet_pooled(cfg, rtm),
    }
}

/// The batched shape: every cold producer in one [`BatchRunner`], every
/// warm consumer in a second, with the merges in between.
fn run_fleet_batched(cfg: &HarnessConfig, rtm: RtmConfig, schedule: Schedule) -> Vec<FleetCell> {
    let workloads = tlr_workloads::all();

    let mut cold = BatchRunner::new(schedule);
    for w in &workloads {
        for (tag, heuristic) in [("A", FLEET_COLD_A), ("B", FLEET_COLD_B)] {
            cold.push(BatchSpec::new(
                format!("{}/{tag}", w.name),
                w.program(cfg.seed),
                EngineConfig::paper(rtm, heuristic),
                cfg.budget,
            ));
        }
    }
    let mut cold_out = cold
        .run()
        .unwrap_or_else(|e| panic!("fleet cold batch: {e}"))
        .into_iter();

    let warm_config = EngineConfig::paper(rtm, FLEET_WARM);
    let mut warm = BatchRunner::new(schedule);
    let mut merges = Vec::with_capacity(workloads.len());
    for w in &workloads {
        let snap_a = cold_out.next().expect("cold outcome A").snapshot;
        let snap_b = cold_out.next().expect("cold outcome B").snapshot;
        let prog = w.program(cfg.seed);
        let (merged, input_traces, conflicts) =
            merge_and_roundtrip(w.name, &prog, snap_a.clone(), snap_b.clone());
        merges.push((w.name, merged.traces.len(), input_traces, conflicts));
        for (tag, snapshot) in [("a", snap_a), ("b", snap_b), ("merged", merged)] {
            warm.push(
                BatchSpec::new(
                    format!("{}/warm-{tag}", w.name),
                    w.program(cfg.seed),
                    warm_config,
                    cfg.budget,
                )
                .with_warm(snapshot),
            );
        }
    }
    let mut warm_out = warm
        .run()
        .unwrap_or_else(|e| panic!("fleet warm batch: {e}"))
        .into_iter();

    let mut next_stats = || -> EngineStats { warm_out.next().expect("warm outcome").stats };
    merges
        .into_iter()
        .map(|(name, merged_traces, input_traces, conflicts)| FleetCell {
            name,
            warm_a: next_stats(),
            warm_b: next_stats(),
            warm_merged: next_stats(),
            merged_traces,
            input_traces,
            conflicts,
        })
        .collect()
}

/// The legacy shape: one reference engine per worker-pool task.
fn run_fleet_pooled(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<FleetCell> {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    pool_run(threads, workloads, |w| {
        let prog = w.program(cfg.seed);
        let snap_of = |heuristic: Heuristic| -> RtmSnapshot {
            let mut engine = TraceReuseEngine::new(&prog, EngineConfig::paper(rtm, heuristic));
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: cold engine error: {e}", w.name));
            engine
                .export_rtm()
                .expect("value-comparison backend snapshots")
        };
        let snap_a = snap_of(FLEET_COLD_A);
        let snap_b = snap_of(FLEET_COLD_B);

        let (merged, input_traces, conflicts) =
            merge_and_roundtrip(w.name, &prog, snap_a.clone(), snap_b.clone());

        let warm_config = EngineConfig::paper(rtm, FLEET_WARM);
        let warm_run = |snapshot: &RtmSnapshot| -> EngineStats {
            TraceReuseEngine::new_warm(&prog, warm_config, snapshot)
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name))
        };
        FleetCell {
            name: w.name,
            warm_a: warm_run(&snap_a),
            warm_b: warm_run(&snap_b),
            warm_merged: warm_run(&merged),
            merged_traces: merged.traces.len(),
            input_traces,
            conflicts,
        }
    })
}

/// Table: per benchmark, solo-warm A/B vs merged-warm `pct_reused()`
/// and the merge's dedup ratio, with means on the last row.
pub fn fleet_table(cells: &[FleetCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "warm A %",
        "warm B %",
        "merged %",
        "delta vs best solo",
        "merged traces",
        "input traces",
    ]);
    let (mut a_sum, mut b_sum, mut m_sum) = (0.0, 0.0, 0.0);
    for cell in cells {
        let a = cell.warm_a.pct_reused();
        let b = cell.warm_b.pct_reused();
        let m = cell.warm_merged.pct_reused();
        a_sum += a;
        b_sum += b;
        m_sum += m;
        table.row(vec![
            cell.name.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{m:.1}"),
            format!("{:+.1}", m - a.max(b)),
            cell.merged_traces.to_string(),
            cell.input_traces.to_string(),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(vec![
            "mean".to_string(),
            format!("{:.1}", a_sum / n),
            format!("{:.1}", b_sum / n),
            format!("{:.1}", m_sum / n),
            format!("{:+.1}", (m_sum - a_sum.max(b_sum)) / n),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// Regression gate for CI, checking what pooling soundly guarantees:
/// per workload, merged-warm reuse is at least the *weaker* solo-warm
/// reuse (a merge never costs more than its least useful contributor);
/// averaged over the suite, merged-warm beats the better solo mean; and
/// merging snapshots of one deterministic program reports no conflicts.
pub fn check_fleet(cells: &[FleetCell]) -> Result<(), String> {
    let (mut a_sum, mut b_sum, mut m_sum) = (0.0f64, 0.0f64, 0.0f64);
    for cell in cells {
        let (a, b) = (cell.warm_a.pct_reused(), cell.warm_b.pct_reused());
        let merged = cell.warm_merged.pct_reused();
        a_sum += a;
        b_sum += b;
        m_sum += merged;
        if merged < a.min(b) - 1e-9 {
            return Err(format!(
                "{}: merged-warm reuse {merged:.3}% below the weaker solo-warm {:.3}%",
                cell.name,
                a.min(b)
            ));
        }
        if cell.conflicts != 0 {
            return Err(format!(
                "{}: {} conflicting records while merging snapshots of one program",
                cell.name, cell.conflicts
            ));
        }
    }
    if !cells.is_empty() && m_sum < a_sum.max(b_sum) - 1e-9 {
        return Err(format!(
            "suite mean: merged-warm {:.3}% below best solo-warm mean {:.3}%",
            m_sum / cells.len() as f64,
            a_sum.max(b_sum) / cells.len() as f64
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_pooling_invariants_hold() {
        let cfg = HarnessConfig {
            budget: 30_000,
            ..HarnessConfig::quick()
        };
        let cells = run_fleet(&cfg, RtmConfig::RTM_32K);
        assert_eq!(cells.len(), tlr_workloads::all().len());
        check_fleet(&cells).unwrap();
        for cell in &cells {
            assert!(cell.merged_traces > 0, "{}: empty merge", cell.name);
            assert!(
                cell.merged_traces <= cell.input_traces,
                "{}: merge grew the trace set",
                cell.name
            );
        }
        let table = fleet_table(&cells);
        assert_eq!(table.len(), cells.len() + 1);
    }

    #[test]
    fn batched_and_pooled_fleets_report_identical_statistics() {
        let cfg = HarnessConfig {
            budget: 15_000,
            ..HarnessConfig::quick()
        };
        let batched = run_fleet_with(&cfg, RtmConfig::RTM_32K, FleetExecution::default());
        let pooled = run_fleet_with(&cfg, RtmConfig::RTM_32K, FleetExecution::Pooled);
        assert_eq!(batched.len(), pooled.len());
        for (b, p) in batched.iter().zip(&pooled) {
            assert_eq!(b.name, p.name);
            // Reuse decisions are substrate-independent: the fast
            // batched members must mirror the reference engines exactly.
            assert_eq!(b.warm_a, p.warm_a, "{}", b.name);
            assert_eq!(b.warm_b, p.warm_b, "{}", b.name);
            assert_eq!(b.warm_merged, p.warm_merged, "{}", b.name);
            assert_eq!(b.merged_traces, p.merged_traces, "{}", b.name);
            assert_eq!(b.conflicts, p.conflicts, "{}", b.name);
        }
    }
}
