//! The reuse-attribution study (ours, enabled by `tlr-decant`).
//!
//! The paper reports *how much* is reused (§4); this experiment reports
//! *who benefits*: every paper workload runs cold under every
//! replacement policy with the engine's decision tap enabled, and the
//! log is decanted by opcode class and by loop structure
//! ([`tlr_decant::decant`]). The headline table shows, per
//! workload × policy, the reuse rate, the attributed saved cycles
//! (Alpha 21164 latencies), and where the reuse lives in the loop
//! structure; companion tables aggregate the per-class and
//! per-loop-shape split across the suite.
//!
//! The `--check` gate enforces the subsystem's contract rather than a
//! performance ranking: attribution must **conserve the log's totals
//! exactly** on every cell ([`Attribution::verify`]), must agree with
//! the engine's own counters, and — because cold runs collect every
//! trace live, with its mix — must leave *nothing* unattributed.

use crate::harness::{pool_run, HarnessConfig};
use tlr_core::{EngineConfig, ReplacementPolicy, RtmConfig, TraceReuseEngine};
use tlr_decant::{decant, Attribution, LoopShape};
use tlr_isa::{Alpha21164, LatencyModel, OpClass};
use tlr_stats::{fnum, Table};

// Collection heuristic for the tapped runs (the fleet/policy default).
use crate::fleet::FLEET_WARM;

/// One workload × policy attribution outcome.
pub struct DecantCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Replacement policy the tapped cold run used.
    pub policy: ReplacementPolicy,
    /// Decanted attribution of the run's decision log.
    pub attribution: Attribution,
    /// Attribution sums match the log's totals exactly
    /// ([`Attribution::verify`]) *and* the engine's own counters.
    pub totals_exact: bool,
}

/// Run the attribution study: every paper workload × every policy, one
/// tapped cold run each, decanted.
pub fn run_decant(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<DecantCell> {
    let mut tasks = Vec::new();
    for w in tlr_workloads::all() {
        for policy in ReplacementPolicy::ALL {
            tasks.push((w, policy));
        }
    }
    let threads = cfg.effective_threads(tasks.len());
    pool_run(threads, tasks, |(w, policy)| {
        let prog = w.program(cfg.seed);
        let config = EngineConfig::paper(rtm, FLEET_WARM).with_policy(policy);
        let mut engine = TraceReuseEngine::new(&prog, config);
        // One decision covers at least one instruction, so a cap of
        // `budget` never truncates and still bounds the tap's memory.
        engine.enable_tap_with_cap(usize::try_from(cfg.budget).unwrap_or(usize::MAX));
        let stats = engine
            .run(cfg.budget)
            .unwrap_or_else(|e| panic!("{} [{policy}]: engine error: {e}", w.name));
        let log = engine.tap().expect("tap was enabled");
        let attribution = decant(log);
        let totals_exact = attribution.verify(log).is_ok()
            && attribution.executed == stats.executed
            && attribution.skipped == stats.skipped
            && attribution.reuse_ops == stats.reuse_ops;
        DecantCell {
            name: w.name,
            policy,
            attribution,
            totals_exact,
        }
    })
}

/// Headline table: per workload × policy, reuse rate, attributed saved
/// cycles, and the loop-structure split of the skipped instructions.
pub fn decant_table(cells: &[DecantCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "policy",
        "reuse %",
        "decisions",
        "skipped",
        "saved cycles",
        "loop %",
        "unattrib",
        "totals",
    ]);
    for cell in cells {
        let a = &cell.attribution;
        let in_loops =
            a.shape(LoopShape::LoopHeader).skipped + a.shape(LoopShape::LoopBody).skipped;
        let loop_pct = if a.skipped == 0 {
            0.0
        } else {
            in_loops as f64 / a.skipped as f64 * 100.0
        };
        table.row(vec![
            cell.name.to_string(),
            cell.policy.label().to_string(),
            fnum(a.pct_reused(), 1),
            (a.executed + a.reuse_ops).to_string(),
            a.skipped.to_string(),
            a.saved_cycles(&Alpha21164).to_string(),
            fnum(loop_pct, 1),
            a.unattributed.to_string(),
            if cell.totals_exact {
                "exact"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    table
}

/// Per-opcode-class attribution aggregated across the whole suite, one
/// block of rows per policy.
pub fn decant_class_table(cells: &[DecantCell]) -> Table {
    let mut table = Table::new(vec![
        "policy",
        "class",
        "executed",
        "skipped",
        "reuse %",
        "saved cycles",
    ]);
    for policy in ReplacementPolicy::ALL {
        let mut exec = [0u64; OpClass::COUNT];
        let mut skip = [0u64; OpClass::COUNT];
        for cell in cells.iter().filter(|c| c.policy == policy) {
            for i in 0..OpClass::COUNT {
                exec[i] += cell.attribution.exec_by_class[i];
                skip[i] += cell.attribution.skip_by_class[i];
            }
        }
        for &class in &OpClass::ALL {
            let (e, s) = (exec[class.index()], skip[class.index()]);
            if e == 0 && s == 0 {
                continue;
            }
            table.row(vec![
                policy.label().to_string(),
                class.label().to_string(),
                e.to_string(),
                s.to_string(),
                fnum(s as f64 / (e + s) as f64 * 100.0, 1),
                s.saturating_mul(Alpha21164.latency(class)).to_string(),
            ]);
        }
    }
    table
}

/// Per-loop-structure attribution aggregated across the whole suite,
/// one block of rows per policy.
pub fn decant_loop_table(cells: &[DecantCell]) -> Table {
    let mut table = Table::new(vec![
        "policy",
        "context",
        "executed",
        "skipped",
        "reuse ops",
        "reuse %",
    ]);
    for policy in ReplacementPolicy::ALL {
        for shape in LoopShape::ALL {
            let mut bucket = tlr_decant::ShapeBucket::default();
            for cell in cells.iter().filter(|c| c.policy == policy) {
                let b = cell.attribution.shape(shape);
                bucket.executed += b.executed;
                bucket.skipped += b.skipped;
                bucket.reuse_ops += b.reuse_ops;
            }
            table.row(vec![
                policy.label().to_string(),
                shape.label().to_string(),
                bucket.executed.to_string(),
                bucket.skipped.to_string(),
                bucket.reuse_ops.to_string(),
                fnum(bucket.pct_reused(), 1),
            ]);
        }
    }
    table
}

/// Regression gate for CI: exact conservation on every cell, a
/// non-empty log for every cell, no truncation, and — cold runs
/// collect every trace live — nothing unattributed.
pub fn check_decant(cells: &[DecantCell]) -> Result<(), String> {
    for cell in cells {
        let a = &cell.attribution;
        let tag = format!("{} [{}]", cell.name, cell.policy);
        if !cell.totals_exact {
            return Err(format!(
                "{tag}: attribution does not sum to the decision log's totals"
            ));
        }
        if a.total() == 0 {
            return Err(format!("{tag}: empty attribution (tap recorded nothing)"));
        }
        if a.dropped != 0 {
            return Err(format!(
                "{tag}: decision log dropped {} events despite a budget-sized cap",
                a.dropped
            ));
        }
        if a.unattributed != 0 {
            return Err(format!(
                "{tag}: {} skipped instructions lost their class on a cold run",
                a.unattributed
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decant_study_conserves_totals_on_every_cell() {
        let cfg = HarnessConfig {
            budget: 20_000,
            ..HarnessConfig::quick()
        };
        let cells = run_decant(&cfg, RtmConfig::RTM_32K);
        assert_eq!(
            cells.len(),
            tlr_workloads::all().len() * ReplacementPolicy::ALL.len()
        );
        check_decant(&cells).unwrap();
        // At least one workload must show real reuse for the tables to
        // say anything.
        assert!(cells.iter().any(|c| c.attribution.reuse_ops > 0));
        assert_eq!(decant_table(&cells).len(), cells.len());
        assert!(!decant_class_table(&cells).is_empty());
        assert_eq!(
            decant_loop_table(&cells).len(),
            ReplacementPolicy::ALL.len() * LoopShape::ALL.len()
        );
    }
}
