//! Parallel experiment execution.
//!
//! Per the hpc-parallel guides, the fan-out is embarrassingly parallel
//! and data-race free by construction: each worker owns its VM and sinks
//! and writes into its own disjoint result slot; `std::thread::scope`
//! joins everything before results are read.

use std::sync::Mutex;
use tlr_core::{
    EngineConfig, EngineStats, Heuristic, LimitConfig, LimitResult, LimitStudySink, RtmConfig,
};
use tlr_isa::Alpha21164;
use tlr_vm::Vm;
use tlr_workloads::{PaperRefs, Suite, Workload};

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Dynamic instruction budget per benchmark.
    pub budget: u64,
    /// Workload seed.
    pub seed: u64,
    /// Finite window size (paper: 256).
    pub window: usize,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            budget: 400_000,
            seed: 20260611,
            window: 256,
            threads: 0,
        }
    }
}

impl HarnessConfig {
    /// Quick configuration for integration tests.
    pub fn quick() -> Self {
        Self {
            budget: 60_000,
            ..Self::default()
        }
    }

    pub(crate) fn effective_threads(&self, tasks: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let cap = if self.threads == 0 { hw } else { self.threads };
        cap.min(tasks).max(1)
    }
}

/// Per-benchmark result of the limit studies (Figures 3–8, §4.5).
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Paper-reported reference values.
    pub paper: PaperRefs,
    /// Measured limit-study outcome.
    pub limit: LimitResult,
}

/// Run a queue of tasks over a worker pool, writing each task's output
/// into its own slot.
pub(crate) fn pool_run<T: Send, R: Send>(
    threads: usize,
    tasks: Vec<T>,
    run: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let n = tasks.len();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let queue: Mutex<Vec<(T, &mut Option<R>)>> =
        Mutex::new(tasks.into_iter().zip(slots.iter_mut()).collect());
    std::thread::scope(|scope| {
        let queue = &queue;
        let run = &run;
        for _ in 0..threads {
            scope.spawn(move || loop {
                let task = { queue.lock().unwrap().pop() };
                let Some((t, slot)) = task else { break };
                *slot = Some(run(t));
            });
        }
    });
    drop(queue); // release the &mut borrows into `slots`
    slots
        .into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Run the combined limit study over every workload, in parallel.
pub fn run_limit_studies(cfg: &HarnessConfig) -> Vec<BenchResult> {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    pool_run(threads, workloads, |w| run_one_limit(&w, cfg))
}

fn run_one_limit(w: &Workload, cfg: &HarnessConfig) -> BenchResult {
    let prog = w.program(cfg.seed);
    let mut vm = Vm::new(&prog);
    let limit_cfg = LimitConfig {
        window: cfg.window,
        ..LimitConfig::default()
    };
    let mut sink = LimitStudySink::new(limit_cfg, &Alpha21164);
    vm.run(cfg.budget, &mut sink)
        .unwrap_or_else(|e| panic!("{}: vm error: {e}", w.name));
    BenchResult {
        name: w.name,
        suite: w.suite,
        paper: w.paper,
        limit: sink.result(),
    }
}

/// One cell of the Figure 9 grid.
pub struct EngineCell {
    /// Benchmark name.
    pub name: &'static str,
    /// RTM configuration.
    pub rtm: RtmConfig,
    /// Collection heuristic.
    pub heuristic: Heuristic,
    /// Engine statistics.
    pub stats: EngineStats,
}

/// Run the execution-driven engine over the full Figure 9 grid:
/// every workload × every RTM capacity × every heuristic.
pub fn run_engine_grid(
    cfg: &HarnessConfig,
    rtms: &[RtmConfig],
    heuristics: &[Heuristic],
) -> Vec<EngineCell> {
    let workloads = tlr_workloads::all();
    let mut tasks = Vec::new();
    for w in &workloads {
        for &rtm in rtms {
            for &heuristic in heuristics {
                tasks.push((w, rtm, heuristic));
            }
        }
    }
    let threads = cfg.effective_threads(tasks.len());
    pool_run(threads, tasks, |(w, rtm, heuristic)| {
        let prog = w.program(cfg.seed);
        let stats = tlr_core::run_engine(&prog, EngineConfig::paper(rtm, heuristic), cfg.budget)
            .unwrap_or_else(|e| panic!("{}: engine error: {e}", w.name));
        EngineCell {
            name: w.name,
            rtm,
            heuristic,
            stats,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_studies_cover_all_benchmarks() {
        let cfg = HarnessConfig {
            budget: 8_000,
            ..HarnessConfig::default()
        };
        let results = run_limit_studies(&cfg);
        assert_eq!(results.len(), 14);
        // Order preserved (figure x-axes depend on it).
        assert_eq!(results[0].name, "applu");
        assert_eq!(results[13].name, "vortex");
        for r in &results {
            assert_eq!(r.limit.total_instrs, 8_000, "{}", r.name);
        }
    }

    #[test]
    fn engine_grid_shape() {
        let cfg = HarnessConfig {
            budget: 5_000,
            ..HarnessConfig::default()
        };
        let cells = run_engine_grid(
            &cfg,
            &[RtmConfig::RTM_512],
            &[Heuristic::IlrNe, Heuristic::FixedExp(4)],
        );
        assert_eq!(cells.len(), 14 * 2);
    }
}
