//! Serving-path performance: zero-copy `Get` latency and incremental
//! publish-back write amplification (ours, enabled by `tlr-serve`'s
//! image cache and `tlr-persist`'s delta segments).
//!
//! Three experiments over the workload suite:
//!
//! 1. **`Get` latency** — for every workload's published snapshot, time
//!    the daemon reply body two ways: the pre-image-cache baseline that
//!    re-serializes the resident snapshot on every request, and
//!    [`SnapshotRegistry::get_image`], which serves cached bytes after
//!    building the image once. Reported as mean / p50 / p90 / p99
//!    microseconds per fetch plus the one-off cold build time.
//! 2. **Write amplification** — after a warm follow-up run publishes
//!    back, compare the bytes a full snapshot rewrite would put on disk
//!    against what [`SnapshotRegistry::spill`] actually wrote as an
//!    append-only delta segment (only the PC groups the run changed).
//! 3. **Split-load equality** — for every workload × replacement
//!    policy, the snapshot loaded from base + delta must equal the
//!    snapshot loaded from one full file of the same resident state
//!    (the LSM-style invariant `base ⊕ deltas == full`).
//!
//! [`check_serveperf`] gates all three: cached fetches at least
//! [`CACHED_SPEEDUP_FLOOR`]× faster than re-serialization on suite
//! mean, suite-total delta bytes strictly below suite-total full
//! rewrite bytes, and digest equality on every workload × policy cell.
//!
//! [`SnapshotRegistry::get_image`]: tlr_serve::SnapshotRegistry::get_image
//! [`SnapshotRegistry::spill`]: tlr_serve::SnapshotRegistry::spill

use crate::harness::HarnessConfig;
use std::path::PathBuf;
use std::time::Instant;
use tlr_core::{
    EngineConfig, Heuristic, ReplacementPolicy, RtmConfig, RtmSnapshot, TraceReuseEngine,
};
use tlr_persist::snapshot::write_snapshot;
use tlr_persist::{load_merged_snapshots_tuned, program_fingerprint, save_snapshot};
use tlr_serve::{RegistryConfig, SnapshotRegistry, SpillKind};
use tlr_stats::Table;

/// Timed fetch iterations per workload and path (baseline and cached).
pub const LATENCY_ITERS: usize = 64;

/// Minimum suite-mean speedup of cached-image fetches over per-request
/// re-serialization that [`check_serveperf`] accepts.
pub const CACHED_SPEEDUP_FLOOR: f64 = 3.0;

/// Budget fraction of the warm follow-up run whose publish-back the
/// write-amplification experiment spills (a quarter of the cold run,
/// so it touches a strict subset of the collected PC groups).
pub const WARM_BUDGET_DIV: u64 = 4;

/// Latency distribution of one fetch path, in microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyDist {
    /// Mean over [`LATENCY_ITERS`] fetches.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
}

impl LatencyDist {
    fn from_samples(mut us: Vec<f64>) -> LatencyDist {
        us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = us.len();
        let pct = |p: f64| us[((n as f64 * p) as usize).min(n - 1)];
        LatencyDist {
            mean_us: us.iter().sum::<f64>() / n as f64,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
        }
    }
}

/// Per-workload serving-path measurements.
pub struct ServePerfCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Traces in the resident snapshot the fetches serve.
    pub traces: usize,
    /// Serialized image size in bytes.
    pub image_bytes: usize,
    /// One-off first `get_image` call (builds and caches the image).
    pub cold_build_us: f64,
    /// Baseline path: re-serialize the resident snapshot per fetch.
    pub reserialize: LatencyDist,
    /// Cached path: `get_image` hits after the build.
    pub cached: LatencyDist,
    /// Bytes a full snapshot rewrite of the post-publish resident state
    /// would write.
    pub full_rewrite_bytes: u64,
    /// Bytes the delta-segment spill of the same publish actually wrote.
    pub delta_bytes: u64,
    /// PC groups the delta carries.
    pub delta_groups: u64,
}

/// One workload × policy split-load equality measurement.
pub struct ServePerfEquality {
    /// Benchmark name.
    pub name: &'static str,
    /// Pooling policy under which the state was spilled and loaded.
    pub policy: ReplacementPolicy,
    /// Canonical digest of the base + delta load.
    pub split_digest: u64,
    /// Canonical digest of the full-snapshot load of the same state.
    pub full_digest: u64,
}

/// Everything `reproduce serveperf` measures.
pub struct ServePerfOutcome {
    /// Per-workload latency and write-amplification cells.
    pub cells: Vec<ServePerfCell>,
    /// Workload × policy split-load equality cells.
    pub equality: Vec<ServePerfEquality>,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tlr-bench-serveperf")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
    dir
}

/// Canonical content digest of a snapshot: FxHash64 over the sorted
/// per-PC-group digests ([`tlr_persist::group_digests`], which cover
/// records *and* provenance). Order-insensitive by construction — two
/// loads that hold the same trace/provenance set digest equal even if
/// their RTM import orders placed records in different ways.
fn snapshot_digest(snapshot: &RtmSnapshot) -> u64 {
    let groups = tlr_persist::group_digests(snapshot).expect("in-memory digest cannot fail");
    let mut bytes = Vec::with_capacity(groups.len() * 12 + 8);
    bytes.extend_from_slice(&(snapshot.config.geometry.sets as u64).to_le_bytes());
    for (pc, digest) in groups {
        bytes.extend_from_slice(&pc.to_le_bytes());
        bytes.extend_from_slice(&digest.to_le_bytes());
    }
    tlr_util::fx_hash_bytes(&bytes)
}

fn cold_snapshot(
    w: &tlr_workloads::Workload,
    cfg: &HarnessConfig,
    config: EngineConfig,
) -> RtmSnapshot {
    let program = w.program(cfg.seed);
    let mut engine = TraceReuseEngine::new(&program, config);
    engine.set_source_run(cfg.seed);
    engine
        .run(cfg.budget)
        .unwrap_or_else(|e| panic!("{}: cold engine error: {e}", w.name));
    engine
        .export_rtm()
        .expect("value-comparison backend snapshots")
}

fn warm_snapshot(
    w: &tlr_workloads::Workload,
    cfg: &HarnessConfig,
    config: EngineConfig,
    warm: &RtmSnapshot,
) -> RtmSnapshot {
    let program = w.program(cfg.seed);
    let mut engine = TraceReuseEngine::new_warm(&program, config, warm);
    engine.set_source_run(cfg.seed + 1);
    engine
        .run((cfg.budget / WARM_BUDGET_DIV).max(1))
        .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name));
    engine
        .export_rtm()
        .expect("value-comparison backend snapshots")
}

/// Run the serving-path bench: latency and write amplification for
/// every workload, split-load equality for every workload × policy.
pub fn run_serveperf(cfg: &HarnessConfig, rtm: RtmConfig) -> ServePerfOutcome {
    let workloads = tlr_workloads::all();
    let engine_config = EngineConfig::paper(rtm, Heuristic::FixedExp(4));
    let registry_config = |policy: ReplacementPolicy| RegistryConfig {
        policy,
        // One base + one delta per program; never compact mid-bench.
        compact_threshold: usize::MAX,
        ..RegistryConfig::default()
    };

    let dir = bench_dir("main");
    let registry = SnapshotRegistry::open(&dir, registry_config(ReplacementPolicy::Lru))
        .unwrap_or_else(|e| panic!("serveperf registry: {e}"));

    let mut cells = Vec::with_capacity(workloads.len());
    let mut colds = Vec::with_capacity(workloads.len());
    for w in &workloads {
        let cold = cold_snapshot(w, cfg, engine_config);
        let fingerprint = program_fingerprint(&w.program(cfg.seed));
        registry
            .publish(fingerprint, &cold)
            .unwrap_or_else(|e| panic!("{}: publish: {e}", w.name));
        let base = registry
            .spill(fingerprint)
            .unwrap_or_else(|e| panic!("{}: base spill: {e}", w.name));
        assert_eq!(base.kind, SpillKind::Base, "{}: first spill", w.name);

        // Latency: baseline re-serializes the resident snapshot per
        // fetch (what the daemon's Get did before the image cache);
        // the cached path clones the Arc the first call built.
        let resident = registry
            .get(fingerprint)
            .unwrap_or_else(|e| panic!("{}: get: {e}", w.name))
            .expect("just published");
        let mut baseline_us = Vec::with_capacity(LATENCY_ITERS);
        let mut image_bytes = 0;
        for _ in 0..LATENCY_ITERS {
            let t = Instant::now();
            let mut bytes = Vec::new();
            write_snapshot(&mut bytes, fingerprint, &resident)
                .unwrap_or_else(|e| panic!("{}: serialize: {e}", w.name));
            baseline_us.push(t.elapsed().as_secs_f64() * 1e6);
            image_bytes = bytes.len();
        }
        let t = Instant::now();
        registry
            .get_image(fingerprint)
            .unwrap_or_else(|e| panic!("{}: get_image: {e}", w.name))
            .expect("just published");
        let cold_build_us = t.elapsed().as_secs_f64() * 1e6;
        let mut cached_us = Vec::with_capacity(LATENCY_ITERS);
        for _ in 0..LATENCY_ITERS {
            let t = Instant::now();
            let image = registry
                .get_image(fingerprint)
                .unwrap_or_else(|e| panic!("{}: get_image: {e}", w.name))
                .expect("just published");
            cached_us.push(t.elapsed().as_secs_f64() * 1e6);
            drop(image);
        }

        // Write amplification: a warm quarter-budget run publishes
        // back; spill writes a delta, a full rewrite would write the
        // whole resident state again.
        let warm = warm_snapshot(w, cfg, engine_config, &resident);
        registry
            .publish(fingerprint, &warm)
            .unwrap_or_else(|e| panic!("{}: warm publish: {e}", w.name));
        let delta = registry
            .spill(fingerprint)
            .unwrap_or_else(|e| panic!("{}: delta spill: {e}", w.name));
        assert_eq!(delta.kind, SpillKind::Delta, "{}: second spill", w.name);
        let post = registry
            .get(fingerprint)
            .unwrap_or_else(|e| panic!("{}: get: {e}", w.name))
            .expect("still resident");
        let mut full = Vec::new();
        write_snapshot(&mut full, fingerprint, &post)
            .unwrap_or_else(|e| panic!("{}: serialize: {e}", w.name));

        cells.push(ServePerfCell {
            name: w.name,
            traces: resident.len(),
            image_bytes,
            cold_build_us,
            reserialize: LatencyDist::from_samples(baseline_us),
            cached: LatencyDist::from_samples(cached_us),
            full_rewrite_bytes: full.len() as u64,
            delta_bytes: delta.bytes_written,
            delta_groups: delta.delta_groups,
        });
        colds.push((w, cold));
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Split-load equality under every policy: spill base + delta with a
    // policy-P registry, then compare against a full save of the same
    // resident state, both loaded through the same tuned merge loader.
    let mut equality = Vec::new();
    for policy in ReplacementPolicy::ALL {
        let dir = bench_dir(policy.label());
        let full_dir = bench_dir(&format!("{}-full", policy.label()));
        let registry = SnapshotRegistry::open(&dir, registry_config(policy))
            .unwrap_or_else(|e| panic!("serveperf {} registry: {e}", policy.label()));
        for (w, cold) in &colds {
            let fingerprint = program_fingerprint(&w.program(cfg.seed));
            registry
                .publish(fingerprint, cold)
                .unwrap_or_else(|e| panic!("{}: publish: {e}", w.name));
            registry
                .spill(fingerprint)
                .unwrap_or_else(|e| panic!("{}: base spill: {e}", w.name));
            let resident = registry
                .get(fingerprint)
                .unwrap_or_else(|e| panic!("{}: get: {e}", w.name))
                .expect("just published");
            let warm = warm_snapshot(w, cfg, engine_config.with_policy(policy), &resident);
            registry
                .publish(fingerprint, &warm)
                .unwrap_or_else(|e| panic!("{}: warm publish: {e}", w.name));
            registry
                .spill(fingerprint)
                .unwrap_or_else(|e| panic!("{}: delta spill: {e}", w.name));

            let resident = registry
                .get(fingerprint)
                .unwrap_or_else(|e| panic!("{}: get: {e}", w.name))
                .expect("still resident");
            let full_path = full_dir.join(format!("{fingerprint:016x}.tlrsnap"));
            save_snapshot(&full_path, fingerprint, &resident)
                .unwrap_or_else(|e| panic!("{}: full save: {e}", w.name));

            let split_paths: Vec<PathBuf> = {
                let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
                    .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with(&format!("{fingerprint:016x}-")))
                    })
                    .collect();
                paths.sort();
                paths
            };
            let (_, split) = load_merged_snapshots_tuned(
                &split_paths,
                Some(fingerprint),
                policy,
                tlr_core::LFU_HALF_LIFE,
            )
            .unwrap_or_else(|e| panic!("{}: split load: {e}", w.name));
            let (_, full) = load_merged_snapshots_tuned(
                &[full_path],
                Some(fingerprint),
                policy,
                tlr_core::LFU_HALF_LIFE,
            )
            .unwrap_or_else(|e| panic!("{}: full load: {e}", w.name));
            equality.push(ServePerfEquality {
                name: w.name,
                policy,
                split_digest: snapshot_digest(&split),
                full_digest: snapshot_digest(&full),
            });
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&full_dir);
    }

    ServePerfOutcome { cells, equality }
}

/// Table: per-workload `Get` latency, reserialize vs cached image.
pub fn serveperf_latency_table(cells: &[ServePerfCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "traces",
        "image B",
        "reserialize mean us",
        "p99 us",
        "cached mean us",
        "p99 us",
        "build us",
        "speedup",
    ]);
    let (mut base_sum, mut cached_sum) = (0.0, 0.0);
    for cell in cells {
        base_sum += cell.reserialize.mean_us;
        cached_sum += cell.cached.mean_us;
        table.row(vec![
            cell.name.to_string(),
            cell.traces.to_string(),
            cell.image_bytes.to_string(),
            format!("{:.2}", cell.reserialize.mean_us),
            format!("{:.2}", cell.reserialize.p99_us),
            format!("{:.2}", cell.cached.mean_us),
            format!("{:.2}", cell.cached.p99_us),
            format!("{:.2}", cell.cold_build_us),
            format!(
                "{:.1}x",
                cell.reserialize.mean_us / cell.cached.mean_us.max(1e-9)
            ),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(vec![
            "mean".to_string(),
            String::new(),
            String::new(),
            format!("{:.2}", base_sum / n),
            String::new(),
            format!("{:.2}", cached_sum / n),
            String::new(),
            String::new(),
            format!("{:.1}x", base_sum / cached_sum.max(1e-9)),
        ]);
    }
    table
}

/// Table: per-workload publish-back write amplification, full rewrite
/// vs delta spill.
pub fn serveperf_write_table(cells: &[ServePerfCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "full rewrite B",
        "delta B",
        "delta groups",
        "bytes saved",
    ]);
    let (mut full_sum, mut delta_sum) = (0u64, 0u64);
    for cell in cells {
        full_sum += cell.full_rewrite_bytes;
        delta_sum += cell.delta_bytes;
        table.row(vec![
            cell.name.to_string(),
            cell.full_rewrite_bytes.to_string(),
            cell.delta_bytes.to_string(),
            cell.delta_groups.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - cell.delta_bytes as f64 / cell.full_rewrite_bytes.max(1) as f64)
            ),
        ]);
    }
    if !cells.is_empty() {
        table.row(vec![
            "total".to_string(),
            full_sum.to_string(),
            delta_sum.to_string(),
            String::new(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - delta_sum as f64 / full_sum.max(1) as f64)
            ),
        ]);
    }
    table
}

/// Table: split-load equality per policy (every workload must agree).
pub fn serveperf_equality_table(equality: &[ServePerfEquality]) -> Table {
    let mut table = Table::new(vec!["policy", "workloads", "base+delta == full"]);
    for policy in ReplacementPolicy::ALL {
        let rows: Vec<&ServePerfEquality> =
            equality.iter().filter(|e| e.policy == policy).collect();
        if rows.is_empty() {
            continue;
        }
        let equal = rows
            .iter()
            .filter(|e| e.split_digest == e.full_digest)
            .count();
        table.row(vec![
            policy.label().to_string(),
            rows.len().to_string(),
            format!("{equal}/{}", rows.len()),
        ]);
    }
    table
}

/// Regression gate: cached fetches ≥ [`CACHED_SPEEDUP_FLOOR`]× faster
/// than re-serialization on suite mean, suite-total delta bytes below
/// suite-total full-rewrite bytes, and split-load digest equality on
/// every workload × policy cell.
pub fn check_serveperf(outcome: &ServePerfOutcome) -> Result<(), String> {
    if outcome.cells.is_empty() {
        return Err("no serveperf cells measured".into());
    }
    let base_mean: f64 = outcome.cells.iter().map(|c| c.reserialize.mean_us).sum();
    let cached_mean: f64 = outcome.cells.iter().map(|c| c.cached.mean_us).sum();
    let speedup = base_mean / cached_mean.max(1e-9);
    if speedup < CACHED_SPEEDUP_FLOOR {
        return Err(format!(
            "cached-image Get only {speedup:.2}x faster than per-request re-serialization \
             (floor {CACHED_SPEEDUP_FLOOR}x)"
        ));
    }
    let full: u64 = outcome.cells.iter().map(|c| c.full_rewrite_bytes).sum();
    let delta: u64 = outcome.cells.iter().map(|c| c.delta_bytes).sum();
    if delta >= full {
        return Err(format!(
            "delta publish-back wrote {delta} B, not less than the {full} B a full rewrite costs"
        ));
    }
    for cell in &outcome.equality {
        if cell.split_digest != cell.full_digest {
            return Err(format!(
                "{} [{}]: base+delta load digest {:016x} != full-snapshot load digest {:016x}",
                cell.name,
                cell.policy.label(),
                cell.split_digest,
                cell.full_digest
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serveperf_invariants_hold_at_small_budget() {
        let cfg = HarnessConfig {
            budget: 20_000,
            ..HarnessConfig::quick()
        };
        let outcome = run_serveperf(&cfg, RtmConfig::RTM_32K);
        let workloads = tlr_workloads::all().len();
        assert_eq!(outcome.cells.len(), workloads);
        assert_eq!(
            outcome.equality.len(),
            workloads * ReplacementPolicy::ALL.len()
        );
        check_serveperf(&outcome).unwrap();
        for cell in &outcome.cells {
            assert!(cell.traces > 0, "{}: empty snapshot served", cell.name);
            assert!(cell.delta_groups > 0, "{}: empty delta spilled", cell.name);
        }
        let latency = serveperf_latency_table(&outcome.cells);
        assert_eq!(latency.len(), outcome.cells.len() + 1);
        let writes = serveperf_write_table(&outcome.cells);
        assert_eq!(writes.len(), outcome.cells.len() + 1);
        let equality = serveperf_equality_table(&outcome.equality);
        assert_eq!(equality.len(), ReplacementPolicy::ALL.len());
    }
}
