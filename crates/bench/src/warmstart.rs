//! Cold vs warm engine comparison (ours, enabled by `tlr-persist`).
//!
//! The paper's engine always starts with an empty RTM, so every run pays
//! the full trace-collection cost before any reuse happens. With RTM
//! snapshots that cost can be paid once: a **cold** run collects traces
//! and exports its RTM; a **warm** run of the same workload imports it
//! and reuses from the very first fetch. This module measures that gap —
//! the value proposition of persistent reuse state for serving many
//! short runs of the same scenarios.
//!
//! The snapshot additionally round-trips through the `tlr-persist`
//! binary codec in memory, so the comparison also exercises (and sizes)
//! the serialized form rather than a by-reference shortcut.

use crate::harness::{pool_run, HarnessConfig};
use tlr_core::{EngineConfig, EngineStats, Heuristic, RtmConfig, TraceReuseEngine};
use tlr_persist::program_fingerprint;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_stats::Table;

/// Cold/warm outcome for one workload.
pub struct WarmStartCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Stats of the cold run (empty RTM at entry).
    pub cold: EngineStats,
    /// Stats of the warm run (RTM imported from the cold run's export).
    pub warm: EngineStats,
    /// Traces carried by the snapshot.
    pub snapshot_traces: usize,
    /// Size of the snapshot's binary serialization.
    pub snapshot_bytes: usize,
}

/// Run the cold/warm comparison over every workload, in parallel.
pub fn run_warm_start(
    cfg: &HarnessConfig,
    rtm: RtmConfig,
    heuristic: Heuristic,
) -> Vec<WarmStartCell> {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    pool_run(threads, workloads, |w| {
        let prog = w.program(cfg.seed);
        let config = EngineConfig::paper(rtm, heuristic);
        let mut cold_engine = TraceReuseEngine::new(&prog, config);
        let cold = cold_engine
            .run(cfg.budget)
            .unwrap_or_else(|e| panic!("{}: cold engine error: {e}", w.name));
        let snapshot = cold_engine
            .export_rtm()
            .expect("value-comparison backend snapshots");

        // Serialize and re-load, as a real warm start off disk would.
        let fingerprint = program_fingerprint(&prog);
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, fingerprint, &snapshot)
            .unwrap_or_else(|e| panic!("{}: snapshot write error: {e}", w.name));
        let snapshot_bytes = bytes.len();
        let (_, loaded) = read_snapshot(&mut bytes.as_slice(), Some(fingerprint))
            .unwrap_or_else(|e| panic!("{}: snapshot read error: {e}", w.name));

        let warm = TraceReuseEngine::new_warm(&prog, config, &loaded)
            .run(cfg.budget)
            .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name));
        WarmStartCell {
            name: w.name,
            cold,
            warm,
            snapshot_traces: loaded.traces.len(),
            snapshot_bytes,
        }
    })
}

/// Table: per benchmark, cold vs warm `pct_reused()` and the snapshot's
/// size, with arithmetic means on the last row.
pub fn warm_start_table(cells: &[WarmStartCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "cold reused %",
        "warm reused %",
        "delta",
        "snapshot traces",
        "snapshot KiB",
    ]);
    let mut cold_sum = 0.0;
    let mut warm_sum = 0.0;
    for cell in cells {
        let cold = cell.cold.pct_reused();
        let warm = cell.warm.pct_reused();
        cold_sum += cold;
        warm_sum += warm;
        table.row(vec![
            cell.name.to_string(),
            format!("{cold:.1}"),
            format!("{warm:.1}"),
            format!("{:+.1}", warm - cold),
            cell.snapshot_traces.to_string(),
            format!("{:.1}", cell.snapshot_bytes as f64 / 1024.0),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(vec![
            "mean".to_string(),
            format!("{:.1}", cold_sum / n),
            format!("{:.1}", warm_sum / n),
            format!("{:+.1}", (warm_sum - cold_sum) / n),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// Regression gate for CI: a warm start must never reuse less than the
/// cold run it was seeded from (within float noise), and every snapshot
/// must carry traces.
pub fn check_warm_start(cells: &[WarmStartCell]) -> Result<(), String> {
    for cell in cells {
        let (cold, warm) = (cell.cold.pct_reused(), cell.warm.pct_reused());
        if warm < cold - 1e-9 {
            return Err(format!(
                "{}: warm reuse {warm:.3}% below cold {cold:.3}%",
                cell.name
            ));
        }
        if cell.snapshot_traces == 0 {
            return Err(format!(
                "{}: cold run exported an empty snapshot",
                cell.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_never_reuses_less_than_cold() {
        let cfg = HarnessConfig {
            budget: 30_000,
            ..HarnessConfig::quick()
        };
        let cells = run_warm_start(&cfg, RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        assert_eq!(cells.len(), tlr_workloads::all().len());
        for cell in &cells {
            assert!(
                cell.warm.pct_reused() >= cell.cold.pct_reused() - 1e-9,
                "{}: warm {} < cold {}",
                cell.name,
                cell.warm.pct_reused(),
                cell.cold.pct_reused()
            );
            assert!(cell.snapshot_traces > 0, "{}: empty snapshot", cell.name);
        }
        let table = warm_start_table(&cells);
        assert_eq!(table.len(), cells.len() + 1);
    }
}
