//! Daemon serving: cross-process warm starts vs the in-process path
//! (ours, enabled by `tlr-serve::daemon`).
//!
//! The `tlrd` daemon exists so many simulator *processes* share one
//! resident registry. That is only sound if the socket hop changes
//! nothing: a client warm-started from the daemon must behave exactly
//! like a run warm-started from an in-process [`SnapshotRegistry`] over
//! the same snapshot directory. This experiment checks that end to end:
//!
//! 1. per workload, two diverse cold producers export snapshots into
//!    one directory (the fleet experiment's producer pair);
//! 2. the **in-process path** opens a registry over the directory,
//!    fetches each program's merged-warm state, runs the warm engine,
//!    and records the final architectural-state digest
//!    ([`tlr_vm::Vm::state_digest`]);
//! 3. a `tlrd` daemon opens its *own* registry over the same directory;
//!    N concurrent **clients** — real `tlrsim run --remote` OS
//!    processes when the binary is available, [`RemoteRegistry`]
//!    threads otherwise — warm-start from it, publish back, and report
//!    their digests;
//! 4. [`check_daemon`] demands every client digest equal the in-process
//!    digest, every client actually warm-started, and the daemon-side
//!    counters add up to the client activity.
//!
//! Digest equality is the strongest cheap statement available: two runs
//! that end in identical architectural state took the same execution,
//! so the daemon served byte-equivalent warm state.

use crate::fleet::{FLEET_COLD_A, FLEET_COLD_B, FLEET_WARM};
use crate::harness::{pool_run, HarnessConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tlr_core::{EngineConfig, Heuristic, RtmConfig, RtmSnapshot, TraceReuseEngine};
use tlr_persist::{program_fingerprint, save_snapshot};
use tlr_serve::{Daemon, RegistryConfig, RegistryStats, RemoteRegistry, SnapshotRegistry};
use tlr_stats::Table;
use tlr_workloads::Workload;

/// One workload served through the daemon, compared to the in-process
/// path.
pub struct DaemonCell {
    /// Benchmark name.
    pub name: &'static str,
    /// How the client reached the daemon: a real `tlrsim` OS process
    /// (`"process"`) or an in-thread [`RemoteRegistry`] (`"thread"`).
    pub via: &'static str,
    /// Traces in the warm state the daemon served (0 = ran cold).
    pub served_traces: usize,
    /// The client's reuse percentage.
    pub warm_pct: f64,
    /// The in-process warm run's reuse percentage.
    pub in_process_pct: f64,
    /// Final architectural-state digest of the daemon-served client.
    pub client_digest: u64,
    /// Final architectural-state digest of the in-process warm run.
    pub in_process_digest: u64,
}

/// What the daemon experiment produced.
pub struct DaemonOutcome {
    /// Per-workload comparisons.
    pub cells: Vec<DaemonCell>,
    /// Daemon-side registry counters after every client finished.
    pub stats: RegistryStats,
    /// Concurrent clients that ran against the daemon.
    pub clients: usize,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("tlr-bench-daemon")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
    dir
}

fn producer_snapshot(
    w: &Workload,
    cfg: &HarnessConfig,
    rtm: RtmConfig,
    heuristic: Heuristic,
) -> RtmSnapshot {
    let prog = w.program(cfg.seed);
    let mut engine = TraceReuseEngine::new(&prog, EngineConfig::paper(rtm, heuristic));
    engine.set_source_run(cfg.seed);
    engine
        .run(cfg.budget)
        .unwrap_or_else(|e| panic!("{}: producer error: {e}", w.name));
    engine
        .export_rtm()
        .expect("value-comparison backend snapshots")
}

/// The in-process reference: merged-warm run via a local registry.
fn in_process_run(
    registry: &SnapshotRegistry,
    w: &Workload,
    cfg: &HarnessConfig,
    rtm: RtmConfig,
) -> (f64, u64, usize) {
    let prog = w.program(cfg.seed);
    let fingerprint = program_fingerprint(&prog);
    let snapshot = registry
        .get(fingerprint)
        .unwrap_or_else(|e| panic!("{}: registry error: {e}", w.name))
        .unwrap_or_else(|| panic!("{}: no snapshot on disk", w.name));
    let config = EngineConfig::paper(rtm, FLEET_WARM);
    let mut engine = TraceReuseEngine::new_warm(&prog, config, &snapshot);
    engine.set_source_run(cfg.seed);
    let stats = engine
        .run(cfg.budget)
        .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name));
    (
        stats.pct_reused(),
        engine.vm().state_digest(),
        snapshot.len(),
    )
}

/// A client reaching the daemon through [`RemoteRegistry`] in this
/// process (the fallback when no `tlrsim` binary is available).
fn thread_client(
    sock: &Path,
    w: &Workload,
    cfg: &HarnessConfig,
    rtm: RtmConfig,
) -> (f64, u64, usize) {
    let prog = w.program(cfg.seed);
    let fingerprint = program_fingerprint(&prog);
    let remote =
        RemoteRegistry::connect(sock).unwrap_or_else(|e| panic!("{}: connect error: {e}", w.name));
    let served = remote
        .get(fingerprint)
        .unwrap_or_else(|e| panic!("{}: remote get error: {e}", w.name));
    let config = EngineConfig::paper(rtm, FLEET_WARM);
    let mut engine = match &served {
        Some(snapshot) => TraceReuseEngine::new_warm(&prog, config, snapshot),
        None => TraceReuseEngine::new(&prog, config),
    };
    engine.set_source_run(cfg.seed);
    let stats = engine
        .run(cfg.budget)
        .unwrap_or_else(|e| panic!("{}: warm engine error: {e}", w.name));
    if let Some(snapshot) = engine.export_rtm() {
        remote
            .publish(fingerprint, &snapshot)
            .unwrap_or_else(|e| panic!("{}: remote publish error: {e}", w.name));
    }
    (
        stats.pct_reused(),
        engine.vm().state_digest(),
        served.map_or(0, |s| s.len()),
    )
}

/// A client running as a real OS process: `tlrsim run workload:NAME
/// --remote SOCK --digest`, its digest and served-trace count parsed
/// from stdout.
fn process_client(
    tlrsim: &Path,
    sock: &Path,
    w: &Workload,
    cfg: &HarnessConfig,
    rtm: RtmConfig,
) -> (f64, u64, usize) {
    let Heuristic::FixedExp(n) = FLEET_WARM else {
        panic!("FLEET_WARM is expected to be a fixed-expansion heuristic")
    };
    let output = std::process::Command::new(tlrsim)
        .args([
            "run",
            &format!("workload:{}", w.name),
            "--seed",
            &cfg.seed.to_string(),
            "--budget",
            &cfg.budget.to_string(),
            "--rtm",
            &rtm.label().to_lowercase(),
            "--heuristic",
            &format!("i{n}"),
            "--remote",
            &sock.display().to_string(),
            "--digest",
        ])
        .output()
        .unwrap_or_else(|e| panic!("{}: cannot spawn {}: {e}", w.name, tlrsim.display()));
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        panic!(
            "{}: client process failed ({}): {}{}",
            w.name,
            output.status,
            stdout,
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let mut digest = None;
    let mut served = 0usize;
    let mut pct = f64::NAN;
    for line in stdout.lines() {
        if let Some(hex) = line.strip_prefix("state digest: ") {
            digest = u64::from_str_radix(hex.trim(), 16).ok();
        } else if let Some(rest) = line.strip_prefix("warm start: ") {
            served = rest
                .split_whitespace()
                .next()
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("reuse: ") {
            pct = rest
                .split('%')
                .next()
                .and_then(|n| n.trim().parse().ok())
                .unwrap_or(f64::NAN);
        }
    }
    let digest =
        digest.unwrap_or_else(|| panic!("{}: no state digest in client output:\n{stdout}", w.name));
    (pct, digest, served)
}

/// Locate the `tlrsim` binary next to the currently running one (they
/// share a cargo target directory), for process-mode clients.
pub fn sibling_tlrsim() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("tlrsim");
    candidate.is_file().then_some(candidate)
}

/// Run the daemon experiment over every workload: produce snapshots,
/// compute the in-process reference, then serve N concurrent clients
/// (OS processes when `tlrsim` is given, threads otherwise) from one
/// daemon over the same directory.
pub fn run_daemon_bench(
    cfg: &HarnessConfig,
    rtm: RtmConfig,
    tlrsim: Option<&Path>,
) -> DaemonOutcome {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    let dir = bench_dir("serve");

    // Producers: the fleet pair per workload, so the registry pools two
    // snapshots per program on load.
    pool_run(threads, workloads.clone(), |w| {
        let prog = w.program(cfg.seed);
        let fingerprint = program_fingerprint(&prog);
        for (suffix, heuristic) in [("a", FLEET_COLD_A), ("b", FLEET_COLD_B)] {
            let snapshot = producer_snapshot(&w, cfg, rtm, heuristic);
            let path = dir.join(format!("{}-{suffix}.tlrsnap", w.name));
            save_snapshot(&path, fingerprint, &snapshot)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    });

    // The in-process reference path.
    let local = SnapshotRegistry::open(&dir, RegistryConfig::default())
        .unwrap_or_else(|e| panic!("registry open: {e}"));
    let reference: Vec<(f64, u64, usize)> = pool_run(threads, workloads.clone(), |w| {
        in_process_run(&local, &w, cfg, rtm)
    });

    // The daemon path: a fresh registry over the same directory, one
    // daemon, N concurrent clients.
    let served = Arc::new(
        SnapshotRegistry::open(&dir, RegistryConfig::default())
            .unwrap_or_else(|e| panic!("registry open: {e}")),
    );
    let sock = dir.join("tlrd.sock");
    let daemon = Daemon::bind(&sock, Arc::clone(&served)).unwrap_or_else(|e| panic!("bind: {e}"));
    let handle = daemon.handle();
    let server = std::thread::spawn(move || daemon.run());

    let via = if tlrsim.is_some() {
        "process"
    } else {
        "thread"
    };
    let client_results: Vec<(f64, u64, usize)> =
        pool_run(threads, workloads.clone(), |w| match tlrsim {
            Some(binary) => process_client(binary, &sock, &w, cfg, rtm),
            None => thread_client(&sock, &w, cfg, rtm),
        });
    let stats = served.stats();
    handle.shutdown();
    server
        .join()
        .expect("daemon thread panicked")
        .unwrap_or_else(|e| panic!("daemon error: {e}"));

    let cells = workloads
        .iter()
        .zip(reference)
        .zip(client_results)
        .map(
            |((w, (in_process_pct, in_process_digest, _)), (warm_pct, client_digest, served))| {
                DaemonCell {
                    name: w.name,
                    via,
                    served_traces: served,
                    warm_pct,
                    in_process_pct,
                    client_digest,
                    in_process_digest,
                }
            },
        )
        .collect();
    let _ = std::fs::remove_dir_all(&dir);
    DaemonOutcome {
        cells,
        stats,
        clients: workloads.len(),
    }
}

/// Table: per benchmark, the daemon-served client vs the in-process
/// path, with the digest verdict per row and the daemon counters last.
pub fn daemon_table(outcome: &DaemonOutcome) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "client",
        "served traces",
        "daemon-warm %",
        "in-process %",
        "state",
    ]);
    for cell in &outcome.cells {
        table.row(vec![
            cell.name.to_string(),
            cell.via.to_string(),
            cell.served_traces.to_string(),
            format!("{:.1}", cell.warm_pct),
            format!("{:.1}", cell.in_process_pct),
            if cell.client_digest == cell.in_process_digest {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    table.row(vec![
        "daemon".to_string(),
        format!("{} clients", outcome.clients),
        String::new(),
        String::new(),
        String::new(),
        format!(
            "{} hits, {} misses, {} refreshes",
            outcome.stats.hits, outcome.stats.misses, outcome.stats.refreshes
        ),
    ]);
    table
}

/// Regression gate for CI: the socket hop must change nothing. Every
/// client digest equals the in-process digest, every client actually
/// warm-started, at least two clients ran concurrently against the
/// daemon, and the daemon-side counters account for exactly the client
/// activity (one fetch and one publish-back per client, no unknowns).
pub fn check_daemon(outcome: &DaemonOutcome) -> Result<(), String> {
    if outcome.clients < 2 {
        return Err(format!(
            "only {} client(s) ran; the experiment needs concurrency",
            outcome.clients
        ));
    }
    for cell in &outcome.cells {
        if cell.client_digest != cell.in_process_digest {
            return Err(format!(
                "{} [{}]: daemon-served digest {:016x} != in-process digest {:016x}",
                cell.name, cell.via, cell.client_digest, cell.in_process_digest
            ));
        }
        if cell.served_traces == 0 {
            return Err(format!(
                "{} [{}]: client ran cold; the daemon served no warm state",
                cell.name, cell.via
            ));
        }
    }
    let stats = &outcome.stats;
    let fetches = stats.hits + stats.misses;
    if fetches != outcome.clients as u64 {
        return Err(format!(
            "daemon answered {fetches} fetches for {} clients",
            outcome.clients
        ));
    }
    if stats.refreshes != outcome.clients as u64 {
        return Err(format!(
            "daemon absorbed {} publish-backs for {} clients",
            stats.refreshes, outcome.clients
        ));
    }
    if stats.unknown != 0 {
        return Err(format!(
            "daemon saw {} fetches for unknown programs",
            stats.unknown
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_clients_match_in_process_path() {
        let cfg = HarnessConfig {
            budget: 20_000,
            ..HarnessConfig::quick()
        };
        // Thread-mode clients: the test must not depend on a prebuilt
        // tlrsim binary (the CI daemon smoke covers process mode).
        let outcome = run_daemon_bench(&cfg, RtmConfig::RTM_32K, None);
        assert_eq!(outcome.cells.len(), tlr_workloads::all().len());
        check_daemon(&outcome).unwrap();
        let table = daemon_table(&outcome);
        assert_eq!(table.len(), outcome.cells.len() + 1);
    }
}
