#![warn(missing_docs)]
//! # tlr-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§4) from this workspace's substrate, printing
//! paper-reported values next to measured ones and writing CSV into
//! `results/`.
//!
//! | target | reproduces |
//! |---|---|
//! | `reproduce fig3` | Figure 3 — instruction-level reusability |
//! | `reproduce fig4` | Figure 4 — ILR speed-up, infinite window (a: per-benchmark @1 cycle, b: latency sweep) |
//! | `reproduce fig5` | Figure 5 — ILR speed-up, 256-entry window |
//! | `reproduce fig6` | Figure 6 — TLR speed-up @1 cycle (a: infinite, b: 256-entry) |
//! | `reproduce fig7` | Figure 7 — average trace size |
//! | `reproduce fig8` | Figure 8 — TLR latency sensitivity (a: constant 1–4, b: ∝ I/O, K sweep) |
//! | `reproduce io` | §4.5 text — per-trace I/O counts and bandwidth per reused instruction |
//! | `reproduce fig9` | Figure 9 — finite RTM × collection heuristic (% reused, trace size) |
//! | `reproduce ablation` | ours — window slots per reused trace (0 vs 1), fetch-skip decomposition |
//! | `reproduce warmstart` | ours — cold vs RTM-snapshot-seeded engine |
//! | `reproduce fleet` | ours — solo-warm vs merged-warm reuse (snapshot pooling for a serving fleet) |
//! | `reproduce policy` | ours — RTM replacement-policy sweep (LRU vs LFU vs cost/benefit, cold and merged-warm) |
//! | `reproduce daemon` | ours — N concurrent clients warm-starting from one `tlrd` daemon vs the in-process registry path |
//! | `reproduce decant` | ours — reuse attribution by opcode class and loop structure (`tlr-decant` over the decision tap) |
//! | `reproduce throughput` | ours — simulator MIPS: observing interpreter vs predecoded fast path, reference vs throughput engine, batched suite |
//! | `reproduce serveperf` | ours — zero-copy `Get` latency (cached image vs re-serialization), delta-spill write amplification, base ⊕ delta split-load equality |
//! | `reproduce crossseed` | ours — cross-seed warm start: same code under different data seeds shares reuse state by shape fingerprint |
//!
//! With `--check`, the `warmstart`, `fleet`, `policy`, `daemon`,
//! `decant`, `throughput`, `serveperf`, and `crossseed` targets
//! additionally act as
//! regression gates: the process exits nonzero when a warm start reuses
//! less than its cold run, a merged warm start reuses less than the
//! better solo warm start, any policy configuration fails
//! architectural-state equality, a daemon-served client's final
//! architectural-state digest differs from the in-process registry
//! path's, a decanted attribution fails to sum exactly to its decision
//! log's totals, a fast-path run diverges from its reference (state,
//! reuse decisions, or mean speed), the serving path regresses
//! (cached-image fetches under the speedup floor, delta spills writing
//! at least as much as full rewrites, or a base + delta load
//! disagreeing with the full-snapshot load of the same state), or a
//! cross-seed warm start breaks architectural-state equality, loses
//! its shape fingerprint, or fails to beat cold on the suite mean.
//!
//! With `--json OUT`, every table produced by the invocation is also
//! written to `OUT` as one machine-readable JSON document (config +
//! per-target headers and rows), so bench trajectories can accumulate
//! across commits.
//!
//! All figure functions are library code so the integration tests can run
//! them at reduced budgets.

pub mod batch;
pub mod crossseed;
pub mod daemon;
pub mod decant;
pub mod figures;
pub mod fleet;
pub mod harness;
pub mod policy;
pub mod serveperf;
pub mod throughput;
pub mod warmstart;

pub use batch::{BatchOutcome, BatchRunner, BatchSpec, Schedule};
pub use crossseed::{
    check_crossseed, crossseed_table, run_crossseed, CrossSeedCell, CROSS_TOLERANCE_PCT, SEEDS,
};
pub use daemon::{
    check_daemon, daemon_table, run_daemon_bench, sibling_tlrsim, DaemonCell, DaemonOutcome,
};
pub use decant::{
    check_decant, decant_class_table, decant_loop_table, decant_table, run_decant, DecantCell,
};
pub use fleet::{check_fleet, fleet_table, run_fleet, run_fleet_with, FleetCell, FleetExecution};
pub use harness::{run_engine_grid, run_limit_studies, BenchResult, EngineCell, HarnessConfig};
pub use policy::{
    check_policy, measured_label, policy_table, run_policy_sweep, state_digest, PolicyCell,
};
pub use serveperf::{
    check_serveperf, run_serveperf, serveperf_equality_table, serveperf_latency_table,
    serveperf_write_table, ServePerfCell, ServePerfEquality, ServePerfOutcome,
};
pub use throughput::{
    batch_table, check_throughput, run_batch_bench, run_throughput, throughput_table, BatchCell,
    ThroughputCell,
};
pub use warmstart::{check_warm_start, run_warm_start, warm_start_table, WarmStartCell};
