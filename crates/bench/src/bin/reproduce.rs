//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [OPTIONS] [TARGETS...]
//!
//! TARGETS: fig3 fig4 fig5 fig6 fig7 fig8 io fig9 ablation pipeline validbit schemes
//!          warmstart fleet policy daemon decant throughput serveperf crossseed all
//!          (default: all)
//!
//! OPTIONS:
//!   --budget N    dynamic instructions per benchmark   (default 400000)
//!   --seed N      workload seed                        (default 20260611)
//!   --window N    finite window size                   (default 256)
//!   --threads N   worker threads                       (default: all cores)
//!   --out DIR     write CSVs here                      (default results/)
//!   --json OUT    also write every produced table to OUT as one
//!                 machine-readable JSON document (config + targets)
//!   --charts      also print ASCII bar charts
//!   --check       exit nonzero on a regression (warmstart, fleet, policy,
//!                 daemon, decant, throughput, serveperf, crossseed)
//!   --processes   fleet: also run the legacy per-task worker-pool path
//!                 next to the default in-process batched path and report
//!                 both tables
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use tlr_bench::figures;
use tlr_bench::{run_engine_grid, run_limit_studies, BenchResult, FleetExecution, HarnessConfig};
use tlr_core::{Heuristic, RtmConfig};
use tlr_persist::json::{self, Json};
use tlr_stats::Table;

struct Options {
    cfg: HarnessConfig,
    targets: Vec<String>,
    out_dir: PathBuf,
    json_out: Option<PathBuf>,
    charts: bool,
    check: bool,
    processes: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut cfg = HarnessConfig::default();
    let mut targets = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut json_out = None;
    let mut charts = false;
    let mut check = false;
    let mut processes = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--budget" => cfg.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => cfg.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => cfg.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => out_dir = PathBuf::from(value("--out")?),
            "--json" => json_out = Some(PathBuf::from(value("--json")?)),
            "--charts" => charts = true,
            "--check" => check = true,
            "--processes" => processes = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Ok(Options {
        cfg,
        targets,
        out_dir,
        json_out,
        charts,
        check,
        processes,
    })
}

const HELP: &str = "reproduce [--budget N] [--seed N] [--window N] [--threads N] [--out DIR] [--json OUT] [--charts] [--check] [--processes] \
                    [fig3|fig4|fig5|fig6|fig7|fig8|io|fig9|ablation|pipeline|validbit|schemes|warmstart|fleet|policy|daemon|decant|throughput|serveperf|crossseed|all ...]";

/// JSON schema tag of the `--json` results document.
const RESULTS_FORMAT: &str = "tlr-bench-v1";

/// Tables produced during this invocation, for `--json` emission.
#[derive(Default)]
struct Results {
    tables: Vec<(String, String, Table)>,
}

impl Results {
    /// The machine-readable results document: run configuration plus
    /// every produced table's headers and rows, keyed by target name.
    fn to_json(&self, cfg: &HarnessConfig) -> Json {
        let mut targets = BTreeMap::new();
        for (name, title, table) in &self.tables {
            let mut obj = BTreeMap::new();
            obj.insert("title".into(), Json::Str(title.clone()));
            obj.insert(
                "headers".into(),
                Json::Arr(
                    table
                        .headers()
                        .iter()
                        .map(|h| Json::Str(h.clone()))
                        .collect(),
                ),
            );
            obj.insert(
                "rows".into(),
                Json::Arr(
                    table
                        .rows()
                        .iter()
                        .map(|row| {
                            Json::Arr(row.iter().map(|cell| Json::Str(cell.clone())).collect())
                        })
                        .collect(),
                ),
            );
            targets.insert(name.clone(), Json::Obj(obj));
        }
        let mut config = BTreeMap::new();
        config.insert("budget".into(), Json::Num(cfg.budget));
        config.insert("seed".into(), Json::Num(cfg.seed));
        config.insert("window".into(), Json::Num(cfg.window as u64));
        let mut doc = BTreeMap::new();
        doc.insert("format".into(), Json::Str(RESULTS_FORMAT.into()));
        doc.insert("config".into(), Json::Obj(config));
        doc.insert("targets".into(), Json::Obj(targets));
        Json::Obj(doc)
    }
}

fn emit(out_dir: &PathBuf, doc: &mut Results, name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{}", table.to_text());
    doc.tables
        .push((name.to_string(), title.to_string(), table.clone()));
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn wants(targets: &[String], t: &str) -> bool {
    targets.iter().any(|x| x == t || x == "all")
}

fn limit_figures(opts: &Options, doc: &mut Results, results: &[BenchResult]) {
    let t = &opts.targets;
    if wants(t, "fig3") {
        emit(
            &opts.out_dir,
            doc,
            "fig3",
            "Figure 3: instruction-level reusability (perfect engine, % of dynamic instructions)",
            &figures::fig3(results),
        );
        if opts.charts {
            println!(
                "{}",
                figures::chart("reusability %", results, |r| r.limit.reusability_pct)
            );
        }
    }
    if wants(t, "fig4") {
        emit(
            &opts.out_dir,
            doc,
            "fig4a",
            "Figure 4a: ILR speed-up, infinite window, 1-cycle reuse latency",
            &figures::fig4a(results),
        );
        emit(
            &opts.out_dir,
            doc,
            "fig4b",
            "Figure 4b: ILR speed-up vs reuse latency (infinite window, averages)",
            &figures::fig4b(results),
        );
    }
    if wants(t, "fig5") {
        emit(
            &opts.out_dir,
            doc,
            "fig5a",
            "Figure 5a: ILR speed-up, 256-entry window, 1-cycle reuse latency",
            &figures::fig5a(results),
        );
        emit(
            &opts.out_dir,
            doc,
            "fig5b",
            "Figure 5b: ILR speed-up vs reuse latency (256-entry window, averages)",
            &figures::fig5b(results),
        );
    }
    if wants(t, "fig6") {
        emit(
            &opts.out_dir,
            doc,
            "fig6a",
            "Figure 6a: TLR speed-up, infinite window, 1-cycle reuse latency",
            &figures::fig6a(results),
        );
        emit(
            &opts.out_dir,
            doc,
            "fig6b",
            "Figure 6b: TLR speed-up, 256-entry window, 1-cycle reuse latency",
            &figures::fig6b(results),
        );
        if opts.charts {
            println!(
                "{}",
                figures::chart("TLR speed-up (W=256)", results, |r| r
                    .limit
                    .tlr_speedup_win(1))
            );
        }
    }
    if wants(t, "fig7") {
        emit(
            &opts.out_dir,
            doc,
            "fig7",
            "Figure 7: average trace size (maximal reusable traces)",
            &figures::fig7(results),
        );
    }
    if wants(t, "fig8") {
        emit(
            &opts.out_dir,
            doc,
            "fig8a",
            "Figure 8a: TLR speed-up vs constant reuse latency (W=256, averages)",
            &figures::fig8a(results),
        );
        emit(
            &opts.out_dir,
            doc,
            "fig8b",
            "Figure 8b: TLR speed-up vs proportional latency K x (inputs+outputs) (W=256)",
            &figures::fig8b(results),
        );
    }
    if wants(t, "io") {
        emit(
            &opts.out_dir,
            doc,
            "io",
            "Section 4.5: per-trace I/O and bandwidth per reused instruction",
            &figures::io_table(results),
        );
    }
    if wants(t, "ablation") {
        emit(
            &opts.out_dir,
            doc,
            "ablation_slots",
            "Ablation: window slots per reused trace (TLR, W=256, 1-cycle latency)",
            &figures::ablation_slots(results),
        );
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };
    let needs_limits = [
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "io", "ablation",
    ]
    .iter()
    .any(|t| wants(&opts.targets, t));
    let needs_engine = wants(&opts.targets, "fig9");
    let mut results_doc = Results::default();
    let doc = &mut results_doc;

    println!(
        "trace-level reuse reproduction | budget {} instrs/benchmark, seed {}, window {}",
        tlr_util::group_digits(opts.cfg.budget),
        opts.cfg.seed,
        opts.cfg.window
    );
    println!();

    if needs_limits {
        let start = std::time::Instant::now();
        let results = run_limit_studies(&opts.cfg);
        eprintln!("[limit studies: {:?}]", start.elapsed());
        limit_figures(&opts, doc, &results);
    }

    if wants(&opts.targets, "validbit") {
        let start = std::time::Instant::now();
        let table = figures::validbit_table(&opts.cfg);
        eprintln!("[valid-bit comparison: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "validbit",
            "Reuse-test comparison (Section 3.3): value comparison vs valid bit + invalidation",
            &table,
        );
    }

    if wants(&opts.targets, "schemes") {
        let start = std::time::Instant::now();
        let table = figures::schemes_table(&opts.cfg);
        eprintln!("[scheme comparison: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "schemes",
            "Instruction-reuse schemes (Section 2, Sodani & Sohi): Sv values vs Sn names",
            &table,
        );
    }

    if wants(&opts.targets, "pipeline") {
        let start = std::time::Instant::now();
        let table = figures::pipeline_ablation(&opts.cfg);
        eprintln!("[pipeline ablation: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "pipeline_ablation",
            "Pipeline ablation (Section 3 model): fetch-skip and window-bypass decomposition",
            &table,
        );
    }

    if wants(&opts.targets, "warmstart") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_warm_start(&opts.cfg, RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        eprintln!("[warm start: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "warmstart",
            "Warm start (ours): cold vs RTM-snapshot-seeded engine, % of instructions reused",
            &tlr_bench::warm_start_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_warm_start(&cells) {
                eprintln!("error: warm-start regression: {msg}");
                std::process::exit(1);
            }
            println!("warmstart check: ok");
        }
    }

    if wants(&opts.targets, "fleet") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_fleet(&opts.cfg, RtmConfig::RTM_32K);
        eprintln!("[fleet (batched): {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "fleet",
            "Fleet pooling (ours): solo-warm vs merged-warm engine, in-process batched, % of instructions reused",
            &tlr_bench::fleet_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_fleet(&cells) {
                eprintln!("error: fleet regression: {msg}");
                std::process::exit(1);
            }
            println!("fleet check: ok");
        }
        if opts.processes {
            let start = std::time::Instant::now();
            let pooled =
                tlr_bench::run_fleet_with(&opts.cfg, RtmConfig::RTM_32K, FleetExecution::Pooled);
            eprintln!("[fleet (pooled): {:?}]", start.elapsed());
            emit(
                &opts.out_dir,
                doc,
                "fleet_pooled",
                "Fleet pooling (ours): legacy per-task worker-pool path, % of instructions reused",
                &tlr_bench::fleet_table(&pooled),
            );
            if opts.check {
                if let Err(msg) = tlr_bench::check_fleet(&pooled) {
                    eprintln!("error: fleet (pooled) regression: {msg}");
                    std::process::exit(1);
                }
                println!("fleet (pooled) check: ok");
            }
        }
    }

    if wants(&opts.targets, "policy") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_policy_sweep(&opts.cfg, RtmConfig::RTM_32K);
        eprintln!("[policy sweep: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "policy",
            "Replacement-policy sweep (ours): LRU vs LFU vs cost/benefit, cold and merged-warm at RTM 32K",
            &tlr_bench::policy_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_policy(&cells) {
                eprintln!("error: policy regression: {msg}");
                std::process::exit(1);
            }
            println!("policy check: ok");
        }
    }

    if wants(&opts.targets, "daemon") {
        let start = std::time::Instant::now();
        // Real client processes when the tlrsim binary sits next to
        // this one (a normal cargo build); in-thread clients otherwise.
        let tlrsim = tlr_bench::sibling_tlrsim();
        if tlrsim.is_none() {
            eprintln!(
                "[daemon: no tlrsim binary found next to reproduce; using in-thread clients]"
            );
        }
        let outcome = tlr_bench::run_daemon_bench(&opts.cfg, RtmConfig::RTM_32K, tlrsim.as_deref());
        eprintln!("[daemon: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "daemon",
            "Daemon serving (ours): concurrent clients warm-started from one tlrd vs the in-process registry path",
            &tlr_bench::daemon_table(&outcome),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_daemon(&outcome) {
                eprintln!("error: daemon regression: {msg}");
                std::process::exit(1);
            }
            println!("daemon check: ok");
        }
    }

    if wants(&opts.targets, "decant") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_decant(&opts.cfg, RtmConfig::RTM_32K);
        eprintln!("[decant: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "decant",
            "Reuse attribution (ours): per-workload decant of the decision tap by class and loop structure",
            &tlr_bench::decant_table(&cells),
        );
        emit(
            &opts.out_dir,
            doc,
            "decant_classes",
            "Reuse attribution (ours): per-opcode-class split, suite aggregate per policy",
            &tlr_bench::decant_class_table(&cells),
        );
        emit(
            &opts.out_dir,
            doc,
            "decant_loops",
            "Reuse attribution (ours): per-loop-structure split, suite aggregate per policy",
            &tlr_bench::decant_loop_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_decant(&cells) {
                eprintln!("error: decant regression: {msg}");
                std::process::exit(1);
            }
            println!("decant check: ok");
        }
    }

    if wants(&opts.targets, "throughput") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_throughput(&opts.cfg, RtmConfig::RTM_4K);
        let batch = tlr_bench::run_batch_bench(&opts.cfg, RtmConfig::RTM_4K);
        eprintln!("[throughput: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "throughput",
            "Simulator throughput (ours): observing interpreter vs predecoded fast path, reference vs throughput engine (MIPS)",
            &tlr_bench::throughput_table(&cells),
        );
        emit(
            &opts.out_dir,
            doc,
            "throughput_batch",
            "Simulator throughput (ours): whole suite as one in-process batch per schedule",
            &tlr_bench::batch_table(&batch),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_throughput(&cells, &batch) {
                eprintln!("error: throughput regression: {msg}");
                std::process::exit(1);
            }
            println!("throughput check: ok");
        }
    }

    if wants(&opts.targets, "serveperf") {
        let start = std::time::Instant::now();
        let outcome = tlr_bench::run_serveperf(&opts.cfg, RtmConfig::RTM_32K);
        eprintln!("[serveperf: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "serveperf_latency",
            "Serving path (ours): daemon Get latency, per-request re-serialization vs cached image",
            &tlr_bench::serveperf_latency_table(&outcome.cells),
        );
        emit(
            &opts.out_dir,
            doc,
            "serveperf_writes",
            "Serving path (ours): publish-back write amplification, full rewrite vs delta spill",
            &tlr_bench::serveperf_write_table(&outcome.cells),
        );
        emit(
            &opts.out_dir,
            doc,
            "serveperf_equality",
            "Serving path (ours): base + delta split-load vs full-snapshot load, per policy",
            &tlr_bench::serveperf_equality_table(&outcome.equality),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_serveperf(&outcome) {
                eprintln!("error: serveperf regression: {msg}");
                std::process::exit(1);
            }
            println!("serveperf check: ok");
        }
    }

    if wants(&opts.targets, "crossseed") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_crossseed(&opts.cfg, RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        eprintln!("[cross-seed: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "crossseed",
            "Cross-seed warm start (ours): cold vs solo-warm vs shape-resolved cross-warm, % of instructions reused",
            &tlr_bench::crossseed_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_crossseed(&cells) {
                eprintln!("error: cross-seed regression: {msg}");
                std::process::exit(1);
            }
            println!("crossseed check: ok");
        }
    }

    if needs_engine {
        let start = std::time::Instant::now();
        let rtms = RtmConfig::PAPER_SWEEP;
        let heuristics = Heuristic::paper_sweep();
        let cells = run_engine_grid(&opts.cfg, &rtms, &heuristics);
        eprintln!("[engine grid: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            doc,
            "fig9a",
            "Figure 9a: % of dynamic instructions reused (finite RTM, average of 14 benchmarks)",
            &figures::fig9a(&cells, &rtms, &heuristics),
        );
        emit(
            &opts.out_dir,
            doc,
            "fig9b",
            "Figure 9b: average reused-trace size (finite RTM, average of 14 benchmarks)",
            &figures::fig9b(&cells, &rtms, &heuristics),
        );
    }

    if let Some(path) = &opts.json_out {
        let text = json::to_string_pretty(&results_doc.to_json(&opts.cfg));
        match std::fs::write(path, text) {
            Ok(()) => println!(
                "wrote {} target table(s) to {}",
                results_doc.tables.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
