//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [OPTIONS] [TARGETS...]
//!
//! TARGETS: fig3 fig4 fig5 fig6 fig7 fig8 io fig9 ablation pipeline validbit schemes
//!          warmstart fleet all   (default: all)
//!
//! OPTIONS:
//!   --budget N    dynamic instructions per benchmark   (default 400000)
//!   --seed N      workload seed                        (default 20260611)
//!   --window N    finite window size                   (default 256)
//!   --threads N   worker threads                       (default: all cores)
//!   --out DIR     write CSVs here                      (default results/)
//!   --charts      also print ASCII bar charts
//!   --check       exit nonzero on a reuse-rate regression (warmstart, fleet)
//! ```

use std::path::PathBuf;
use tlr_bench::figures;
use tlr_bench::{run_engine_grid, run_limit_studies, BenchResult, HarnessConfig};
use tlr_core::{Heuristic, RtmConfig};
use tlr_stats::Table;

struct Options {
    cfg: HarnessConfig,
    targets: Vec<String>,
    out_dir: PathBuf,
    charts: bool,
    check: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut cfg = HarnessConfig::default();
    let mut targets = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut charts = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--budget" => cfg.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => cfg.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => cfg.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => out_dir = PathBuf::from(value("--out")?),
            "--charts" => charts = true,
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            t if !t.starts_with('-') => targets.push(t.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    Ok(Options {
        cfg,
        targets,
        out_dir,
        charts,
        check,
    })
}

const HELP: &str = "reproduce [--budget N] [--seed N] [--window N] [--threads N] [--out DIR] [--charts] [--check] \
                    [fig3|fig4|fig5|fig6|fig7|fig8|io|fig9|ablation|pipeline|validbit|schemes|warmstart|fleet|all ...]";

fn emit(out_dir: &PathBuf, name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{}", table.to_text());
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn wants(targets: &[String], t: &str) -> bool {
    targets.iter().any(|x| x == t || x == "all")
}

fn limit_figures(opts: &Options, results: &[BenchResult]) {
    let t = &opts.targets;
    if wants(t, "fig3") {
        emit(
            &opts.out_dir,
            "fig3",
            "Figure 3: instruction-level reusability (perfect engine, % of dynamic instructions)",
            &figures::fig3(results),
        );
        if opts.charts {
            println!(
                "{}",
                figures::chart("reusability %", results, |r| r.limit.reusability_pct)
            );
        }
    }
    if wants(t, "fig4") {
        emit(
            &opts.out_dir,
            "fig4a",
            "Figure 4a: ILR speed-up, infinite window, 1-cycle reuse latency",
            &figures::fig4a(results),
        );
        emit(
            &opts.out_dir,
            "fig4b",
            "Figure 4b: ILR speed-up vs reuse latency (infinite window, averages)",
            &figures::fig4b(results),
        );
    }
    if wants(t, "fig5") {
        emit(
            &opts.out_dir,
            "fig5a",
            "Figure 5a: ILR speed-up, 256-entry window, 1-cycle reuse latency",
            &figures::fig5a(results),
        );
        emit(
            &opts.out_dir,
            "fig5b",
            "Figure 5b: ILR speed-up vs reuse latency (256-entry window, averages)",
            &figures::fig5b(results),
        );
    }
    if wants(t, "fig6") {
        emit(
            &opts.out_dir,
            "fig6a",
            "Figure 6a: TLR speed-up, infinite window, 1-cycle reuse latency",
            &figures::fig6a(results),
        );
        emit(
            &opts.out_dir,
            "fig6b",
            "Figure 6b: TLR speed-up, 256-entry window, 1-cycle reuse latency",
            &figures::fig6b(results),
        );
        if opts.charts {
            println!(
                "{}",
                figures::chart("TLR speed-up (W=256)", results, |r| r
                    .limit
                    .tlr_speedup_win(1))
            );
        }
    }
    if wants(t, "fig7") {
        emit(
            &opts.out_dir,
            "fig7",
            "Figure 7: average trace size (maximal reusable traces)",
            &figures::fig7(results),
        );
    }
    if wants(t, "fig8") {
        emit(
            &opts.out_dir,
            "fig8a",
            "Figure 8a: TLR speed-up vs constant reuse latency (W=256, averages)",
            &figures::fig8a(results),
        );
        emit(
            &opts.out_dir,
            "fig8b",
            "Figure 8b: TLR speed-up vs proportional latency K x (inputs+outputs) (W=256)",
            &figures::fig8b(results),
        );
    }
    if wants(t, "io") {
        emit(
            &opts.out_dir,
            "io",
            "Section 4.5: per-trace I/O and bandwidth per reused instruction",
            &figures::io_table(results),
        );
    }
    if wants(t, "ablation") {
        emit(
            &opts.out_dir,
            "ablation_slots",
            "Ablation: window slots per reused trace (TLR, W=256, 1-cycle latency)",
            &figures::ablation_slots(results),
        );
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            std::process::exit(2);
        }
    };
    let needs_limits = [
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "io", "ablation",
    ]
    .iter()
    .any(|t| wants(&opts.targets, t));
    let needs_engine = wants(&opts.targets, "fig9");

    println!(
        "trace-level reuse reproduction | budget {} instrs/benchmark, seed {}, window {}",
        tlr_util::group_digits(opts.cfg.budget),
        opts.cfg.seed,
        opts.cfg.window
    );
    println!();

    if needs_limits {
        let start = std::time::Instant::now();
        let results = run_limit_studies(&opts.cfg);
        eprintln!("[limit studies: {:?}]", start.elapsed());
        limit_figures(&opts, &results);
    }

    if wants(&opts.targets, "validbit") {
        let start = std::time::Instant::now();
        let table = figures::validbit_table(&opts.cfg);
        eprintln!("[valid-bit comparison: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "validbit",
            "Reuse-test comparison (Section 3.3): value comparison vs valid bit + invalidation",
            &table,
        );
    }

    if wants(&opts.targets, "schemes") {
        let start = std::time::Instant::now();
        let table = figures::schemes_table(&opts.cfg);
        eprintln!("[scheme comparison: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "schemes",
            "Instruction-reuse schemes (Section 2, Sodani & Sohi): Sv values vs Sn names",
            &table,
        );
    }

    if wants(&opts.targets, "pipeline") {
        let start = std::time::Instant::now();
        let table = figures::pipeline_ablation(&opts.cfg);
        eprintln!("[pipeline ablation: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "pipeline_ablation",
            "Pipeline ablation (Section 3 model): fetch-skip and window-bypass decomposition",
            &table,
        );
    }

    if wants(&opts.targets, "warmstart") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_warm_start(&opts.cfg, RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        eprintln!("[warm start: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "warmstart",
            "Warm start (ours): cold vs RTM-snapshot-seeded engine, % of instructions reused",
            &tlr_bench::warm_start_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_warm_start(&cells) {
                eprintln!("error: warm-start regression: {msg}");
                std::process::exit(1);
            }
            println!("warmstart check: ok");
        }
    }

    if wants(&opts.targets, "fleet") {
        let start = std::time::Instant::now();
        let cells = tlr_bench::run_fleet(&opts.cfg, RtmConfig::RTM_32K);
        eprintln!("[fleet: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "fleet",
            "Fleet pooling (ours): solo-warm vs merged-warm engine, % of instructions reused",
            &tlr_bench::fleet_table(&cells),
        );
        if opts.check {
            if let Err(msg) = tlr_bench::check_fleet(&cells) {
                eprintln!("error: fleet regression: {msg}");
                std::process::exit(1);
            }
            println!("fleet check: ok");
        }
    }

    if needs_engine {
        let start = std::time::Instant::now();
        let rtms = RtmConfig::PAPER_SWEEP;
        let heuristics = Heuristic::paper_sweep();
        let cells = run_engine_grid(&opts.cfg, &rtms, &heuristics);
        eprintln!("[engine grid: {:?}]", start.elapsed());
        emit(
            &opts.out_dir,
            "fig9a",
            "Figure 9a: % of dynamic instructions reused (finite RTM, average of 14 benchmarks)",
            &figures::fig9a(&cells, &rtms, &heuristics),
        );
        emit(
            &opts.out_dir,
            "fig9b",
            "Figure 9b: average reused-trace size (finite RTM, average of 14 benchmarks)",
            &figures::fig9b(&cells, &rtms, &heuristics),
        );
    }
}
