//! Cross-seed warm start via value-independent trace identity (ours,
//! enabled by the shape fingerprint in `tlr-persist` format v6).
//!
//! A program's *value* fingerprint ([`program_fingerprint`]) covers its
//! data image, so two runs of the same kernel under different data
//! seeds look like different programs to the snapshot layer. The
//! *shape* fingerprint ([`program_shape_fingerprint`]) strips the data
//! image: same code, different data ⇒ equal shapes. This module
//! measures what that buys — for every workload, N data seeds each run
//! cold and export; one subject seed then warm-starts three ways:
//!
//! * **cold** — empty RTM, the baseline;
//! * **solo-warm** — from its *own* cold export (the ceiling);
//! * **cross-warm** — from the merge of the *other* seeds' exports,
//!   resolved purely by shape, exactly as the registry's
//!   `get_by_shape` fallback would pool donors for an unknown
//!   fingerprint.
//!
//! Donor snapshots round-trip through the `tlr-persist` binary codec
//! under their own (donor) fingerprints, so the shape field's
//! serialization is exercised end to end, and the merge's shape
//! agreement rule stamps the pooled snapshot. Safety is asserted, not
//! assumed: every engine run's architectural state is compared against
//! plain execution of the same dynamic instruction count — a donor's
//! data-dependent traces must be rejected by the live-in value check
//! at reuse time, never replayed into the wrong state.

use crate::harness::{pool_run, HarnessConfig};
use crate::policy::state_digest;
use tlr_core::{EngineConfig, EngineStats, Heuristic, RtmConfig, RtmSnapshot, TraceReuseEngine};
use tlr_isa::NullSink;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_persist::{program_fingerprint, program_shape_fingerprint};
use tlr_stats::Table;
use tlr_vm::Vm;

/// Data seeds per workload: one subject plus the donors it pools.
pub const SEEDS: usize = 3;

/// Cross-seed outcome for one workload.
pub struct CrossSeedCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Shared shape fingerprint of all [`SEEDS`] variants.
    pub shape: u64,
    /// Subject seed's cold run (empty RTM).
    pub cold: EngineStats,
    /// Subject warm-started from its own cold export.
    pub solo_warm: EngineStats,
    /// Subject warm-started from the merged donor exports, resolved by
    /// shape alone.
    pub cross_warm: EngineStats,
    /// Traces in the merged donor pool.
    pub donor_traces: usize,
    /// Live-in value rejections during the cross-warm run — donor
    /// state probed at a matching PC but pinned to the wrong data.
    pub value_rejects: u64,
    /// The merged pool carried the subject's shape through the binary
    /// codec round-trip and the merge agreement rule.
    pub shape_preserved: bool,
    /// All three runs ended in exactly the architectural state plain
    /// execution of the same dynamic instruction count produces.
    pub digest_ok: bool,
}

/// Plain-VM digest after exactly `total` dynamic instructions.
fn baseline_digest(prog: &tlr_asm::Program, total: u64) -> u64 {
    let mut vm = Vm::new(prog);
    vm.run(total, &mut NullSink)
        .unwrap_or_else(|e| panic!("baseline vm error: {e}"));
    state_digest(&vm)
}

/// Run the cross-seed comparison over every workload, in parallel.
pub fn run_crossseed(
    cfg: &HarnessConfig,
    rtm: RtmConfig,
    heuristic: Heuristic,
) -> Vec<CrossSeedCell> {
    let workloads = tlr_workloads::all();
    let threads = cfg.effective_threads(workloads.len());
    pool_run(threads, workloads, |w| {
        let config = EngineConfig::paper(rtm, heuristic);
        let subject = w.program(cfg.seed);
        let shape = program_shape_fingerprint(&subject);

        // Donor seeds: same kernel, different data images. Each runs
        // cold, stamps its shape, and round-trips through the binary
        // codec under its *own* fingerprint, as published files would.
        let mut donors = Vec::with_capacity(SEEDS - 1);
        for k in 1..SEEDS as u64 {
            let prog = w.program(cfg.seed + k);
            let donor_shape = program_shape_fingerprint(&prog);
            assert_eq!(
                donor_shape, shape,
                "{}: seed {k} changed the program's shape",
                w.name
            );
            let mut engine = TraceReuseEngine::new(&prog, config);
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: donor engine error: {e}", w.name));
            let mut snap = engine
                .export_rtm()
                .expect("value-comparison backend snapshots");
            snap.shape = donor_shape;
            let fingerprint = program_fingerprint(&prog);
            let mut bytes = Vec::new();
            write_snapshot(&mut bytes, fingerprint, &snap)
                .unwrap_or_else(|e| panic!("{}: donor snapshot write error: {e}", w.name));
            let (_, loaded) = read_snapshot(&mut bytes.as_slice(), Some(fingerprint))
                .unwrap_or_else(|e| panic!("{}: donor snapshot read error: {e}", w.name));
            donors.push(loaded);
        }
        let merged = RtmSnapshot::merge(&donors)
            .unwrap_or_else(|e| panic!("{}: donor merge error: {e}", w.name));
        let shape_preserved = merged.shape == shape && donors.iter().all(|d| d.shape == shape);
        let donor_traces = merged.len();

        let run = |warm: Option<&RtmSnapshot>| -> (EngineStats, u64, bool) {
            let mut engine = match warm {
                Some(snapshot) => TraceReuseEngine::new_warm(&subject, config, snapshot),
                None => TraceReuseEngine::new(&subject, config),
            };
            let stats = engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: subject engine error: {e}", w.name));
            let ok = state_digest(engine.vm()) == baseline_digest(&subject, stats.total());
            (stats, engine.rtm().stats().value_rejects, ok)
        };

        let (cold, _, cold_ok) = run(None);
        let solo_snapshot = {
            let mut engine = TraceReuseEngine::new(&subject, config);
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: solo producer error: {e}", w.name));
            engine
                .export_rtm()
                .expect("value-comparison backend snapshots")
        };
        let (solo_warm, _, solo_ok) = run(Some(&solo_snapshot));
        let (cross_warm, value_rejects, cross_ok) = run(Some(&merged));

        CrossSeedCell {
            name: w.name,
            shape,
            cold,
            solo_warm,
            cross_warm,
            donor_traces,
            value_rejects,
            shape_preserved,
            digest_ok: cold_ok && solo_ok && cross_ok,
        }
    })
}

/// Table: per benchmark, cold vs solo-warm vs cross-warm
/// `pct_reused()`, the donor pool's size, and the cross-warm run's
/// live-in value rejections, with arithmetic means on the last row.
pub fn crossseed_table(cells: &[CrossSeedCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "cold %",
        "solo-warm %",
        "cross-warm %",
        "cross-cold",
        "donor traces",
        "value rejects",
        "state",
    ]);
    let (mut cold_sum, mut solo_sum, mut cross_sum) = (0.0, 0.0, 0.0);
    for cell in cells {
        let cold = cell.cold.pct_reused();
        let solo = cell.solo_warm.pct_reused();
        let cross = cell.cross_warm.pct_reused();
        cold_sum += cold;
        solo_sum += solo;
        cross_sum += cross;
        table.row(vec![
            cell.name.to_string(),
            format!("{cold:.1}"),
            format!("{solo:.1}"),
            format!("{cross:.1}"),
            format!("{:+.1}", cross - cold),
            cell.donor_traces.to_string(),
            cell.value_rejects.to_string(),
            if cell.digest_ok && cell.shape_preserved {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(vec![
            "mean".to_string(),
            format!("{:.1}", cold_sum / n),
            format!("{:.1}", solo_sum / n),
            format!("{:.1}", cross_sum / n),
            format!("{:+.1}", (cross_sum - cold_sum) / n),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// Per-cell slack for the cross-warm vs cold comparison, in percentage
/// points. Donor traces occupy RTM ways, so a cross-warm run's own
/// collection can lose a few replacement races a cold run wins; the
/// guarantee is safety per cell and profit in aggregate, not strict
/// per-cell dominance.
pub const CROSS_TOLERANCE_PCT: f64 = 1.0;

/// Regression gate for CI: every run must match plain execution's
/// architectural state, the shape must survive serialization and the
/// merge, no cell may reuse meaningfully less cross-warm than cold
/// (within [`CROSS_TOLERANCE_PCT`] of replacement noise), and across
/// the suite the donated state must be worth something (mean
/// cross-warm strictly above mean cold).
pub fn check_crossseed(cells: &[CrossSeedCell]) -> Result<(), String> {
    let (mut cold_sum, mut cross_sum) = (0.0, 0.0);
    for cell in cells {
        if !cell.digest_ok {
            return Err(format!(
                "{}: architectural state diverged from plain execution",
                cell.name
            ));
        }
        if !cell.shape_preserved {
            return Err(format!(
                "{}: shape fingerprint lost in round-trip or merge",
                cell.name
            ));
        }
        if cell.donor_traces == 0 {
            return Err(format!("{}: donor pool is empty", cell.name));
        }
        let (cold, cross) = (cell.cold.pct_reused(), cell.cross_warm.pct_reused());
        if cross < cold - CROSS_TOLERANCE_PCT {
            return Err(format!(
                "{}: cross-warm reuse {cross:.3}% below cold {cold:.3}% by more than \
                 the {CROSS_TOLERANCE_PCT} point replacement tolerance",
                cell.name
            ));
        }
        cold_sum += cold;
        cross_sum += cross;
    }
    if !cells.is_empty() && cross_sum <= cold_sum {
        return Err(format!(
            "cross-seed warm start bought nothing: mean cross-warm {:.3}% <= mean cold {:.3}%",
            cross_sum / cells.len() as f64,
            cold_sum / cells.len() as f64
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_seed_warm_start_is_safe_and_profitable() {
        let cfg = HarnessConfig {
            budget: 30_000,
            ..HarnessConfig::quick()
        };
        let cells = run_crossseed(&cfg, RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        assert_eq!(cells.len(), tlr_workloads::all().len());
        check_crossseed(&cells).unwrap();
        let table = crossseed_table(&cells);
        assert_eq!(table.len(), cells.len() + 1);
    }
}
