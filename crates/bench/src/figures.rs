//! Table/figure builders: one function per paper artifact.
//!
//! Every builder returns a [`Table`] whose rows follow the paper's figure
//! x-axes (FP suite, AVG_FP, INT suite, AVG_INT, AVERAGE) with a "paper"
//! column next to the measured one. Averaging follows §4.1: harmonic for
//! speed-ups, arithmetic for percentages and sizes.

use crate::harness::{BenchResult, EngineCell};
use tlr_core::{Heuristic, RtmConfig};
use tlr_stats::{arithmetic_mean, harmonic_mean, BarChart, Table};
use tlr_workloads::Suite;

fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

enum Mean {
    Arithmetic,
    Harmonic,
}

impl Mean {
    fn of(&self, values: &[f64]) -> f64 {
        match self {
            Mean::Arithmetic => arithmetic_mean(values).unwrap_or(0.0),
            Mean::Harmonic => harmonic_mean(values).unwrap_or(0.0),
        }
    }
}

/// Generic per-benchmark table with suite and overall averages.
fn per_benchmark_table(
    title_cols: Vec<&str>,
    results: &[BenchResult],
    value: impl Fn(&BenchResult) -> (f64, f64),
    mean: Mean,
    fmt: impl Fn(f64) -> String,
) -> Table {
    let mut table = Table::new(title_cols);
    let mut acc: Vec<(f64, f64)> = Vec::new();
    let mut all: Vec<(f64, f64)> = Vec::new();
    let flush_avg = |table: &mut Table, label: &str, acc: &mut Vec<(f64, f64)>| {
        let papers: Vec<f64> = acc.iter().map(|(p, _)| *p).collect();
        let measured: Vec<f64> = acc.iter().map(|(_, m)| *m).collect();
        table.row(vec![
            label.to_string(),
            fmt(mean.of(&papers)),
            fmt(mean.of(&measured)),
        ]);
        acc.clear();
    };
    let mut prev_suite = None;
    for r in results {
        if prev_suite == Some(Suite::Fp) && r.suite == Suite::Int {
            flush_avg(&mut table, "AVG_FP", &mut acc);
        }
        let (p, m) = value(r);
        table.row(vec![r.name.to_string(), fmt(p), fmt(m)]);
        acc.push((p, m));
        all.push((p, m));
        prev_suite = Some(r.suite);
    }
    flush_avg(&mut table, "AVG_INT", &mut acc);
    let mut all_v = all;
    flush_avg(&mut table, "AVERAGE", &mut all_v);
    table
}

/// ASCII chart companion for a per-benchmark metric.
pub fn chart(title: &str, results: &[BenchResult], value: impl Fn(&BenchResult) -> f64) -> String {
    let mut c = BarChart::new(title);
    for r in results {
        c.bar(r.name, value(r));
    }
    c.render()
}

/// Figure 3: instruction-level reusability (%), perfect engine.
pub fn fig3(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper %", "measured %"],
        results,
        |r| (r.paper.reusability_pct, r.limit.reusability_pct),
        Mean::Arithmetic,
        fmt1,
    )
}

/// Figure 4a: ILR speed-up, infinite window, 1-cycle reuse latency.
pub fn fig4a(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper", "measured"],
        results,
        |r| (r.paper.ilr_speedup_inf, r.limit.ilr_speedup_inf(1)),
        Mean::Harmonic,
        fmt2,
    )
}

/// Figure 4b: average ILR speed-up vs reuse latency, infinite window.
pub fn fig4b(results: &[BenchResult]) -> Table {
    latency_sweep_table(results, |r, lat| r.limit.ilr_speedup_inf(lat))
}

/// Figure 5a: ILR speed-up, W-entry window, 1-cycle reuse latency.
pub fn fig5a(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper", "measured"],
        results,
        |r| (r.paper.ilr_speedup_w256, r.limit.ilr_speedup_win(1)),
        Mean::Harmonic,
        fmt2,
    )
}

/// Figure 5b: average ILR speed-up vs reuse latency, W-entry window.
pub fn fig5b(results: &[BenchResult]) -> Table {
    latency_sweep_table(results, |r, lat| r.limit.ilr_speedup_win(lat))
}

fn latency_sweep_table(
    results: &[BenchResult],
    speedup: impl Fn(&BenchResult, u64) -> f64,
) -> Table {
    let mut table = Table::new(vec!["reuse latency", "AVG speed-up (harmonic)"]);
    for lat in [1u64, 2, 3, 4] {
        let values: Vec<f64> = results.iter().map(|r| speedup(r, lat)).collect();
        table.row(vec![
            lat.to_string(),
            fmt2(harmonic_mean(&values).unwrap_or(0.0)),
        ]);
    }
    table
}

/// Figure 6a: TLR speed-up, infinite window, 1-cycle latency.
pub fn fig6a(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper", "measured"],
        results,
        |r| (r.paper.tlr_speedup_inf, r.limit.tlr_speedup_inf(1)),
        Mean::Harmonic,
        fmt2,
    )
}

/// Figure 6b: TLR speed-up, W-entry window, 1-cycle latency.
pub fn fig6b(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper", "measured"],
        results,
        |r| (r.paper.tlr_speedup_w256, r.limit.tlr_speedup_win(1)),
        Mean::Harmonic,
        fmt2,
    )
}

/// Figure 7: average (maximal reusable) trace size.
pub fn fig7(results: &[BenchResult]) -> Table {
    per_benchmark_table(
        vec!["benchmark", "paper", "measured"],
        results,
        |r| (r.paper.trace_size, r.limit.trace_stats.avg_size()),
        Mean::Arithmetic,
        fmt1,
    )
}

/// Figure 8a: average TLR speed-up vs constant reuse latency, W window.
pub fn fig8a(results: &[BenchResult]) -> Table {
    let mut table = Table::new(vec!["reuse latency", "AVG speed-up (harmonic)"]);
    for lat in [1u64, 2, 3, 4] {
        let values: Vec<f64> = results
            .iter()
            .map(|r| r.limit.tlr_speedup_win(lat))
            .collect();
        table.row(vec![
            lat.to_string(),
            fmt2(harmonic_mean(&values).unwrap_or(0.0)),
        ]);
    }
    table
}

/// Figure 8b: average TLR speed-up vs proportional latency K, W window.
pub fn fig8b(results: &[BenchResult]) -> Table {
    let mut table = Table::new(vec!["K", "AVG speed-up (harmonic)"]);
    for (label, k) in [
        ("1/32", 1.0 / 32.0),
        ("1/16", 1.0 / 16.0),
        ("1/8", 1.0 / 8.0),
        ("1/4", 1.0 / 4.0),
        ("1/2", 1.0 / 2.0),
        ("1", 1.0),
    ] {
        let values: Vec<f64> = results.iter().map(|r| r.limit.tlr_speedup_k(k)).collect();
        table.row(vec![
            label.to_string(),
            fmt2(harmonic_mean(&values).unwrap_or(0.0)),
        ]);
    }
    table
}

/// §4.5 text: per-trace I/O and per-reused-instruction bandwidth.
pub fn io_table(results: &[BenchResult]) -> Table {
    let avg = |f: &dyn Fn(&BenchResult) -> f64| {
        arithmetic_mean(&results.iter().map(f).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    let mut table = Table::new(vec!["metric", "paper", "measured"]);
    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "inputs / trace",
            6.5,
            avg(&|r| r.limit.trace_stats.avg_inputs()),
        ),
        (
            "  register inputs",
            2.7,
            avg(&|r| {
                let ts = &r.limit.trace_stats;
                if ts.traces == 0 {
                    0.0
                } else {
                    ts.reg_ins as f64 / ts.traces as f64
                }
            }),
        ),
        (
            "  memory inputs",
            3.8,
            avg(&|r| {
                let ts = &r.limit.trace_stats;
                if ts.traces == 0 {
                    0.0
                } else {
                    ts.mem_ins as f64 / ts.traces as f64
                }
            }),
        ),
        (
            "outputs / trace",
            5.0,
            avg(&|r| r.limit.trace_stats.avg_outputs()),
        ),
        (
            "  register outputs",
            3.3,
            avg(&|r| {
                let ts = &r.limit.trace_stats;
                if ts.traces == 0 {
                    0.0
                } else {
                    ts.reg_outs as f64 / ts.traces as f64
                }
            }),
        ),
        (
            "  memory outputs",
            1.7,
            avg(&|r| {
                let ts = &r.limit.trace_stats;
                if ts.traces == 0 {
                    0.0
                } else {
                    ts.mem_outs as f64 / ts.traces as f64
                }
            }),
        ),
        (
            "instructions / trace",
            15.0,
            avg(&|r| r.limit.trace_stats.avg_size()),
        ),
        (
            "reads / reused instr",
            0.43,
            avg(&|r| r.limit.trace_stats.reads_per_reused_instr()),
        ),
        (
            "writes / reused instr",
            0.33,
            avg(&|r| r.limit.trace_stats.writes_per_reused_instr()),
        ),
    ];
    for (name, paper, measured) in rows {
        table.row(vec![name.to_string(), fmt2(paper), fmt2(measured)]);
    }
    table
}

/// Ablation (ours): window accounting for a reused trace — 0 slots
/// (ideal bypass) vs 1 slot (the paper's precise-exception reuse op).
pub fn ablation_slots(results: &[BenchResult]) -> Table {
    let mut table = Table::new(vec!["benchmark", "1 slot", "0 slots"]);
    for r in results {
        table.row(vec![
            r.name.to_string(),
            fmt2(r.limit.tlr_speedup_win(1)),
            fmt2(r.limit.tlr_speedup_slots0()),
        ]);
    }
    let one: Vec<f64> = results.iter().map(|r| r.limit.tlr_speedup_win(1)).collect();
    let zero: Vec<f64> = results
        .iter()
        .map(|r| r.limit.tlr_speedup_slots0())
        .collect();
    table.row(vec![
        "AVERAGE".to_string(),
        fmt2(harmonic_mean(&one).unwrap_or(0.0)),
        fmt2(harmonic_mean(&zero).unwrap_or(0.0)),
    ]);
    table
}

/// Figure 9a: % of dynamic instructions reused, per heuristic × RTM size
/// (arithmetic average over the 14 benchmarks, as in the paper).
pub fn fig9a(cells: &[EngineCell], rtms: &[RtmConfig], heuristics: &[Heuristic]) -> Table {
    fig9_grid(cells, rtms, heuristics, |s| s.pct_reused(), fmt1)
}

/// Figure 9b: average reused-trace size, per heuristic × RTM size.
pub fn fig9b(cells: &[EngineCell], rtms: &[RtmConfig], heuristics: &[Heuristic]) -> Table {
    fig9_grid(cells, rtms, heuristics, |s| s.avg_reused_trace_size(), fmt2)
}

/// Pipeline-level ablation (ours): per benchmark, IPC under the §3
/// pipeline with reuse fully on, with fetch-skip disabled, and with
/// 0-slot traces, next to the no-reuse baseline.
pub fn pipeline_ablation(cfg: &crate::harness::HarnessConfig) -> Table {
    use tlr_core::Heuristic;
    let mut table = Table::new(vec![
        "benchmark",
        "base IPC",
        "reuse IPC",
        "no-fetch-skip IPC",
        "0-slot IPC",
        "fetch saved %",
    ]);
    for w in tlr_workloads::all() {
        let prog = w.program(cfg.seed);
        let rows = tlr_pipeline::run_ablation(
            &prog,
            RtmConfig::RTM_4K,
            Heuristic::FixedExp(4),
            cfg.budget,
        )
        .unwrap_or_else(|e| panic!("{}: pipeline error: {e}", w.name));
        let ipc = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .map(|r| r.stats.ipc())
                .unwrap_or(0.0)
        };
        let saving = rows
            .iter()
            .find(|r| r.label == "reuse (fetch-skip, 1 slot)")
            .map(|r| 100.0 * r.stats.fetch_saving())
            .unwrap_or(0.0);
        table.row(vec![
            w.name.to_string(),
            fmt2(ipc("no reuse")),
            fmt2(ipc("reuse (fetch-skip, 1 slot)")),
            fmt2(ipc("reuse, no fetch-skip")),
            fmt2(ipc("reuse, 0-slot traces")),
            fmt1(saving),
        ]);
    }
    table
}

/// §3.3 reuse-test comparison (ours): value-comparison RTM vs valid-bit
/// RTM with invalidation, same geometry and heuristic.
pub fn validbit_table(cfg: &crate::harness::HarnessConfig) -> Table {
    use tlr_core::{EngineConfig, Heuristic};
    let mut table = Table::new(vec![
        "benchmark",
        "value-compare %",
        "valid-bit %",
        "vb avg trace",
    ]);
    let mut vals: Vec<(f64, f64)> = Vec::new();
    for w in tlr_workloads::all() {
        let prog = w.program(cfg.seed);
        let base = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let value = tlr_core::run_engine(&prog, base, cfg.budget)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let vb = tlr_core::run_engine(&prog, base.with_valid_bit(), cfg.budget)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        vals.push((value.pct_reused(), vb.pct_reused()));
        table.row(vec![
            w.name.to_string(),
            fmt1(value.pct_reused()),
            fmt1(vb.pct_reused()),
            fmt2(vb.avg_reused_trace_size()),
        ]);
    }
    let (v, b): (Vec<f64>, Vec<f64>) = vals.into_iter().unzip();
    table.row(vec![
        "AVERAGE".to_string(),
        fmt1(arithmetic_mean(&v).unwrap_or(0.0)),
        fmt1(arithmetic_mean(&b).unwrap_or(0.0)),
        String::new(),
    ]);
    table
}

/// §2 instruction-reuse scheme comparison (Sodani & Sohi): Sv (operand
/// values) vs Sn (operand names + valid bit), same capacity.
pub fn schemes_table(cfg: &crate::harness::HarnessConfig) -> Table {
    use tlr_core::{compare_schemes, SetAssocGeometry};
    use tlr_isa::{DynInstr, StreamSink};
    let geometry = SetAssocGeometry {
        sets: 256,
        ways: 8,
        per_pc: 16,
    };
    struct Sink {
        records: Vec<DynInstr>,
    }
    impl StreamSink for Sink {
        fn observe(&mut self, d: &DynInstr) {
            self.records.push(d.clone());
        }
    }
    let mut table = Table::new(vec!["benchmark", "Sv %", "Sn %"]);
    let mut vals: Vec<(f64, f64)> = Vec::new();
    for w in tlr_workloads::all() {
        let prog = w.program(cfg.seed);
        let mut vm = tlr_vm::Vm::new(&prog);
        let mut sink = Sink {
            records: Vec::with_capacity(cfg.budget as usize),
        };
        vm.run(cfg.budget, &mut sink)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let cmp = compare_schemes(sink.records.iter(), geometry);
        vals.push((cmp.sv_pct, cmp.sn_pct));
        table.row(vec![w.name.to_string(), fmt1(cmp.sv_pct), fmt1(cmp.sn_pct)]);
    }
    let (sv, sn): (Vec<f64>, Vec<f64>) = vals.into_iter().unzip();
    table.row(vec![
        "AVERAGE".to_string(),
        fmt1(arithmetic_mean(&sv).unwrap_or(0.0)),
        fmt1(arithmetic_mean(&sn).unwrap_or(0.0)),
    ]);
    table
}

fn fig9_grid(
    cells: &[EngineCell],
    rtms: &[RtmConfig],
    heuristics: &[Heuristic],
    metric: impl Fn(&tlr_core::EngineStats) -> f64,
    fmt: impl Fn(f64) -> String,
) -> Table {
    let mut headers = vec!["heuristic".to_string()];
    headers.extend(rtms.iter().map(|r| format!("{} traces", r.label())));
    let mut table = Table::new(headers);
    for &h in heuristics {
        let mut row = vec![h.label()];
        for &rtm in rtms {
            let values: Vec<f64> = cells
                .iter()
                .filter(|c| c.rtm == rtm && c.heuristic == h)
                .map(|c| metric(&c.stats))
                .collect();
            row.push(fmt(arithmetic_mean(&values).unwrap_or(0.0)));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_engine_grid, run_limit_studies, HarnessConfig};

    fn tiny_results() -> Vec<BenchResult> {
        run_limit_studies(&HarnessConfig {
            budget: 6_000,
            ..HarnessConfig::default()
        })
    }

    #[test]
    fn per_benchmark_tables_have_expected_rows() {
        let results = tiny_results();
        let t = fig3(&results);
        // 14 benchmarks + AVG_FP + AVG_INT + AVERAGE.
        assert_eq!(t.len(), 17);
        let text = t.to_text();
        assert!(text.contains("AVG_FP"));
        assert!(text.contains("AVG_INT"));
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("hydro2d"));
        for builder in [fig4a, fig5a, fig6a, fig6b, fig7] {
            assert_eq!(builder(&results).len(), 17);
        }
        for builder in [fig4b, fig5b, fig8a] {
            assert_eq!(builder(&results).len(), 4);
        }
        assert_eq!(fig8b(&results).len(), 6);
        assert_eq!(io_table(&results).len(), 9);
        assert_eq!(ablation_slots(&results).len(), 15);
    }

    #[test]
    fn fig9_grid_rows_and_cols() {
        let cfg = HarnessConfig {
            budget: 4_000,
            ..HarnessConfig::default()
        };
        let rtms = [RtmConfig::RTM_512, RtmConfig::RTM_4K];
        let heuristics = [Heuristic::IlrNe, Heuristic::FixedExp(2)];
        let cells = run_engine_grid(&cfg, &rtms, &heuristics);
        let t = fig9a(&cells, &rtms, &heuristics);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(text.contains("512 traces"));
        assert!(text.contains("4K traces"));
        assert!(text.contains("ILR NE"));
        assert!(text.contains("I2 EXP"));
    }
}
