//! Raw simulation throughput: reference interpreter vs predecoded fast
//! path, at both the VM and the reuse-engine layer (ours).
//!
//! Every other `reproduce` target measures *what* trace-level reuse
//! saves; this one measures how fast the simulator itself goes, because
//! the limit studies and RTM sweeps are bounded by simulator throughput,
//! not by analysis. Four configurations are timed per workload over the
//! same dynamic instruction budget:
//!
//! 1. **vm-ref** — the observing interpreter ([`Vm::run`] with a
//!    [`NullSink`]): materializes a full `DynInstr` with read/write
//!    records per step, the substrate the limit studies consume.
//! 2. **vm-fast** — the predecoded fast path ([`Vm::run_fast`]): flat
//!    dispatch over the predecode table, no records.
//! 3. **engine-ref** — [`TraceReuseEngine`], the reference reuse engine
//!    behind Figure 9.
//! 4. **engine-fast** — [`ThroughputEngine`], the same reuse semantics
//!    on the fast substrate with straight-line trace blocks, plus a
//!    fifth **serve** column: a warm serving-only instance
//!    ([`ThroughputEngine::without_collection`]), the fleet steady state.
//!
//! Speed is reported in MIPS (millions of dynamic instructions per
//! wall-clock second). Fast and reference members of each pair must end
//! in the same architectural state — digests (and, for the engine pair,
//! executed/skipped/reuse-op counts) are compared on every row and
//! gated hard by `--check`; speedups are gated on the suite mean so a
//! single noisy CI row cannot flip the verdict.
//!
//! A second table exercises [`BatchRunner`]: the whole workload suite as
//! one in-process batch under each schedule, reporting aggregate MIPS.

use std::time::Instant;

use crate::batch::{BatchRunner, BatchSpec, Schedule};
use crate::harness::HarnessConfig;
use tlr_core::{
    EngineConfig, EngineStats, Heuristic, RtmConfig, ThroughputEngine, TraceReuseEngine,
};
use tlr_isa::NullSink;
use tlr_stats::Table;
use tlr_vm::Vm;

/// Collection heuristic used for every timed engine configuration.
pub const THROUGHPUT_HEURISTIC: Heuristic = Heuristic::FixedExp(4);

/// Round-robin quantum (dynamic instructions per turn) for the batched
/// suite row.
pub const BATCH_QUANTUM: u64 = 4_096;

/// One workload's timed comparison.
pub struct ThroughputCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Observing interpreter MIPS.
    pub vm_ref_mips: f64,
    /// Predecoded fast-path MIPS.
    pub vm_fast_mips: f64,
    /// Reference reuse-engine MIPS.
    pub eng_ref_mips: f64,
    /// Throughput (fast) reuse-engine MIPS.
    pub eng_fast_mips: f64,
    /// Warm serving-only throughput-engine MIPS.
    pub serve_mips: f64,
    /// Dynamic instructions executed by each VM run.
    pub vm_instrs: u64,
    /// Dynamic progress (executed + skipped) of each engine run.
    pub eng_total: u64,
    /// `pct_reused()` of the fast engine run.
    pub pct_reused: f64,
    /// Fast and reference ended in identical architectural state, at
    /// both the VM pair and the engine pair.
    pub digest_ok: bool,
    /// Engine pair agreed on executed / skipped / reuse-op counts.
    pub counts_ok: bool,
}

impl ThroughputCell {
    /// vm-fast over vm-ref.
    pub fn vm_speedup(&self) -> f64 {
        self.vm_fast_mips / self.vm_ref_mips
    }

    /// engine-fast over engine-ref.
    pub fn engine_speedup(&self) -> f64 {
        self.eng_fast_mips / self.eng_ref_mips
    }
}

/// One batched-suite timing row.
pub struct BatchCell {
    /// Schedule label.
    pub schedule: &'static str,
    /// Instances in the batch (one per workload).
    pub instances: usize,
    /// Aggregate dynamic instructions across the batch.
    pub total: u64,
    /// Aggregate MIPS (total dynamic instructions / wall-clock).
    pub mips: f64,
    /// Every instance reproduced its solo digest.
    pub digest_ok: bool,
}

fn mips(instrs: u64, secs: f64) -> f64 {
    instrs as f64 / secs.max(1e-9) / 1e6
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn engine_counts(stats: &EngineStats) -> (u64, u64, u64) {
    (stats.executed, stats.skipped, stats.reuse_ops)
}

/// Time the four configurations (plus warm serving) on every workload,
/// serially — timing runs share nothing so wall-clock stays honest.
pub fn run_throughput(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<ThroughputCell> {
    let config = EngineConfig::paper(rtm, THROUGHPUT_HEURISTIC);
    tlr_workloads::all()
        .iter()
        .map(|w| {
            let prog = w.program(cfg.seed);

            let (vm_ref, ref_secs) = timed(|| {
                let mut vm = Vm::new(&prog);
                vm.run(cfg.budget, &mut NullSink)
                    .unwrap_or_else(|e| panic!("{}: vm-ref error: {e}", w.name));
                vm
            });
            let (vm_fast, fast_secs) = timed(|| {
                let mut vm = Vm::new(&prog);
                vm.run_fast(cfg.budget)
                    .unwrap_or_else(|e| panic!("{}: vm-fast error: {e}", w.name));
                vm
            });
            let vm_digest_ok = vm_ref.state_digest() == vm_fast.state_digest()
                && vm_ref.executed() == vm_fast.executed();

            let (eng_ref, eng_ref_secs) = timed(|| {
                let mut engine = TraceReuseEngine::new(&prog, config);
                engine
                    .run(cfg.budget)
                    .unwrap_or_else(|e| panic!("{}: engine-ref error: {e}", w.name));
                engine
            });
            let (eng_fast, eng_fast_secs) = timed(|| {
                let mut engine = ThroughputEngine::new(&prog, config);
                engine
                    .run(cfg.budget)
                    .unwrap_or_else(|e| panic!("{}: engine-fast error: {e}", w.name));
                engine
            });
            let ref_stats = eng_ref.stats();
            let fast_stats = eng_fast.stats();
            let counts_ok = engine_counts(&ref_stats) == engine_counts(&fast_stats);
            let eng_digest_ok = eng_ref.vm().state_digest() == eng_fast.vm().state_digest();

            // Fleet steady state: a fresh instance serving the fast
            // run's traces without collecting anything new.
            let snapshot = eng_fast.export_rtm();
            let (serve, serve_secs) = timed(|| {
                let mut engine =
                    ThroughputEngine::new_warm(&prog, config, &snapshot).without_collection();
                engine
                    .run(cfg.budget)
                    .unwrap_or_else(|e| panic!("{}: engine-serve error: {e}", w.name));
                engine
            });

            ThroughputCell {
                name: w.name,
                vm_ref_mips: mips(vm_ref.executed(), ref_secs),
                vm_fast_mips: mips(vm_fast.executed(), fast_secs),
                eng_ref_mips: mips(ref_stats.total(), eng_ref_secs),
                eng_fast_mips: mips(fast_stats.total(), eng_fast_secs),
                serve_mips: mips(serve.stats().total(), serve_secs),
                vm_instrs: vm_ref.executed(),
                eng_total: fast_stats.total(),
                pct_reused: fast_stats.pct_reused(),
                digest_ok: vm_digest_ok && eng_digest_ok,
                counts_ok,
            }
        })
        .collect()
}

/// Run the whole suite as one in-process batch per schedule and time the
/// aggregate; each instance's digest is checked against a solo run.
pub fn run_batch_bench(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<BatchCell> {
    let config = EngineConfig::paper(rtm, THROUGHPUT_HEURISTIC);
    let solo_digests: Vec<u64> = tlr_workloads::all()
        .iter()
        .map(|w| {
            let prog = w.program(cfg.seed);
            let mut engine = ThroughputEngine::new(&prog, config);
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{}: solo error: {e}", w.name));
            engine.vm().state_digest()
        })
        .collect();

    let schedules = [
        ("run-to-completion", Schedule::RunToCompletion),
        (
            "round-robin",
            Schedule::RoundRobin {
                quantum: BATCH_QUANTUM,
            },
        ),
    ];
    schedules
        .iter()
        .map(|&(label, schedule)| {
            let mut runner = BatchRunner::new(schedule);
            for w in tlr_workloads::all() {
                runner.push(BatchSpec::new(
                    w.name,
                    w.program(cfg.seed),
                    config,
                    cfg.budget,
                ));
            }
            let instances = runner.len();
            let (outcomes, secs) = timed(|| {
                runner
                    .run()
                    .unwrap_or_else(|e| panic!("batch [{label}]: {e}"))
            });
            let total: u64 = outcomes.iter().map(|o| o.stats.total()).sum();
            let digest_ok = outcomes
                .iter()
                .zip(&solo_digests)
                .all(|(o, &d)| o.digest == d);
            BatchCell {
                schedule: label,
                instances,
                total,
                mips: mips(total, secs),
                digest_ok,
            }
        })
        .collect()
}

/// Table: per benchmark, MIPS of every configuration with pair speedups
/// and the equality verdict; suite means on the last row.
pub fn throughput_table(cells: &[ThroughputCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "vm-ref MIPS",
        "vm-fast MIPS",
        "vm x",
        "eng-ref MIPS",
        "eng-fast MIPS",
        "eng x",
        "serve MIPS",
        "reused %",
        "state",
    ]);
    for cell in cells {
        table.row(vec![
            cell.name.to_string(),
            format!("{:.2}", cell.vm_ref_mips),
            format!("{:.2}", cell.vm_fast_mips),
            format!("{:.2}", cell.vm_speedup()),
            format!("{:.2}", cell.eng_ref_mips),
            format!("{:.2}", cell.eng_fast_mips),
            format!("{:.2}", cell.engine_speedup()),
            format!("{:.2}", cell.serve_mips),
            format!("{:.1}", cell.pct_reused),
            if cell.digest_ok && cell.counts_ok {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        let mean = |f: &dyn Fn(&ThroughputCell) -> f64| cells.iter().map(f).sum::<f64>() / n;
        table.row(vec![
            "mean".to_string(),
            format!("{:.2}", mean(&|c| c.vm_ref_mips)),
            format!("{:.2}", mean(&|c| c.vm_fast_mips)),
            format!("{:.2}", mean(&|c| c.vm_speedup())),
            format!("{:.2}", mean(&|c| c.eng_ref_mips)),
            format!("{:.2}", mean(&|c| c.eng_fast_mips)),
            format!("{:.2}", mean(&|c| c.engine_speedup())),
            format!("{:.2}", mean(&|c| c.serve_mips)),
            format!("{:.1}", mean(&|c| c.pct_reused)),
            String::new(),
        ]);
    }
    table
}

/// Table: the batched-suite rows.
pub fn batch_table(cells: &[BatchCell]) -> Table {
    let mut table = Table::new(vec![
        "schedule",
        "instances",
        "total instrs",
        "agg MIPS",
        "state",
    ]);
    for cell in cells {
        table.row(vec![
            cell.schedule.to_string(),
            cell.instances.to_string(),
            cell.total.to_string(),
            format!("{:.2}", cell.mips),
            if cell.digest_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    table
}

/// Regression gate for CI.
///
/// Hard invariants: every fast/reference pair must agree on final
/// architectural state and (for the engine pair) on reuse decisions,
/// and every batched instance must reproduce its solo digest.
///
/// Timing is gated only on suite **means**, so one preempted CI row
/// cannot flip the verdict, and each gate matches what its layer
/// actually claims:
///
/// * predecode — the fast interpreter must average at least 2× the
///   observing one (measured ~10×);
/// * trace blocks — the warm serving-only engine must average at least
///   the reference engine's speed (measured ~8×);
/// * the *collecting* fast engine is observer-bound — every executed
///   instruction still materializes a `DynInstr` for the collector, in
///   both engines — so it is held to near-parity (≥ 0.8× mean), a
///   guard against gross regressions rather than a speedup claim.
pub fn check_throughput(cells: &[ThroughputCell], batch: &[BatchCell]) -> Result<(), String> {
    for cell in cells {
        if !cell.digest_ok {
            return Err(format!(
                "{}: fast path diverged from reference architectural state",
                cell.name
            ));
        }
        if !cell.counts_ok {
            return Err(format!(
                "{}: fast engine disagreed with reference on reuse decisions",
                cell.name
            ));
        }
    }
    for cell in batch {
        if !cell.digest_ok {
            return Err(format!(
                "batch [{}]: an instance diverged from its solo digest",
                cell.schedule
            ));
        }
    }
    if cells.is_empty() {
        return Err("throughput produced no rows".to_string());
    }
    let n = cells.len() as f64;
    let vm_mean = cells.iter().map(ThroughputCell::vm_speedup).sum::<f64>() / n;
    let eng_mean = cells
        .iter()
        .map(ThroughputCell::engine_speedup)
        .sum::<f64>()
        / n;
    let serve_mean = cells.iter().map(|c| c.serve_mips).sum::<f64>() / n;
    let eng_ref_mean = cells.iter().map(|c| c.eng_ref_mips).sum::<f64>() / n;
    if vm_mean < 2.0 {
        return Err(format!(
            "predecoded fast path below 2x the observing interpreter on average ({vm_mean:.2}x)"
        ));
    }
    if serve_mean < eng_ref_mean {
        return Err(format!(
            "warm serving engine ({serve_mean:.2} MIPS) slower than the reference engine \
             ({eng_ref_mean:.2} MIPS) on average"
        ));
    }
    if eng_mean < 0.8 {
        return Err(format!(
            "collecting throughput engine fell well below reference parity ({eng_mean:.2}x mean)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rows_agree_on_state_and_counts() {
        let cfg = HarnessConfig {
            budget: 20_000,
            ..HarnessConfig::quick()
        };
        let cells = run_throughput(&cfg, RtmConfig::RTM_4K);
        assert_eq!(cells.len(), tlr_workloads::all().len());
        for cell in &cells {
            assert!(cell.digest_ok, "{}: digest mismatch", cell.name);
            assert!(cell.counts_ok, "{}: count mismatch", cell.name);
            assert!(cell.vm_instrs > 0 && cell.eng_total > 0, "{}", cell.name);
        }
        let table = throughput_table(&cells);
        assert_eq!(table.len(), cells.len() + 1);
    }

    #[test]
    fn batched_suite_reproduces_solo_digests() {
        let cfg = HarnessConfig {
            budget: 15_000,
            ..HarnessConfig::quick()
        };
        let batch = run_batch_bench(&cfg, RtmConfig::RTM_4K);
        assert_eq!(batch.len(), 2);
        for cell in &batch {
            assert!(cell.digest_ok, "{}: digest mismatch", cell.schedule);
            assert_eq!(cell.instances, tlr_workloads::all().len());
        }
        assert_eq!(batch_table(&batch).len(), 2);
    }
}
