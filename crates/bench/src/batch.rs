//! In-process batched simulator execution.
//!
//! The fleet and daemon experiments originally modelled "many serving
//! instances" as a process (or thread) per instance, each paying its own
//! program load and cold caches. [`BatchRunner`] replaces that shape for
//! measurement workloads: many [`tlr_core::ThroughputEngine`] instances
//! live in one process, share one warm snapshot registry, and are driven
//! to completion by a single scheduler loop — either one instance at a
//! time ([`Schedule::RunToCompletion`]) or interleaved in fixed quanta
//! ([`Schedule::RoundRobin`]), the two classic multiprogramming shapes.
//! Because every engine runs on the predecoded fast substrate, a whole
//! fleet's dynamic work becomes one tight loop per process.

use tlr_asm::Program;
use tlr_core::{EngineConfig, EngineStats, RtmSnapshot, ThroughputEngine};
use tlr_vm::ExecMode;

/// How the runner interleaves its instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Drive each instance to halt (or budget) before starting the next.
    RunToCompletion,
    /// Cycle through live instances, granting each `quantum` dynamic
    /// instructions per turn — the fairness shape of a time-shared fleet.
    RoundRobin {
        /// Dynamic instructions (executed + skipped) per turn.
        quantum: u64,
    },
}

/// One simulator instance to batch.
pub struct BatchSpec {
    /// Display name (workload, client id, ...).
    pub name: String,
    /// Program to run.
    pub program: Program,
    /// Engine configuration (value-comparison reuse test only).
    pub config: EngineConfig,
    /// Dynamic instruction budget (executed + skipped).
    pub budget: u64,
    /// Warm-start snapshot; `None` starts cold.
    pub warm: Option<RtmSnapshot>,
    /// Collect new traces? `false` builds a serving-only engine
    /// ([`ThroughputEngine::without_collection`]).
    pub collect: bool,
    /// Execution mode for the instance.
    pub mode: ExecMode,
}

impl BatchSpec {
    /// A cold, collecting, fast-mode instance — the common case.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        config: EngineConfig,
        budget: u64,
    ) -> Self {
        Self {
            name: name.into(),
            program,
            config,
            budget,
            warm: None,
            collect: true,
            mode: ExecMode::Fast,
        }
    }

    /// Warm-start from `snapshot`.
    pub fn with_warm(mut self, snapshot: RtmSnapshot) -> Self {
        self.warm = Some(snapshot);
        self
    }

    /// Serving-only: never collect new traces.
    pub fn serving_only(mut self) -> Self {
        self.collect = false;
        self
    }

    /// Run in the given mode instead of [`ExecMode::Fast`].
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }
}

/// What one batched instance produced.
pub struct BatchOutcome {
    /// The spec's name.
    pub name: String,
    /// Final engine statistics.
    pub stats: EngineStats,
    /// Final architectural-state digest ([`tlr_vm::Vm::state_digest`]).
    pub digest: u64,
    /// The instance's final RTM contents (for registry pooling).
    pub snapshot: RtmSnapshot,
}

/// Executes many simulator instances in one process under one scheduler.
pub struct BatchRunner {
    schedule: Schedule,
    specs: Vec<BatchSpec>,
}

impl BatchRunner {
    /// An empty runner with the given schedule.
    pub fn new(schedule: Schedule) -> Self {
        Self {
            schedule,
            specs: Vec::new(),
        }
    }

    /// Queue an instance.
    pub fn push(&mut self, spec: BatchSpec) {
        self.specs.push(spec);
    }

    /// Queued instances.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Run every instance to halt or budget, returning outcomes in push
    /// order. Errors carry the failing instance's name.
    pub fn run(self) -> Result<Vec<BatchOutcome>, String> {
        let Self { schedule, specs } = self;
        let mut engines: Vec<(String, u64, ThroughputEngine)> = specs
            .into_iter()
            .map(|spec| {
                let mut engine = match &spec.warm {
                    Some(snapshot) => {
                        ThroughputEngine::new_warm(&spec.program, spec.config, snapshot)
                    }
                    None => ThroughputEngine::new(&spec.program, spec.config),
                }
                .with_mode(spec.mode);
                if !spec.collect {
                    engine = engine.without_collection();
                }
                (spec.name, spec.budget, engine)
            })
            .collect();

        match schedule {
            Schedule::RunToCompletion => {
                for (name, budget, engine) in engines.iter_mut() {
                    engine
                        .run(*budget)
                        .map_err(|e| format!("{name}: engine error: {e}"))?;
                }
            }
            Schedule::RoundRobin { quantum } => {
                let quantum = quantum.max(1);
                let mut live = true;
                while live {
                    live = false;
                    for (name, budget, engine) in engines.iter_mut() {
                        let stats = engine.stats();
                        if stats.halted || stats.total() >= *budget {
                            continue;
                        }
                        let target = stats.total().saturating_add(quantum).min(*budget);
                        engine
                            .run(target)
                            .map_err(|e| format!("{name}: engine error: {e}"))?;
                        live = true;
                    }
                }
            }
        }

        Ok(engines
            .into_iter()
            .map(|(name, _, engine)| BatchOutcome {
                name,
                digest: engine.vm().state_digest(),
                snapshot: engine.export_rtm(),
                stats: engine.stats(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::{Heuristic, RtmConfig};

    fn spec(name: &str, seed: u64, budget: u64) -> BatchSpec {
        let w = tlr_workloads::by_name(name).unwrap();
        BatchSpec::new(
            name,
            w.program(seed),
            EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
            budget,
        )
    }

    #[test]
    fn schedules_are_equivalent_and_deterministic() {
        let mut rtc = BatchRunner::new(Schedule::RunToCompletion);
        let mut rr = BatchRunner::new(Schedule::RoundRobin { quantum: 1_000 });
        for name in ["compress", "li", "ijpeg"] {
            rtc.push(spec(name, 11, 40_000));
            rr.push(spec(name, 11, 40_000));
        }
        let a = rtc.run().unwrap();
        let b = rr.run().unwrap();
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            // Instances are independent: interleaving cannot change any
            // result, only the order work was done in.
            assert_eq!(x.digest, y.digest, "{}", x.name);
            assert_eq!(x.stats, y.stats, "{}", x.name);
            assert!(x.stats.total() >= 40_000 || x.stats.halted);
        }
    }

    #[test]
    fn batch_matches_individual_engines() {
        let w = tlr_workloads::by_name("compress").unwrap();
        let prog = w.program(7);
        let cfg = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let mut solo = ThroughputEngine::new(&prog, cfg);
        let solo_stats = solo.run(30_000).unwrap();

        let mut runner = BatchRunner::new(Schedule::RoundRobin { quantum: 777 });
        runner.push(BatchSpec::new("compress", prog, cfg, 30_000));
        let outcomes = runner.run().unwrap();
        assert_eq!(outcomes[0].stats, solo_stats);
        assert_eq!(outcomes[0].digest, solo.vm().state_digest());
    }

    #[test]
    fn warm_and_serving_specs_apply() {
        let w = tlr_workloads::by_name("li").unwrap();
        let prog = w.program(3);
        let cfg = EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4));
        let mut teacher = ThroughputEngine::new(&prog, cfg);
        teacher.run(40_000).unwrap();
        let snap = teacher.export_rtm();

        let mut runner = BatchRunner::new(Schedule::RunToCompletion);
        runner.push(
            BatchSpec::new("li-serve", prog, cfg, 40_000)
                .with_warm(snap)
                .serving_only(),
        );
        let out = runner.run().unwrap().remove(0);
        assert!(out.stats.skipped > 0, "warm serving instance must hit");
        assert_eq!(out.stats.rtm.stores, 0, "serving-only never inserts");
    }
}
