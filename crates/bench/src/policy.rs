//! The replacement-policy sweep (ours, enabled by `tlr-core::policy`).
//!
//! The paper hard-wires LRU into the RTM; the pluggable
//! [`ReplacementPolicy`] makes the ROADMAP's "could a frequency-weighted
//! policy beat recency under merge contention?" an empirical question.
//! This experiment answers it per workload at `RTM_32K`: for each of the
//! three policies, a **cold** run (the policy governs live collection
//! eviction) and a **merged-warm** run (two diverse cold producers'
//! snapshots are pooled with [`RtmSnapshot::merge_with`] under the
//! policy, then a warm run serves from the pool).
//!
//! A fourth configuration closes the tap → decant → policy loop: per
//! workload, a tapped probe run under plain cost/benefit is decanted
//! ([`tlr_decant::decant`]) into measured per-class weights
//! ([`Attribution::class_weights`]), and the sweep then runs
//! [`ReplacementPolicy::CostBenefitMeasured`] with those weights
//! alongside the built-in length-weighted variant.
//!
//! Replacement never touches the reuse *test*, so every configuration
//! must leave the architecture exactly where plain execution leaves it.
//! Each engine run is checked against a fresh plain-VM run of the same
//! dynamic instruction count ([`PolicyCell::state_ok`]); `--check` turns
//! any mismatch into a nonzero exit.
//!
//! [`Attribution::class_weights`]: tlr_decant::Attribution::class_weights

use crate::fleet::{FLEET_COLD_A, FLEET_COLD_B, FLEET_WARM};
use crate::harness::{pool_run, HarnessConfig};
use tlr_core::{
    ClassWeights, EngineConfig, EngineStats, Heuristic, ReplacementPolicy, RtmConfig, RtmSnapshot,
    TraceReuseEngine,
};
use tlr_isa::{Alpha21164, NullSink};
use tlr_stats::Table;
use tlr_vm::Vm;

/// Full-architectural-state digest: every register (integer and FP) and
/// every initialized memory word, in a canonical order. Now provided by
/// the VM itself ([`Vm::state_digest`]) so the CLI and the daemon gate
/// share the exact same equality token; kept here as an alias for the
/// bench API.
pub fn state_digest(vm: &Vm) -> u64 {
    vm.state_digest()
}

/// One workload × policy outcome.
pub struct PolicyCell {
    /// Benchmark name.
    pub name: &'static str,
    /// Replacement policy under test.
    pub policy: ReplacementPolicy,
    /// Cold run (empty RTM, the policy governs collection eviction).
    pub cold: EngineStats,
    /// Warm run seeded from the policy-merged producer pool.
    pub merged_warm: EngineStats,
    /// Traces in the merged snapshot.
    pub merged_traces: usize,
    /// Hit-weighted residency of the merged snapshot (sum of persisted
    /// per-trace hit counts).
    pub merged_hits: u64,
    /// Architectural-state equality: both runs ended in exactly the
    /// state plain execution of the same dynamic instruction count
    /// produces.
    pub state_ok: bool,
}

/// Plain-VM digest after exactly `total` dynamic instructions.
fn baseline_digest(prog: &tlr_asm::Program, total: u64) -> u64 {
    let mut vm = Vm::new(prog);
    vm.run(total, &mut NullSink)
        .unwrap_or_else(|e| panic!("baseline vm error: {e}"));
    state_digest(&vm)
}

/// Label of the decant-derived measured-weights configuration in the
/// sweep (it is not a member of [`ReplacementPolicy::ALL`] because its
/// weights are measured per workload, not fixed).
pub fn measured_label() -> &'static str {
    ReplacementPolicy::CostBenefitMeasured(ClassWeights::UNIT).label()
}

/// Run the policy sweep over every workload × policy, in parallel.
///
/// Tasks carry `Some(policy)` for the three fixed policies and `None`
/// for the measured-weights configuration, which first derives its
/// [`ClassWeights`] from a tapped probe run of the same workload.
pub fn run_policy_sweep(cfg: &HarnessConfig, rtm: RtmConfig) -> Vec<PolicyCell> {
    let mut tasks = Vec::new();
    for w in tlr_workloads::all() {
        for policy in ReplacementPolicy::ALL {
            tasks.push((w, Some(policy)));
        }
        tasks.push((w, None));
    }
    let threads = cfg.effective_threads(tasks.len());
    pool_run(threads, tasks, |(w, preset)| {
        let prog = w.program(cfg.seed);
        let policy = match preset {
            Some(policy) => policy,
            None => {
                // Tapped probe run under plain cost/benefit; its decanted
                // attribution prices each opcode class by measured saved
                // cycles per skipped instruction.
                let config = EngineConfig::paper(rtm, FLEET_WARM)
                    .with_policy(ReplacementPolicy::CostBenefit);
                let mut probe = TraceReuseEngine::new(&prog, config);
                probe.enable_tap_with_cap(usize::try_from(cfg.budget).unwrap_or(usize::MAX));
                probe
                    .run(cfg.budget)
                    .unwrap_or_else(|e| panic!("{}: probe engine error: {e}", w.name));
                let weights = tlr_decant::decant(probe.tap().expect("tap was enabled"))
                    .class_weights(&Alpha21164);
                ReplacementPolicy::CostBenefitMeasured(weights)
            }
        };
        let run = |config: EngineConfig, warm: Option<&RtmSnapshot>| -> (EngineStats, bool) {
            let mut engine = match warm {
                Some(snapshot) => TraceReuseEngine::new_warm(&prog, config, snapshot),
                None => TraceReuseEngine::new(&prog, config),
            };
            let stats = engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{} [{policy}]: engine error: {e}", w.name));
            // The engine made `total()` instructions of progress; plain
            // execution of the same count must land in the same state.
            let ok = state_digest(engine.vm()) == baseline_digest(&prog, stats.total());
            (stats, ok)
        };

        let cold_config = EngineConfig::paper(rtm, FLEET_WARM).with_policy(policy);
        let (cold, cold_ok) = run(cold_config, None);

        let producer = |heuristic: Heuristic| -> RtmSnapshot {
            let config = EngineConfig::paper(rtm, heuristic).with_policy(policy);
            let mut engine = TraceReuseEngine::new(&prog, config);
            engine
                .run(cfg.budget)
                .unwrap_or_else(|e| panic!("{} [{policy}]: producer error: {e}", w.name));
            engine
                .export_rtm()
                .expect("value-comparison backend snapshots")
        };
        let merged =
            RtmSnapshot::merge_with(&[producer(FLEET_COLD_A), producer(FLEET_COLD_B)], policy)
                .unwrap_or_else(|e| panic!("{} [{policy}]: merge error: {e}", w.name));
        let (merged_warm, warm_ok) = run(cold_config, Some(&merged));

        PolicyCell {
            name: w.name,
            policy,
            cold,
            merged_warm,
            merged_traces: merged.len(),
            merged_hits: merged.total_hits(),
            state_ok: cold_ok && warm_ok,
        }
    })
}

/// Table: per benchmark × policy, cold vs merged-warm `pct_reused()`
/// and the pool's size/heat, with per-policy means on the last rows.
pub fn policy_table(cells: &[PolicyCell]) -> Table {
    let mut table = Table::new(vec![
        "benchmark",
        "policy",
        "cold %",
        "merged-warm %",
        "delta",
        "merged traces",
        "merged hits",
        "state",
    ]);
    for cell in cells {
        let cold = cell.cold.pct_reused();
        let warm = cell.merged_warm.pct_reused();
        table.row(vec![
            cell.name.to_string(),
            cell.policy.label().to_string(),
            format!("{cold:.1}"),
            format!("{warm:.1}"),
            format!("{:+.1}", warm - cold),
            cell.merged_traces.to_string(),
            cell.merged_hits.to_string(),
            if cell.state_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    let mut labels: Vec<&'static str> = ReplacementPolicy::ALL.iter().map(|p| p.label()).collect();
    labels.push(measured_label());
    for label in labels {
        // Group by label: measured cells carry per-workload weights, so
        // they never compare equal as policies but share one label.
        let subset: Vec<&PolicyCell> = cells.iter().filter(|c| c.policy.label() == label).collect();
        if subset.is_empty() {
            continue;
        }
        let n = subset.len() as f64;
        let cold: f64 = subset.iter().map(|c| c.cold.pct_reused()).sum::<f64>() / n;
        let warm: f64 = subset
            .iter()
            .map(|c| c.merged_warm.pct_reused())
            .sum::<f64>()
            / n;
        table.row(vec![
            "mean".to_string(),
            label.to_string(),
            format!("{cold:.1}"),
            format!("{warm:.1}"),
            format!("{:+.1}", warm - cold),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// Regression gate for CI: every configuration must preserve
/// architectural state exactly, and every merge must carry traces.
/// Reuse-rate *ranking* between policies is the experiment's output,
/// not a gated invariant.
pub fn check_policy(cells: &[PolicyCell]) -> Result<(), String> {
    for cell in cells {
        if !cell.state_ok {
            return Err(format!(
                "{} [{}]: architectural state diverged from plain execution",
                cell.name, cell.policy
            ));
        }
        if cell.merged_traces == 0 {
            return Err(format!(
                "{} [{}]: policy merge produced an empty pool",
                cell.name, cell.policy
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_sweep_preserves_state_on_all_policies() {
        let cfg = HarnessConfig {
            budget: 20_000,
            ..HarnessConfig::quick()
        };
        let cells = run_policy_sweep(&cfg, RtmConfig::RTM_32K);
        // Three fixed policies plus the measured-weights configuration.
        assert_eq!(
            cells.len(),
            tlr_workloads::all().len() * (ReplacementPolicy::ALL.len() + 1)
        );
        check_policy(&cells).unwrap();
        let measured: Vec<&PolicyCell> = cells
            .iter()
            .filter(|c| c.policy.label() == measured_label())
            .collect();
        assert_eq!(measured.len(), tlr_workloads::all().len());
        let table = policy_table(&cells);
        assert_eq!(table.len(), cells.len() + ReplacementPolicy::ALL.len() + 1);
    }
}
