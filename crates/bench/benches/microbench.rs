//! Criterion micro-benchmarks for the simulation substrate: these keep
//! the reproduction *runnable at paper scale* (50M-instruction streams)
//! by tracking the per-instruction cost of every pipeline stage.
//!
//! Throughputs are reported in instructions (elements) per second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;
use tlr_core::{
    EngineConfig, Heuristic, InstrReuseTable, IoCaps, LimitConfig, LimitStudySink,
    ReuseTraceMemory, RtmConfig, TraceAccum, TraceReuseEngine,
};
use tlr_isa::{Alpha21164, Loc, NullSink, StreamSink};
use tlr_timing::{TimingSim, Window};
use tlr_vm::Vm;
use tlr_workloads::synthetic::{generate, SyntheticConfig};

const N: usize = 20_000;

fn stream() -> Vec<tlr_isa::DynInstr> {
    generate(
        &SyntheticConfig {
            redundancy: 0.85,
            seed: 42,
            ..Default::default()
        },
        N,
    )
}

fn bench_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(N as u64));
    let prog = tlr_workloads::by_name("compress").unwrap().program(1);
    g.bench_function("execute_compress", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&prog);
            vm.run(N as u64, &mut NullSink).unwrap()
        })
    });
    g.finish();
}

fn bench_ilr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ilr");
    g.throughput(Throughput::Elements(N as u64));
    let s = stream();
    g.bench_function("infinite_table_probe", |b| {
        b.iter_batched(
            InstrReuseTable::new,
            |mut table| {
                for d in &s {
                    std::hint::black_box(table.probe_insert(d));
                }
                table
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_timing(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(N as u64));
    let s = stream();
    let lat = Alpha21164;
    g.bench_function("infinite_window_step", |b| {
        b.iter(|| {
            let mut sim = TimingSim::new(Window::infinite(), &lat);
            for d in &s {
                sim.step_normal(d);
            }
            sim.cycles()
        })
    });
    g.bench_function("w256_step", |b| {
        b.iter(|| {
            let mut sim = TimingSim::new(Window::finite(256), &lat);
            for d in &s {
                sim.step_normal(d);
            }
            sim.cycles()
        })
    });
    g.finish();
}

fn bench_limit_sink(c: &mut Criterion) {
    let mut g = c.benchmark_group("limit_study");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let s = stream();
    let lat = Alpha21164;
    // The full figure ensemble: ~22 concurrent timing models.
    g.bench_function("full_ensemble", |b| {
        b.iter(|| {
            let mut sink = LimitStudySink::new(LimitConfig::default(), &lat);
            for d in &s {
                sink.observe(d);
            }
            sink.finish();
        })
    });
    g.finish();
}

fn bench_rtm(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtm");
    let s = stream();
    // Build a population of traces to insert/look up.
    let mut accum = TraceAccum::new(IoCaps::PAPER);
    let mut records = Vec::new();
    for d in &s {
        if !accum.try_add(d) || accum.len() >= 6 {
            records.extend(accum.finalize());
        }
    }
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("insert", |b| {
        b.iter_batched(
            || ReuseTraceMemory::new(RtmConfig::RTM_4K),
            |mut rtm| {
                for r in &records {
                    rtm.insert(r.clone());
                }
                rtm
            },
            BatchSize::LargeInput,
        )
    });
    let mut rtm = ReuseTraceMemory::new(RtmConfig::RTM_4K);
    for r in &records {
        rtm.insert(r.clone());
    }
    g.bench_function("lookup", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for r in &records {
                if rtm
                    .lookup(r.start_pc, |loc: Loc| {
                        r.ins
                            .iter()
                            .find(|(l, _)| *l == loc)
                            .map(|(_, v)| *v)
                            .unwrap_or(0)
                    })
                    .is_some()
                {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    let prog = tlr_workloads::by_name("ijpeg").unwrap().program(1);
    g.bench_function("execution_driven_i4", |b| {
        b.iter(|| {
            let mut engine = TraceReuseEngine::new(
                &prog,
                EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4)),
            );
            engine.run(N as u64).unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vm, bench_ilr, bench_timing, bench_limit_sink, bench_rtm, bench_engine
}
criterion_main!(benches);
