//! Programmatic program construction with deferred label resolution.
//!
//! Generated workloads (unrolled FP blocks, parameterized loop nests) are
//! easier to express as Rust than as text. The builder mirrors the text
//! assembler's semantics exactly; both produce [`Program`]s.

use crate::program::Program;
use tlr_isa::{BranchCond, CodeAddr, FReg, FpCmpOp, FpOp, FpUnOp, Instr, IntOp, Operand, Reg};
use tlr_util::FxHashMap;

/// A forward-referencable code label created by [`ProgramBuilder::label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Fluent program builder.
#[derive(Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    data: Vec<(u64, u64)>,
    data_cursor: u64,
    labels: Vec<Option<CodeAddr>>,
    label_names: FxHashMap<String, Label>,
    /// (instruction index, label) pairs awaiting resolution.
    fixups: Vec<(usize, Label)>,
    entry: Option<Label>,
    data_symbols: FxHashMap<String, u64>,
}

impl ProgramBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- labels ---------------------------------------------------------

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create a named unbound label (or return the existing one).
    pub fn named_label(&mut self, name: &str) -> Label {
        if let Some(l) = self.label_names.get(name) {
            return *l;
        }
        let l = self.label();
        self.label_names.insert(name.to_string(), l);
        l
    }

    /// Bind `label` to the current code position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(
            self.labels[label.0].is_none(),
            "label bound twice (builder labels bind exactly once)"
        );
        self.labels[label.0] = Some(self.instrs.len() as CodeAddr);
        self
    }

    /// Create a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Mark the entry point.
    pub fn entry(&mut self, label: Label) -> &mut Self {
        self.entry = Some(label);
        self
    }

    // ---- data -----------------------------------------------------------

    /// Move the data cursor.
    pub fn org(&mut self, addr: u64) -> &mut Self {
        self.data_cursor = addr;
        self
    }

    /// Current data cursor (next word address to be laid out).
    pub fn data_cursor(&self) -> u64 {
        self.data_cursor
    }

    /// Lay out integer words; returns the start address.
    pub fn words(&mut self, values: &[u64]) -> u64 {
        let start = self.data_cursor;
        for &v in values {
            self.data.push((self.data_cursor, v));
            self.data_cursor += 1;
        }
        start
    }

    /// Lay out IEEE doubles; returns the start address.
    pub fn doubles(&mut self, values: &[f64]) -> u64 {
        let start = self.data_cursor;
        for &v in values {
            self.data.push((self.data_cursor, v.to_bits()));
            self.data_cursor += 1;
        }
        start
    }

    /// Reserve `n` zero words; returns the start address.
    pub fn space(&mut self, n: u64) -> u64 {
        let start = self.data_cursor;
        self.data_cursor += n;
        start
    }

    /// Name a data address for diagnostics.
    pub fn data_symbol(&mut self, name: &str, addr: u64) -> &mut Self {
        self.data_symbols.insert(name.to_string(), addr);
        self
    }

    // ---- instructions -----------------------------------------------------

    fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// `rd = ra <op> rb`.
    pub fn int_op(&mut self, op: IntOp, rd: Reg, ra: Reg, rb: Operand) -> &mut Self {
        self.push(Instr::IntOp { op, rd, ra, rb })
    }

    /// `rd = ra + rb`.
    pub fn addq(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Add, rd, ra, rb.into())
    }

    /// `rd = ra - rb`.
    pub fn subq(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Sub, rd, ra, rb.into())
    }

    /// `rd = ra * rb`.
    pub fn mulq(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Mul, rd, ra, rb.into())
    }

    /// `rd = ra & rb`.
    pub fn and(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::And, rd, ra, rb.into())
    }

    /// `rd = ra | rb`.
    pub fn or(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Or, rd, ra, rb.into())
    }

    /// `rd = ra ^ rb`.
    pub fn xor(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Xor, rd, ra, rb.into())
    }

    /// `rd = ra << rb`.
    pub fn sll(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Sll, rd, ra, rb.into())
    }

    /// `rd = ra >> rb` (logical).
    pub fn srl(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Srl, rd, ra, rb.into())
    }

    /// `rd = ra >> rb` (arithmetic).
    pub fn sra(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::Sra, rd, ra, rb.into())
    }

    /// `rd = (ra == rb)`.
    pub fn cmpeq(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::CmpEq, rd, ra, rb.into())
    }

    /// `rd = (ra < rb)` signed.
    pub fn cmplt(&mut self, rd: Reg, ra: Reg, rb: impl Into<Operand>) -> &mut Self {
        self.int_op(IntOp::CmpLt, rd, ra, rb.into())
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Li { rd, imm })
    }

    /// `rd = ra` (pseudo).
    pub fn mov(&mut self, rd: Reg, ra: Reg) -> &mut Self {
        self.addq(rd, ra, 0)
    }

    /// `fd = fa <op> fb`.
    pub fn fp_op(&mut self, op: FpOp, fd: FReg, fa: FReg, fb: FReg) -> &mut Self {
        self.push(Instr::FpOp { op, fd, fa, fb })
    }

    /// `fd = fa + fb`.
    pub fn addt(&mut self, fd: FReg, fa: FReg, fb: FReg) -> &mut Self {
        self.fp_op(FpOp::Add, fd, fa, fb)
    }

    /// `fd = fa - fb`.
    pub fn subt(&mut self, fd: FReg, fa: FReg, fb: FReg) -> &mut Self {
        self.fp_op(FpOp::Sub, fd, fa, fb)
    }

    /// `fd = fa * fb`.
    pub fn mult(&mut self, fd: FReg, fa: FReg, fb: FReg) -> &mut Self {
        self.fp_op(FpOp::Mul, fd, fa, fb)
    }

    /// `fd = fa / fb`.
    pub fn divt(&mut self, fd: FReg, fa: FReg, fb: FReg) -> &mut Self {
        self.fp_op(FpOp::Div, fd, fa, fb)
    }

    /// `fd = <op> fa`.
    pub fn fp_un(&mut self, op: FpUnOp, fd: FReg, fa: FReg) -> &mut Self {
        self.push(Instr::FpUn { op, fd, fa })
    }

    /// `fd = sqrt(fa)`.
    pub fn sqrtt(&mut self, fd: FReg, fa: FReg) -> &mut Self {
        self.fp_un(FpUnOp::Sqrt, fd, fa)
    }

    /// `rd = (fa <op> fb)`.
    pub fn fp_cmp(&mut self, op: FpCmpOp, rd: Reg, fa: FReg, fb: FReg) -> &mut Self {
        self.push(Instr::FpCmp { op, rd, fa, fb })
    }

    /// `rd = MEM[base + disp]`.
    pub fn ldq(&mut self, rd: Reg, disp: i32, base: Reg) -> &mut Self {
        self.push(Instr::LoadInt { rd, base, disp })
    }

    /// `MEM[base + disp] = rs`.
    pub fn stq(&mut self, rs: Reg, disp: i32, base: Reg) -> &mut Self {
        self.push(Instr::StoreInt { rs, base, disp })
    }

    /// `fd = MEM[base + disp]`.
    pub fn ldt(&mut self, fd: FReg, disp: i32, base: Reg) -> &mut Self {
        self.push(Instr::LoadFp { fd, base, disp })
    }

    /// `MEM[base + disp] = fs`.
    pub fn stt(&mut self, fs: FReg, disp: i32, base: Reg) -> &mut Self {
        self.push(Instr::StoreFp { fs, base, disp })
    }

    /// `fd = (double) ra`.
    pub fn itof(&mut self, fd: FReg, ra: Reg) -> &mut Self {
        self.push(Instr::Itof { fd, ra })
    }

    /// `rd = (int) fa`.
    pub fn ftoi(&mut self, rd: Reg, fa: FReg) -> &mut Self {
        self.push(Instr::Ftoi { rd, fa })
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, ra: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), label));
        self.push(Instr::Branch {
            cond,
            ra,
            target: u32::MAX,
        })
    }

    /// Branch if `ra == 0`.
    pub fn beqz(&mut self, ra: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Eqz, ra, label)
    }

    /// Branch if `ra != 0`.
    pub fn bnez(&mut self, ra: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Nez, ra, label)
    }

    /// Branch if `ra > 0`.
    pub fn bgtz(&mut self, ra: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Gtz, ra, label)
    }

    /// Branch if `ra < 0`.
    pub fn bltz(&mut self, ra: Reg, label: Label) -> &mut Self {
        self.branch(BranchCond::Ltz, ra, label)
    }

    /// Unconditional jump to `label`.
    pub fn br(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), label));
        self.push(Instr::Jump { target: u32::MAX })
    }

    /// Call: `link = return address; pc = label`.
    pub fn jsr(&mut self, link: Reg, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), label));
        self.push(Instr::Jsr {
            link,
            target: u32::MAX,
        })
    }

    /// Indirect jump through `ra`.
    pub fn jmp(&mut self, ra: Reg) -> &mut Self {
        self.push(Instr::JmpReg { ra })
    }

    /// Stop.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Current code position (address of the next instruction).
    pub fn pc(&self) -> CodeAddr {
        self.instrs.len() as CodeAddr
    }

    // ---- finish -----------------------------------------------------------

    /// Resolve fix-ups and produce the program. Panics on unbound labels
    /// (a builder-usage bug, not an input error).
    pub fn build(mut self) -> Program {
        for (idx, label) in &self.fixups {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("unbound label {label:?} referenced by instr {idx}"));
            match &mut self.instrs[*idx] {
                Instr::Branch { target: t, .. }
                | Instr::Jump { target: t }
                | Instr::Jsr { target: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other:?}"),
            }
        }
        let entry = self
            .entry
            .map(|l| self.labels[l.0].expect("entry label unbound"))
            .unwrap_or(0);
        let mut code_symbols = FxHashMap::default();
        for (name, label) in &self.label_names {
            if let Some(addr) = self.labels[label.0] {
                code_symbols.insert(name.clone(), addr);
            }
        }
        let program = Program {
            instrs: self.instrs,
            entry,
            data: self.data,
            code_symbols,
            data_symbols: self.data_symbols,
        };
        assert_eq!(
            program.validate_targets(),
            Ok(()),
            "builder produced out-of-range branch target"
        );
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_counting_loop() {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::new(1);
        let buf = b.words(&[5, 6, 7]);
        b.li(r1, 3);
        let top = b.here();
        b.subq(r1, r1, 1);
        b.bnez(r1, top);
        b.halt();
        let prog = b.build();
        assert_eq!(buf, 0);
        assert_eq!(prog.len(), 4);
        assert_eq!(
            prog.instrs[2],
            Instr::Branch {
                cond: BranchCond::Nez,
                ra: r1,
                target: 1
            }
        );
    }

    #[test]
    fn forward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.br(end);
        b.nop();
        b.bind(end);
        b.halt();
        let prog = b.build();
        assert_eq!(prog.instrs[0], Instr::Jump { target: 2 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.br(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.nop();
        b.bind(l);
    }

    #[test]
    fn data_layout_matches_text_assembler() {
        let mut b = ProgramBuilder::new();
        b.org(0x10);
        let a = b.doubles(&[1.5]);
        let s = b.space(2);
        let w = b.words(&[9]);
        b.halt();
        let prog = b.build();
        assert_eq!((a, s, w), (0x10, 0x11, 0x13));
        assert_eq!(prog.data, vec![(0x10, 1.5f64.to_bits()), (0x13, 9)]);
    }

    #[test]
    fn entry_label() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let main = b.here();
        b.halt();
        b.entry(main);
        let prog = b.build();
        assert_eq!(prog.entry, 1);
    }
}
