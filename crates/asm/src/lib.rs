#![warn(missing_docs)]
//! # tlr-asm
//!
//! Assembler substrate: turns readable assembly text (or builder calls)
//! into a [`Program`] the functional simulator executes.
//!
//! The paper's workloads were SPEC95 binaries compiled by the DEC
//! compilers; ours are hand-written kernels, so a pleasant assembly
//! surface matters. Two front-ends produce identical [`Program`]s:
//!
//! * [`assemble`] — a two-pass text assembler with labels, numeric and
//!   symbolic constants (`.equ`), data directives (`.org`, `.word`,
//!   `.double`, `.space`), and line-accurate error reporting;
//! * [`ProgramBuilder`] — a fluent Rust API with label fix-ups, used where
//!   a workload's code is itself generated (e.g. the unrolled `fpppp`
//!   basic blocks).
//!
//! ## Syntax
//!
//! ```text
//! ; comment        # also a comment
//!         .equ    N, 64          ; symbolic constant
//!         .org    0x1000         ; data cursor (word address)
//! table:  .word   1, 2, 3        ; 64-bit data words, label = 0x1000
//! grid:   .space  16             ; reserve 16 zero words
//! vals:   .double 3.5, -1.0      ; IEEE doubles
//!
//!         li      r1, N          ; code section: mnemonics + operands
//! loop:   ldq     r2, 0(r16)
//!         addq    r2, r2, 5      ; third operand may be reg or immediate
//!         stq     r2, 0(r16)
//!         addq    r16, r16, 1
//!         subq    r1, r1, 1
//!         bnez    r1, loop
//!         halt
//! ```
//!
//! Addresses are word-granular (one 64-bit value per address); code
//! addresses are instruction indices, independent of the data space.

mod builder;
mod lexer;
mod parser;
mod program;

pub use builder::{Label, ProgramBuilder};
pub use parser::{assemble, AsmError, AsmErrorKind};
pub use program::{DataImage, Program};
