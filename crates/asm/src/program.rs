//! The executable program container shared by both assembler front-ends.

use tlr_isa::{CodeAddr, Instr};
use tlr_util::FxHashMap;

/// Initial memory image: word address → 64-bit value. Only explicitly
/// initialized words appear; everything else reads as zero.
pub type DataImage = Vec<(u64, u64)>;

/// An executable program: instruction array + initial data image +
/// symbol tables for diagnostics.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Instructions; the address of `instrs[i]` is `i`.
    pub instrs: Vec<Instr>,
    /// Entry point (instruction index).
    pub entry: CodeAddr,
    /// Initial memory contents.
    pub data: DataImage,
    /// Code labels → addresses (for diagnostics and tests).
    pub code_symbols: FxHashMap<String, CodeAddr>,
    /// Data labels → word addresses.
    pub data_symbols: FxHashMap<String, u64>,
}

impl Program {
    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Look up a code label.
    pub fn code_label(&self, name: &str) -> Option<CodeAddr> {
        self.code_symbols.get(name).copied()
    }

    /// Look up a data label.
    pub fn data_label(&self, name: &str) -> Option<u64> {
        self.data_symbols.get(name).copied()
    }

    /// Sanity-check that every control-flow target is inside the program.
    /// Returns the offending (instruction address, target) on failure.
    pub fn validate_targets(&self) -> Result<(), (CodeAddr, CodeAddr)> {
        let n = self.instrs.len() as u32;
        for (addr, instr) in self.instrs.iter().enumerate() {
            let bad = match instr {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jsr { target, .. } => (*target >= n).then_some(*target),
                _ => None,
            };
            if let Some(target) = bad {
                return Err((addr as u32, target));
            }
        }
        Ok(())
    }

    /// Full disassembly listing.
    pub fn disassemble(&self) -> String {
        tlr_isa::disasm::disassemble(&self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::{BranchCond, Reg};

    #[test]
    fn validate_catches_out_of_range_target() {
        let prog = Program {
            instrs: vec![
                Instr::Branch {
                    cond: BranchCond::Eqz,
                    ra: Reg::new(0),
                    target: 5,
                },
                Instr::Halt,
            ],
            ..Default::default()
        };
        assert_eq!(prog.validate_targets(), Err((0, 5)));
    }

    #[test]
    fn validate_accepts_in_range() {
        let prog = Program {
            instrs: vec![Instr::Jump { target: 1 }, Instr::Halt],
            ..Default::default()
        };
        assert_eq!(prog.validate_targets(), Ok(()));
    }
}
