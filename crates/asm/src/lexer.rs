//! Line lexer: turns one source line into tokens.
//!
//! The assembler is line-oriented (one instruction or directive per line),
//! so the lexer never spans lines. Comments start at `;` or `#` and run to
//! end of line.

use std::fmt;

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier: mnemonic, label, register name, or symbol.
    Ident(String),
    /// Directive name including the leading dot (e.g. `.word`).
    Directive(String),
    /// Integer literal (decimal or `0x` hex, optionally negative).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `@` (absolute code-address prefix, as emitted by the disassembler).
    At,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Directive(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Colon => write!(f, ":"),
            Token::At => write!(f, "@"),
        }
    }
}

/// Lex one line. Returns the tokens before any comment; an empty vector
/// means the line is blank or comment-only.
pub fn lex_line(line: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' | '#' => break,
            ' ' | '\t' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '@' => {
                tokens.push(Token::At);
                i += 1;
            }
            '.' if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_alphabetic() => {
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                tokens.push(Token::Directive(line[start..i].to_string()));
            }
            '-' | '+' => {
                let (tok, next) = lex_number(line, i)?;
                tokens.push(tok);
                i = next;
            }
            '0'..='9' => {
                let (tok, next) = lex_number(line, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                tokens.push(Token::Ident(line[start..i].to_string()));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(tokens)
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex a numeric literal starting at `start`. Handles sign, `0x` hex, and
/// floats (presence of `.` or exponent).
fn lex_number(line: &str, start: usize) -> Result<(Token, usize), String> {
    let bytes = line.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' || bytes[i] == b'+' {
        i += 1;
        if i >= bytes.len() || !(bytes[i] as char).is_ascii_digit() {
            return Err("dangling sign".to_string());
        }
    }
    // Hex?
    if bytes[i] == b'0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
        let digits_start = i + 2;
        let mut j = digits_start;
        while j < bytes.len() && (bytes[j] as char).is_ascii_hexdigit() {
            j += 1;
        }
        if j == digits_start {
            return Err("hex literal with no digits".to_string());
        }
        let magnitude = u64::from_str_radix(&line[digits_start..j], 16)
            .map_err(|e| format!("bad hex literal: {e}"))?;
        let value = if bytes[start] == b'-' {
            (magnitude as i64).wrapping_neg()
        } else {
            magnitude as i64
        };
        return Ok((Token::Int(value), j));
    }
    // Scan digits, detecting float syntax.
    let mut j = i;
    let mut is_float = false;
    while j < bytes.len() {
        let c = bytes[j] as char;
        if c.is_ascii_digit() {
            j += 1;
        } else if c == '.' && !is_float {
            is_float = true;
            j += 1;
        } else if (c == 'e' || c == 'E') && j + 1 < bytes.len() {
            let next = bytes[j + 1] as char;
            if next.is_ascii_digit() || next == '-' || next == '+' {
                is_float = true;
                j += 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let text = &line[start..j];
    if is_float {
        let v: f64 = text
            .parse()
            .map_err(|e| format!("bad float '{text}': {e}"))?;
        Ok((Token::Float(v), j))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|e| format!("bad integer '{text}': {e}"))?;
        Ok((Token::Int(v), j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_instruction_line() {
        let toks = lex_line("loop:   addq r1, r2, -3   ; comment").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("loop".into()),
                Token::Colon,
                Token::Ident("addq".into()),
                Token::Ident("r1".into()),
                Token::Comma,
                Token::Ident("r2".into()),
                Token::Comma,
                Token::Int(-3),
            ]
        );
    }

    #[test]
    fn lexes_memref() {
        let toks = lex_line("ldq r4, 16(r5)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("ldq".into()),
                Token::Ident("r4".into()),
                Token::Comma,
                Token::Int(16),
                Token::LParen,
                Token::Ident("r5".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_directives_and_numbers() {
        let toks = lex_line(".word 0x10, -2, 3.5, 1e3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Directive(".word".into()),
                Token::Int(16),
                Token::Comma,
                Token::Int(-2),
                Token::Comma,
                Token::Float(3.5),
                Token::Comma,
                Token::Float(1000.0),
            ]
        );
    }

    #[test]
    fn comment_only_line_is_empty() {
        assert!(lex_line("  ; nothing here").unwrap().is_empty());
        assert!(lex_line("# nor here").unwrap().is_empty());
        assert!(lex_line("").unwrap().is_empty());
    }

    #[test]
    fn at_sign_code_address() {
        let toks = lex_line("br @17").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("br".into()), Token::At, Token::Int(17)]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex_line("addq r1, r2, $3").is_err());
        assert!(lex_line("li r1, 0x").is_err());
    }

    #[test]
    fn negative_hex() {
        let toks = lex_line("li r1, -0x10").unwrap();
        assert_eq!(toks[3], Token::Int(-16));
    }
}
