//! Two-pass assembler.
//!
//! Pass 1 parses every line into an intermediate form, lays out data, and
//! binds labels (code labels to instruction indices, data labels to word
//! addresses). Pass 2 encodes instructions with all symbols resolved.

use crate::lexer::{lex_line, Token};
use crate::program::Program;
use std::fmt;
use tlr_isa::{BranchCond, CodeAddr, FReg, FpCmpOp, FpOp, FpUnOp, Instr, IntOp, Operand, Reg};
use tlr_util::FxHashMap;

/// What went wrong.
#[derive(Clone, Debug, PartialEq)]
pub enum AsmErrorKind {
    /// Lexical error.
    Lex(String),
    /// Mnemonic not recognized.
    UnknownMnemonic(String),
    /// Directive not recognized.
    UnknownDirective(String),
    /// Operand list malformed for this mnemonic.
    BadOperands {
        /// The mnemonic being assembled.
        mnemonic: String,
        /// Human-readable expected shape.
        expected: &'static str,
    },
    /// Referenced symbol was never defined.
    UnknownSymbol(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A label at end of file binds to nothing.
    DanglingLabel(String),
    /// `.equ` needs a literal or already-defined symbol.
    BadEqu(String),
    /// Immediate operand does not fit the instruction field.
    ImmOutOfRange(i64),
    /// `.entry` names an unknown code label.
    BadEntry(String),
    /// A branch/jump targets an address outside the program.
    TargetOutOfRange {
        /// The invalid target address.
        target: u32,
        /// Number of instructions in the program.
        len: u32,
    },
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::Lex(msg) => write!(f, "lex error: {msg}"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic '{m}'"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive '{d}'"),
            AsmErrorKind::BadOperands { mnemonic, expected } => {
                write!(f, "bad operands for '{mnemonic}', expected {expected}")
            }
            AsmErrorKind::UnknownSymbol(s) => write!(f, "unknown symbol '{s}'"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label '{l}'"),
            AsmErrorKind::DanglingLabel(l) => write!(f, "label '{l}' binds to nothing"),
            AsmErrorKind::BadEqu(s) => write!(f, "bad .equ: {s}"),
            AsmErrorKind::ImmOutOfRange(v) => write!(f, "immediate {v} out of range"),
            AsmErrorKind::BadEntry(l) => write!(f, ".entry names unknown label '{l}'"),
            AsmErrorKind::TargetOutOfRange { target, len } => {
                write!(
                    f,
                    "branch target @{target} outside the program (length {len})"
                )
            }
        }
    }
}

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Error detail.
    pub kind: AsmErrorKind,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for AsmError {}

/// A parsed line body.
#[derive(Debug)]
enum Body {
    Instr {
        mnemonic: String,
        operands: Vec<Opnd>,
    },
    Directive {
        name: String,
        args: Vec<Token>,
    },
}

/// A parsed operand.
#[derive(Debug, Clone)]
enum Opnd {
    IntReg(Reg),
    FpReg(FReg),
    Int(i64),
    /// Parsed but rejected by every encoder: FP immediates enter programs
    /// only through `.double` data. Kept so the error is "bad operands for
    /// <mnemonic>" rather than a lex error.
    #[allow(dead_code)]
    Float(f64),
    Symbol(String),
    /// `@N` absolute code address.
    CodeAddr(i64),
    /// `disp(base)` memory reference; `disp` is an int or symbol.
    MemRef {
        disp: Box<Opnd>,
        base: Reg,
    },
}

/// Try to interpret an identifier as a register name.
fn reg_of(name: &str) -> Option<Opnd> {
    match name {
        "sp" => return Some(Opnd::IntReg(Reg::SP)),
        "zero" => return Some(Opnd::IntReg(Reg::ZERO)),
        "fzero" => return Some(Opnd::FpReg(FReg::ZERO)),
        _ => {}
    }
    let (kind, rest) = name.split_at(1);
    let n: u8 = rest.parse().ok()?;
    if n >= 32 || (rest.len() > 1 && rest.starts_with('0')) {
        return None;
    }
    match kind {
        "r" => Some(Opnd::IntReg(Reg::new(n))),
        "f" => Some(Opnd::FpReg(FReg::new(n))),
        _ => None,
    }
}

/// Parse the operand list of an instruction line.
fn parse_operands(tokens: &[Token]) -> Result<Vec<Opnd>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let opnd = match &tokens[i] {
            Token::Ident(name) => {
                i += 1;
                reg_of(name).unwrap_or_else(|| Opnd::Symbol(name.clone()))
            }
            Token::Int(v) => {
                i += 1;
                Opnd::Int(*v)
            }
            Token::Float(v) => {
                i += 1;
                Opnd::Float(*v)
            }
            Token::At => {
                i += 1;
                match tokens.get(i) {
                    Some(Token::Int(v)) => {
                        i += 1;
                        Opnd::CodeAddr(*v)
                    }
                    _ => return Err("'@' must be followed by an integer".into()),
                }
            }
            other => return Err(format!("unexpected token '{other}'")),
        };
        // Memory reference suffix: `(reg)`.
        let opnd = if matches!(tokens.get(i), Some(Token::LParen)) {
            i += 1;
            let base = match tokens.get(i) {
                Some(Token::Ident(name)) => match reg_of(name) {
                    Some(Opnd::IntReg(r)) => r,
                    _ => {
                        return Err(format!(
                            "memory base must be an integer register, got '{name}'"
                        ))
                    }
                },
                other => return Err(format!("expected base register, got {other:?}")),
            };
            i += 1;
            if !matches!(tokens.get(i), Some(Token::RParen)) {
                return Err("missing ')' after base register".into());
            }
            i += 1;
            match opnd {
                Opnd::Int(_) | Opnd::Symbol(_) => Opnd::MemRef {
                    disp: Box::new(opnd),
                    base,
                },
                _ => return Err("memory displacement must be an integer or symbol".into()),
            }
        } else {
            opnd
        };
        out.push(opnd);
        // Operand separator.
        match tokens.get(i) {
            Some(Token::Comma) => i += 1,
            None => break,
            Some(other) => return Err(format!("expected ',' between operands, got '{other}'")),
        }
    }
    Ok(out)
}

struct ParsedLine {
    line_no: usize,
    labels: Vec<String>,
    body: Option<Body>,
}

/// Parse source text into lines (labels split off, operands parsed).
fn parse_lines(source: &str) -> Result<Vec<ParsedLine>, AsmError> {
    let mut lines = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let err = |kind| AsmError {
            line: line_no,
            kind,
        };
        let mut tokens = lex_line(raw).map_err(|m| err(AsmErrorKind::Lex(m)))?;
        // Peel leading `ident :` label pairs.
        let mut labels = Vec::new();
        while tokens.len() >= 2
            && matches!(&tokens[0], Token::Ident(_))
            && matches!(&tokens[1], Token::Colon)
        {
            if let Token::Ident(name) = tokens.remove(0) {
                labels.push(name);
            }
            tokens.remove(0); // colon
        }
        let body = match tokens.first() {
            None => None,
            Some(Token::Directive(_)) => {
                let name = match tokens.remove(0) {
                    Token::Directive(d) => d,
                    _ => unreachable!(),
                };
                Some(Body::Directive { name, args: tokens })
            }
            Some(Token::Ident(_)) => {
                let mnemonic = match tokens.remove(0) {
                    Token::Ident(m) => m,
                    _ => unreachable!(),
                };
                let operands = parse_operands(&tokens).map_err(|m| err(AsmErrorKind::Lex(m)))?;
                Some(Body::Instr { mnemonic, operands })
            }
            Some(other) => {
                return Err(err(AsmErrorKind::Lex(format!(
                    "line must start with a label, mnemonic or directive, got '{other}'"
                ))))
            }
        };
        if body.is_none() && labels.is_empty() {
            continue;
        }
        lines.push(ParsedLine {
            line_no,
            labels,
            body,
        });
    }
    Ok(lines)
}

/// Symbol environment built in pass 1.
struct SymEnv {
    equs: FxHashMap<String, i64>,
    code: FxHashMap<String, CodeAddr>,
    data: FxHashMap<String, u64>,
}

impl SymEnv {
    /// Resolve a symbol used as an immediate value: `.equ` constants take
    /// precedence, then data labels (their word address), then code labels
    /// (their instruction index, enabling function-pointer tables).
    fn value_of(&self, name: &str) -> Option<i64> {
        if let Some(v) = self.equs.get(name) {
            return Some(*v);
        }
        if let Some(a) = self.data.get(name) {
            return Some(*a as i64);
        }
        self.code.get(name).map(|a| *a as i64)
    }

    fn code_target(&self, name: &str) -> Option<CodeAddr> {
        self.code.get(name).copied()
    }
}

/// Assemble source text into a [`Program`].
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let lines = parse_lines(source)?;

    // ---- Pass 1: layout ------------------------------------------------
    let mut env = SymEnv {
        equs: FxHashMap::default(),
        code: FxHashMap::default(),
        data: FxHashMap::default(),
    };
    let mut data: Vec<(u64, u64)> = Vec::new();
    let mut data_cursor: u64 = 0;
    let mut instr_count: u32 = 0;
    let mut pending: Vec<(usize, String)> = Vec::new();
    let mut entry_symbol: Option<(usize, String)> = None;

    for line in &lines {
        let err = |kind| AsmError {
            line: line.line_no,
            kind,
        };
        for label in &line.labels {
            pending.push((line.line_no, label.clone()));
        }
        match &line.body {
            None => {}
            Some(Body::Instr { .. }) => {
                for (lno, label) in pending.drain(..) {
                    if env.code.insert(label.clone(), instr_count).is_some()
                        || env.data.contains_key(&label)
                        || env.equs.contains_key(&label)
                    {
                        return Err(AsmError {
                            line: lno,
                            kind: AsmErrorKind::DuplicateLabel(label),
                        });
                    }
                }
                instr_count += 1;
            }
            Some(Body::Directive { name, args }) => match name.as_str() {
                ".org" => {
                    // Address change happens before binding labels, so a
                    // label on the same line binds to the new cursor.
                    match args.as_slice() {
                        [Token::Int(v)] if *v >= 0 => data_cursor = *v as u64,
                        _ => {
                            return Err(err(AsmErrorKind::BadOperands {
                                mnemonic: ".org".into(),
                                expected: "a non-negative integer address",
                            }))
                        }
                    }
                    bind_data_labels(&mut pending, &mut env, data_cursor)?;
                }
                ".word" | ".double" | ".space" => {
                    bind_data_labels(&mut pending, &mut env, data_cursor)?;
                    layout_data(name, args, &env, &mut data, &mut data_cursor).map_err(err)?;
                }
                ".equ" => {
                    let (sym, value) = match args.as_slice() {
                        [Token::Ident(sym), Token::Comma, Token::Int(v)] => (sym.clone(), *v),
                        [Token::Ident(sym), Token::Comma, Token::Ident(other)] => {
                            let v = env.value_of(other).ok_or_else(|| {
                                err(AsmErrorKind::BadEqu(format!("unknown symbol '{other}'")))
                            })?;
                            (sym.clone(), v)
                        }
                        _ => {
                            return Err(err(AsmErrorKind::BadEqu(
                                "expected '.equ NAME, value'".into(),
                            )))
                        }
                    };
                    if env.equs.insert(sym.clone(), value).is_some() {
                        return Err(err(AsmErrorKind::DuplicateLabel(sym)));
                    }
                }
                ".entry" => match args.as_slice() {
                    [Token::Ident(sym)] => entry_symbol = Some((line.line_no, sym.clone())),
                    _ => {
                        return Err(err(AsmErrorKind::BadOperands {
                            mnemonic: ".entry".into(),
                            expected: "a code label",
                        }))
                    }
                },
                other => return Err(err(AsmErrorKind::UnknownDirective(other.to_string()))),
            },
        }
    }
    if let Some((lno, label)) = pending.into_iter().next() {
        return Err(AsmError {
            line: lno,
            kind: AsmErrorKind::DanglingLabel(label),
        });
    }

    // ---- Pass 2: encode -------------------------------------------------
    let mut instrs: Vec<Instr> = Vec::with_capacity(instr_count as usize);
    let mut instr_lines: Vec<usize> = Vec::with_capacity(instr_count as usize);
    for line in &lines {
        if let Some(Body::Instr { mnemonic, operands }) = &line.body {
            let instr = encode(mnemonic, operands, &env).map_err(|kind| AsmError {
                line: line.line_no,
                kind,
            })?;
            instrs.push(instr);
            instr_lines.push(line.line_no);
        }
    }

    let entry = match entry_symbol {
        None => 0,
        Some((lno, sym)) => env.code_target(&sym).ok_or(AsmError {
            line: lno,
            kind: AsmErrorKind::BadEntry(sym),
        })?,
    };

    let program = Program {
        instrs,
        entry,
        data,
        code_symbols: env.code,
        data_symbols: env.data,
    };
    // Labels always resolve in range, but absolute `@N` targets can point
    // anywhere: validate and report against the offending source line.
    if let Err((addr, target)) = program.validate_targets() {
        return Err(AsmError {
            line: instr_lines[addr as usize],
            kind: AsmErrorKind::TargetOutOfRange {
                target,
                len: program.instrs.len() as u32,
            },
        });
    }
    Ok(program)
}

fn bind_data_labels(
    pending: &mut Vec<(usize, String)>,
    env: &mut SymEnv,
    cursor: u64,
) -> Result<(), AsmError> {
    for (lno, label) in pending.drain(..) {
        if env.data.insert(label.clone(), cursor).is_some()
            || env.code.contains_key(&label)
            || env.equs.contains_key(&label)
        {
            return Err(AsmError {
                line: lno,
                kind: AsmErrorKind::DuplicateLabel(label),
            });
        }
    }
    Ok(())
}

fn layout_data(
    name: &str,
    args: &[Token],
    env: &SymEnv,
    data: &mut Vec<(u64, u64)>,
    cursor: &mut u64,
) -> Result<(), AsmErrorKind> {
    // Split args at commas into single-token values.
    let mut values: Vec<&Token> = Vec::new();
    let mut expecting_value = true;
    for tok in args {
        match tok {
            Token::Comma if !expecting_value => expecting_value = true,
            t if expecting_value => {
                values.push(t);
                expecting_value = false;
            }
            _ => {
                return Err(AsmErrorKind::BadOperands {
                    mnemonic: name.to_string(),
                    expected: "comma-separated values",
                })
            }
        }
    }
    match name {
        ".word" => {
            for tok in values {
                let v: u64 = match tok {
                    Token::Int(v) => *v as u64,
                    Token::Ident(sym) => env
                        .value_of(sym)
                        .ok_or_else(|| AsmErrorKind::UnknownSymbol(sym.clone()))?
                        as u64,
                    _ => {
                        return Err(AsmErrorKind::BadOperands {
                            mnemonic: ".word".into(),
                            expected: "integers or symbols",
                        })
                    }
                };
                data.push((*cursor, v));
                *cursor += 1;
            }
        }
        ".double" => {
            for tok in values {
                let v: f64 = match tok {
                    Token::Float(v) => *v,
                    Token::Int(v) => *v as f64,
                    _ => {
                        return Err(AsmErrorKind::BadOperands {
                            mnemonic: ".double".into(),
                            expected: "floating-point literals",
                        })
                    }
                };
                data.push((*cursor, v.to_bits()));
                *cursor += 1;
            }
        }
        ".space" => match values.as_slice() {
            [Token::Int(n)] if *n >= 0 => {
                // Reserved words read as zero; no image entries needed.
                *cursor += *n as u64;
            }
            _ => {
                return Err(AsmErrorKind::BadOperands {
                    mnemonic: ".space".into(),
                    expected: "a non-negative word count",
                })
            }
        },
        _ => unreachable!("caller dispatches only data directives"),
    }
    Ok(())
}

/// Immediate field limits for three-operand integer instructions: the
/// value must survive the `i32` operand field.
fn int_operand(opnd: &Opnd, env: &SymEnv) -> Result<Operand, AsmErrorKind> {
    match opnd {
        Opnd::IntReg(r) => Ok(Operand::Reg(*r)),
        Opnd::Int(v) => i32::try_from(*v)
            .map(Operand::Imm)
            .map_err(|_| AsmErrorKind::ImmOutOfRange(*v)),
        Opnd::Symbol(sym) => {
            let v = env
                .value_of(sym)
                .ok_or_else(|| AsmErrorKind::UnknownSymbol(sym.clone()))?;
            i32::try_from(v)
                .map(Operand::Imm)
                .map_err(|_| AsmErrorKind::ImmOutOfRange(v))
        }
        _ => Err(AsmErrorKind::BadOperands {
            mnemonic: String::new(),
            expected: "register or immediate",
        }),
    }
}

fn disp_of(disp: &Opnd, env: &SymEnv) -> Result<i32, AsmErrorKind> {
    let v = match disp {
        Opnd::Int(v) => *v,
        Opnd::Symbol(sym) => env
            .value_of(sym)
            .ok_or_else(|| AsmErrorKind::UnknownSymbol(sym.clone()))?,
        _ => unreachable!("parser restricts displacement shapes"),
    };
    i32::try_from(v).map_err(|_| AsmErrorKind::ImmOutOfRange(v))
}

fn branch_target(opnd: &Opnd, env: &SymEnv) -> Result<CodeAddr, AsmErrorKind> {
    match opnd {
        Opnd::CodeAddr(v) => u32::try_from(*v).map_err(|_| AsmErrorKind::ImmOutOfRange(*v)),
        Opnd::Int(v) => u32::try_from(*v).map_err(|_| AsmErrorKind::ImmOutOfRange(*v)),
        Opnd::Symbol(sym) => env
            .code_target(sym)
            .ok_or_else(|| AsmErrorKind::UnknownSymbol(sym.clone())),
        _ => Err(AsmErrorKind::BadOperands {
            mnemonic: String::new(),
            expected: "code label or @address",
        }),
    }
}

fn encode(mnemonic: &str, ops: &[Opnd], env: &SymEnv) -> Result<Instr, AsmErrorKind> {
    use Opnd::*;
    let bad = |expected: &'static str| AsmErrorKind::BadOperands {
        mnemonic: mnemonic.to_string(),
        expected,
    };
    let int_op = |op: IntOp| -> Result<Instr, AsmErrorKind> {
        match ops {
            [IntReg(rd), IntReg(ra), rb] => Ok(Instr::IntOp {
                op,
                rd: *rd,
                ra: *ra,
                rb: int_operand(rb, env).map_err(|e| match e {
                    AsmErrorKind::BadOperands { .. } => bad("rd, ra, rb|imm"),
                    other => other,
                })?,
            }),
            _ => Err(bad("rd, ra, rb|imm")),
        }
    };
    let fp_op = |op: FpOp| -> Result<Instr, AsmErrorKind> {
        match ops {
            [FpReg(fd), FpReg(fa), FpReg(fb)] => Ok(Instr::FpOp {
                op,
                fd: *fd,
                fa: *fa,
                fb: *fb,
            }),
            _ => Err(bad("fd, fa, fb")),
        }
    };
    let fp_un = |op: FpUnOp| -> Result<Instr, AsmErrorKind> {
        match ops {
            [FpReg(fd), FpReg(fa)] => Ok(Instr::FpUn {
                op,
                fd: *fd,
                fa: *fa,
            }),
            _ => Err(bad("fd, fa")),
        }
    };
    let fp_cmp = |op: FpCmpOp| -> Result<Instr, AsmErrorKind> {
        match ops {
            [IntReg(rd), FpReg(fa), FpReg(fb)] => Ok(Instr::FpCmp {
                op,
                rd: *rd,
                fa: *fa,
                fb: *fb,
            }),
            _ => Err(bad("rd, fa, fb")),
        }
    };
    let branch = |cond: BranchCond| -> Result<Instr, AsmErrorKind> {
        match ops {
            [IntReg(ra), target] => Ok(Instr::Branch {
                cond,
                ra: *ra,
                target: branch_target(target, env)?,
            }),
            _ => Err(bad("ra, label")),
        }
    };

    match mnemonic {
        "addq" => int_op(IntOp::Add),
        "subq" => int_op(IntOp::Sub),
        "mulq" => int_op(IntOp::Mul),
        "and" => int_op(IntOp::And),
        "or" => int_op(IntOp::Or),
        "xor" => int_op(IntOp::Xor),
        "sll" => int_op(IntOp::Sll),
        "srl" => int_op(IntOp::Srl),
        "sra" => int_op(IntOp::Sra),
        "cmpeq" => int_op(IntOp::CmpEq),
        "cmplt" => int_op(IntOp::CmpLt),
        "cmple" => int_op(IntOp::CmpLe),
        "cmpult" => int_op(IntOp::CmpUlt),

        "li" => match ops {
            [IntReg(rd), Int(v)] => Ok(Instr::Li { rd: *rd, imm: *v }),
            [IntReg(rd), Symbol(sym)] => {
                let v = env
                    .value_of(sym)
                    .ok_or_else(|| AsmErrorKind::UnknownSymbol(sym.clone()))?;
                Ok(Instr::Li { rd: *rd, imm: v })
            }
            [IntReg(rd), CodeAddr(v)] => Ok(Instr::Li { rd: *rd, imm: *v }),
            _ => Err(bad("rd, imm|symbol")),
        },
        // Pseudo: register move / clear.
        "mov" => match ops {
            [IntReg(rd), IntReg(ra)] => Ok(Instr::IntOp {
                op: IntOp::Add,
                rd: *rd,
                ra: *ra,
                rb: Operand::Imm(0),
            }),
            _ => Err(bad("rd, ra")),
        },
        "clr" => match ops {
            [IntReg(rd)] => Ok(Instr::Li { rd: *rd, imm: 0 }),
            _ => Err(bad("rd")),
        },

        "addt" => fp_op(FpOp::Add),
        "subt" => fp_op(FpOp::Sub),
        "mult" => fp_op(FpOp::Mul),
        "divt" => fp_op(FpOp::Div),
        "sqrtt" => fp_un(FpUnOp::Sqrt),
        "negt" => fp_un(FpUnOp::Neg),
        "abst" => fp_un(FpUnOp::Abs),
        "fmov" => fp_un(FpUnOp::Mov),
        "cmpteq" => fp_cmp(FpCmpOp::Eq),
        "cmptlt" => fp_cmp(FpCmpOp::Lt),
        "cmptle" => fp_cmp(FpCmpOp::Le),

        "ldq" => match ops {
            [IntReg(rd), MemRef { disp, base }] => Ok(Instr::LoadInt {
                rd: *rd,
                base: *base,
                disp: disp_of(disp, env)?,
            }),
            _ => Err(bad("rd, disp(base)")),
        },
        "stq" => match ops {
            [IntReg(rs), MemRef { disp, base }] => Ok(Instr::StoreInt {
                rs: *rs,
                base: *base,
                disp: disp_of(disp, env)?,
            }),
            _ => Err(bad("rs, disp(base)")),
        },
        "ldt" => match ops {
            [FpReg(fd), MemRef { disp, base }] => Ok(Instr::LoadFp {
                fd: *fd,
                base: *base,
                disp: disp_of(disp, env)?,
            }),
            _ => Err(bad("fd, disp(base)")),
        },
        "stt" => match ops {
            [FpReg(fs), MemRef { disp, base }] => Ok(Instr::StoreFp {
                fs: *fs,
                base: *base,
                disp: disp_of(disp, env)?,
            }),
            _ => Err(bad("fs, disp(base)")),
        },

        "itof" => match ops {
            [FpReg(fd), IntReg(ra)] => Ok(Instr::Itof { fd: *fd, ra: *ra }),
            _ => Err(bad("fd, ra")),
        },
        "ftoi" => match ops {
            [IntReg(rd), FpReg(fa)] => Ok(Instr::Ftoi { rd: *rd, fa: *fa }),
            _ => Err(bad("rd, fa")),
        },

        "beqz" => branch(BranchCond::Eqz),
        "bnez" => branch(BranchCond::Nez),
        "bltz" => branch(BranchCond::Ltz),
        "blez" => branch(BranchCond::Lez),
        "bgtz" => branch(BranchCond::Gtz),
        "bgez" => branch(BranchCond::Gez),

        "br" => match ops {
            [target] => Ok(Instr::Jump {
                target: branch_target(target, env)?,
            }),
            _ => Err(bad("label")),
        },
        "jsr" => match ops {
            [IntReg(link), target] => Ok(Instr::Jsr {
                link: *link,
                target: branch_target(target, env)?,
            }),
            _ => Err(bad("link, label")),
        },
        "jmp" | "ret" => match ops {
            [IntReg(ra)] => Ok(Instr::JmpReg { ra: *ra }),
            _ => Err(bad("ra")),
        },
        "halt" => match ops {
            [] => Ok(Instr::Halt),
            _ => Err(bad("no operands")),
        },
        "nop" => match ops {
            [] => Ok(Instr::Nop),
            _ => Err(bad("no operands")),
        },

        other => Err(AsmErrorKind::UnknownMnemonic(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop_kernel() {
        let prog = assemble(
            r#"
            .equ    N, 4
            .org    0x100
    buf:    .word   10, 20, 30, 40

            li      r1, N
            li      r2, buf
    loop:   ldq     r3, 0(r2)
            addq    r3, r3, 1
            stq     r3, 0(r2)
            addq    r2, r2, 1
            subq    r1, r1, 1
            bnez    r1, loop
            halt
            "#,
        )
        .unwrap();
        assert_eq!(prog.len(), 9);
        assert_eq!(prog.code_label("loop"), Some(2));
        assert_eq!(prog.data_label("buf"), Some(0x100));
        assert_eq!(
            prog.data,
            vec![(0x100, 10), (0x101, 20), (0x102, 30), (0x103, 40)]
        );
        assert_eq!(
            prog.instrs[0],
            Instr::Li {
                rd: Reg::new(1),
                imm: 4
            }
        );
        assert_eq!(
            prog.instrs[7],
            Instr::Branch {
                cond: BranchCond::Nez,
                ra: Reg::new(1),
                target: 2
            }
        );
    }

    #[test]
    fn forward_references_resolve() {
        let prog = assemble(
            r#"
            br      end
            nop
    end:    halt
            "#,
        )
        .unwrap();
        assert_eq!(prog.instrs[0], Instr::Jump { target: 2 });
    }

    #[test]
    fn entry_directive() {
        let prog = assemble(
            r#"
            .entry  main
            nop
    main:   halt
            "#,
        )
        .unwrap();
        assert_eq!(prog.entry, 1);
    }

    #[test]
    fn doubles_and_space() {
        let prog = assemble(
            r#"
            .org 10
    a:      .double 1.5, -2.0
    b:      .space 3
    c:      .word 7
            halt
            "#,
        )
        .unwrap();
        assert_eq!(prog.data_label("a"), Some(10));
        assert_eq!(prog.data_label("b"), Some(12));
        assert_eq!(prog.data_label("c"), Some(15));
        assert_eq!(prog.data[0], (10, 1.5f64.to_bits()));
        assert_eq!(prog.data[1], (11, (-2.0f64).to_bits()));
        assert_eq!(prog.data[2], (15, 7));
    }

    #[test]
    fn fp_instructions() {
        let prog = assemble(
            r#"
            addt    f1, f2, f3
            sqrtt   f4, f5
            cmptlt  r1, f1, f2
            itof    f6, r2
            ftoi    r3, f6
            halt
            "#,
        )
        .unwrap();
        assert_eq!(
            prog.instrs[0],
            Instr::FpOp {
                op: FpOp::Add,
                fd: FReg::new(1),
                fa: FReg::new(2),
                fb: FReg::new(3)
            }
        );
        assert_eq!(
            prog.instrs[2],
            Instr::FpCmp {
                op: FpCmpOp::Lt,
                rd: Reg::new(1),
                fa: FReg::new(1),
                fb: FReg::new(2)
            }
        );
    }

    #[test]
    fn error_unknown_mnemonic_with_line() {
        let err = assemble("  nop\n  frobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, AsmErrorKind::UnknownMnemonic("frobnicate".into()));
    }

    #[test]
    fn error_unknown_symbol() {
        let err = assemble("li r1, missing\nhalt\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, AsmErrorKind::UnknownSymbol("missing".into()));
    }

    #[test]
    fn error_duplicate_label() {
        let err = assemble("x: nop\nx: halt\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::DuplicateLabel("x".into()));
    }

    #[test]
    fn error_dangling_label() {
        let err = assemble("nop\norphan:\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::DanglingLabel("orphan".into()));
    }

    #[test]
    fn error_bad_operands() {
        let err = assemble("addq r1, r2\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands { .. }));
        let err = assemble("ldq f1, 0(r2)\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadOperands { .. }));
    }

    #[test]
    fn pseudo_ops() {
        let prog = assemble("mov r1, r2\nclr r3\nhalt\n").unwrap();
        assert_eq!(
            prog.instrs[0],
            Instr::IntOp {
                op: IntOp::Add,
                rd: Reg::new(1),
                ra: Reg::new(2),
                rb: Operand::Imm(0)
            }
        );
        assert_eq!(
            prog.instrs[1],
            Instr::Li {
                rd: Reg::new(3),
                imm: 0
            }
        );
    }

    #[test]
    fn register_aliases() {
        let prog = assemble("mov sp, zero\nhalt\n").unwrap();
        assert_eq!(
            prog.instrs[0],
            Instr::IntOp {
                op: IntOp::Add,
                rd: Reg::SP,
                ra: Reg::ZERO,
                rb: Operand::Imm(0)
            }
        );
    }

    #[test]
    fn code_label_as_value_for_function_tables() {
        let prog = assemble(
            r#"
    main:   li      r1, handler
            jmp     r1
    handler: halt
            "#,
        )
        .unwrap();
        assert_eq!(
            prog.instrs[0],
            Instr::Li {
                rd: Reg::new(1),
                imm: 2
            }
        );
    }

    #[test]
    fn multiple_labels_one_line() {
        let prog = assemble("a: b: nop\nhalt\n").unwrap();
        assert_eq!(prog.code_label("a"), Some(0));
        assert_eq!(prog.code_label("b"), Some(0));
    }

    #[test]
    fn error_target_out_of_range() {
        let err = assemble("nop\nbr @7\nhalt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            AsmErrorKind::TargetOutOfRange { target: 7, len: 3 }
        );
    }

    #[test]
    fn at_addresses_roundtrip_disassembly() {
        // The disassembler emits `@N` targets; they must re-assemble.
        let src = "br @2\nnop\nhalt\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.instrs[0], Instr::Jump { target: 2 });
    }
}
