#![warn(missing_docs)]
//! # tlr-serve — a sharded registry of warm RTMs
//!
//! The paper's Reuse Trace Memory is per-run state; `tlr-persist` made
//! it durable. This crate makes it **servable**: a long-lived process
//! hosting many programs' reuse state at once keeps a
//! [`SnapshotRegistry`] — an in-process cache mapping *program
//! fingerprint → resident [`tlr_core::ReuseTraceMemory`]*, sharded
//! across worker threads by fingerprint so concurrent fetches for
//! different programs do not contend on one lock.
//!
//! Capabilities:
//!
//! * **get-or-warm-load** — [`SnapshotRegistry::get`] returns the
//!   resident reuse state for a fingerprint, loading (and pooling — see
//!   below) the snapshot files of that program from the registry's
//!   snapshot directory on first touch;
//! * **snapshot merging** — a directory may hold *several* runs'
//!   snapshots of the same program; the registry merges them on load
//!   ([`tlr_core::RtmSnapshot::merge`]), so a fleet of runs pools its
//!   reuse state instead of each run warming alone;
//! * **publish-back** — a finished run contributes its RTM export back
//!   via [`SnapshotRegistry::publish`], refreshing the resident entry
//!   in place for the next run of that program;
//! * **LRU bounding** — each shard keeps at most a configured number of
//!   resident RTMs, evicting the least recently fetched entry, so a
//!   registry serving thousands of programs stays within memory budget;
//! * **replacement policy** — [`RegistryConfig::policy`] selects the
//!   [`tlr_core::ReplacementPolicy`] every pooling merge (load-time and
//!   publish-back) resolves capacity contention under, ranking traces
//!   by their persisted provenance for the non-recency policies;
//! * **per-entry stats** — hits, misses, and refreshes per fingerprint
//!   ([`EntryStats`]), plus hit-weighted residency gauges
//!   ([`EntryStats::resident_hits`]: how much *observed* reuse the
//!   resident state represents) and registry-wide aggregates
//!   ([`RegistryStats`]);
//! * **zero-copy image serving** — [`SnapshotRegistry::get_image`]
//!   returns the serialized snapshot file image from a per-entry cache
//!   (`Arc<[u8]>` built once, invalidated whenever publish/refresh
//!   replaces the resident state), so the daemon's `Get` hot path and
//!   in-process byte fetches never re-serialize nor hold a shard lock
//!   through serialization; hit/build/invalidation counters ride in
//!   [`EntryStats`] and [`RegistryStats`];
//! * **incremental spills** — [`SnapshotRegistry::spill`] persists a
//!   resident entry as an append-only **delta segment** next to its
//!   base file (only PC groups that changed since the last spill, plus
//!   tombstones), compacting base + deltas into a fresh base once
//!   [`RegistryConfig::compact_threshold`] deltas accumulate;
//! * **background refresh** — [`SnapshotRegistry::refresh`] rescans the
//!   snapshot directory for files that appeared (or changed) after
//!   `open`, indexing them and folding them into resident entries,
//!   skipping files whose (mtime, length) stamp is unchanged since the
//!   last scan; [`RefreshTicker`] runs that on an interval in the
//!   background;
//! * **cross-process serving** — the [`daemon`] module is `tlrd`: a
//!   blocking, thread-per-connection server exposing the registry over
//!   a Unix-domain socket with the framed, checksummed, versioned
//!   [`proto`] protocol (`Hello`/`Get`/`Publish`/`Stats`/`Refresh`),
//!   and [`RemoteRegistry`] is the client that mirrors the in-process
//!   API, so `TraceReuseEngine::new_warm` warm-starts from a daemon
//!   exactly as it would from a local snapshot directory. The wire
//!   format is documented normatively in `docs/PROTOCOL.md`.
//!
//! The `tlrsim serve --snapshots DIR` subcommand drives a registry over
//! every built-in workload in parallel, or hosts it as a daemon with
//! `--listen SOCK`; `tlrsim run --remote SOCK` is the client side;
//! `reproduce fleet` measures the solo-warm vs merged-warm reuse gap
//! the pooling buys, and `reproduce daemon` checks that N concurrent
//! client processes warm-started from one daemon finish with
//! architectural-state digests identical to the in-process path.

pub mod daemon;
pub mod proto;
pub mod registry;
pub mod remote;

pub use daemon::{Daemon, DaemonHandle, RefreshTicker};
pub use proto::{ErrorCode, ProtoError, PROTOCOL_VERSION};
pub use registry::{
    EntryStats, RefreshOutcome, RegistryConfig, RegistryStats, ServeError, SnapshotRegistry,
    SpillKind, SpillOutcome, SNAPSHOT_FILE_EXT,
};
pub use remote::RemoteRegistry;
