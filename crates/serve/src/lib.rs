#![warn(missing_docs)]
//! # tlr-serve — a sharded registry of warm RTMs
//!
//! The paper's Reuse Trace Memory is per-run state; `tlr-persist` made
//! it durable. This crate makes it **servable**: a long-lived process
//! hosting many programs' reuse state at once keeps a
//! [`SnapshotRegistry`] — an in-process cache mapping *program
//! fingerprint → resident [`tlr_core::ReuseTraceMemory`]*, sharded
//! across worker threads by fingerprint so concurrent fetches for
//! different programs do not contend on one lock.
//!
//! Capabilities:
//!
//! * **get-or-warm-load** — [`SnapshotRegistry::get`] returns the
//!   resident reuse state for a fingerprint, loading (and pooling — see
//!   below) the snapshot files of that program from the registry's
//!   snapshot directory on first touch;
//! * **snapshot merging** — a directory may hold *several* runs'
//!   snapshots of the same program; the registry merges them on load
//!   ([`tlr_core::RtmSnapshot::merge`]), so a fleet of runs pools its
//!   reuse state instead of each run warming alone;
//! * **publish-back** — a finished run contributes its RTM export back
//!   via [`SnapshotRegistry::publish`], refreshing the resident entry
//!   in place for the next run of that program;
//! * **LRU bounding** — each shard keeps at most a configured number of
//!   resident RTMs, evicting the least recently fetched entry, so a
//!   registry serving thousands of programs stays within memory budget;
//! * **replacement policy** — [`RegistryConfig::policy`] selects the
//!   [`tlr_core::ReplacementPolicy`] every pooling merge (load-time and
//!   publish-back) resolves capacity contention under, ranking traces
//!   by their persisted provenance for the non-recency policies;
//! * **per-entry stats** — hits, misses, and refreshes per fingerprint
//!   ([`EntryStats`]), plus hit-weighted residency gauges
//!   ([`EntryStats::resident_hits`]: how much *observed* reuse the
//!   resident state represents) and registry-wide aggregates
//!   ([`RegistryStats`]).
//!
//! The `tlrsim serve --snapshots DIR` subcommand drives a registry over
//! every built-in workload in parallel; `reproduce fleet` measures the
//! solo-warm vs merged-warm reuse gap the pooling buys.

pub mod registry;

pub use registry::{
    EntryStats, RegistryConfig, RegistryStats, ServeError, SnapshotRegistry, SNAPSHOT_FILE_EXT,
};
