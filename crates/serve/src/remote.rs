//! `RemoteRegistry` — the client side of the `tlrd` protocol.
//!
//! Mirrors the in-process [`SnapshotRegistry`](crate::SnapshotRegistry) API (`get` / `publish` /
//! `stats` / `refresh`, same signatures modulo the transport) so a
//! simulator warms up from a daemon with the same three lines it would
//! use against a local snapshot directory:
//!
//! ```no_run
//! use tlr_serve::RemoteRegistry;
//! let remote = RemoteRegistry::connect(std::path::Path::new("/tmp/tlrd.sock")).unwrap();
//! if let Some(snapshot) = remote.get(0xfeed).unwrap() {
//!     // TraceReuseEngine::new_warm(&program, config, &snapshot)
//! }
//! ```
//!
//! One connection, one session: requests are serialized over an
//! internal mutex, so a `RemoteRegistry` can be shared across threads
//! (they queue rather than interleave frames). The server answers
//! request errors with named [`crate::proto::ErrorCode`]s, surfaced
//! here as [`crate::proto::ProtoError::Remote`] inside
//! [`ServeError::Proto`].

use crate::proto::{self, ProtoError, Reply, Request, PROTOCOL_VERSION};
use crate::registry::{RefreshOutcome, RegistryStats, ServeError};
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::{Arc, Mutex};
use tlr_core::RtmSnapshot;

struct Session {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Session {
    fn exchange(&mut self, request: &Request) -> Result<Reply, ProtoError> {
        proto::write_request(&mut self.writer, request)?;
        match proto::read_reply(&mut self.reader)? {
            Some(Reply::Error { code, message }) => Err(ProtoError::Remote { code, message }),
            Some(reply) => Ok(reply),
            None => Err(ProtoError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server hung up mid-request",
            ))),
        }
    }
}

/// A connection to a `tlrd` daemon, API-compatible with the in-process
/// [`SnapshotRegistry`](crate::SnapshotRegistry). See the module docs.
pub struct RemoteRegistry {
    session: Mutex<Session>,
    /// Program count the server reported at Hello.
    programs: u64,
}

impl RemoteRegistry {
    /// Connect to the daemon listening on `path` and negotiate the
    /// protocol version.
    pub fn connect(path: &Path) -> Result<RemoteRegistry, ServeError> {
        let stream = UnixStream::connect(path).map_err(|e| {
            ServeError::Proto(ProtoError::Io(std::io::Error::new(
                e.kind(),
                format!("cannot connect to {}: {e}", path.display()),
            )))
        })?;
        let reader = BufReader::new(stream.try_clone().map_err(ProtoError::Io)?);
        let mut session = Session {
            reader,
            writer: stream,
        };
        let reply = session.exchange(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        let programs = match reply {
            Reply::HelloOk { version, programs } if version == PROTOCOL_VERSION => programs,
            Reply::HelloOk { version, .. } => {
                return Err(ProtoError::UnsupportedVersion {
                    peer: version,
                    ours: PROTOCOL_VERSION,
                }
                .into())
            }
            other => return Err(unexpected(&other, "HelloOk").into()),
        };
        Ok(RemoteRegistry {
            session: Mutex::new(session),
            programs,
        })
    }

    /// Programs the daemon's snapshot index knew at connect time.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// The warm reuse state for `fingerprint`, as
    /// [`SnapshotRegistry::get`](crate::SnapshotRegistry::get): `Ok(None)` when the daemon has
    /// nothing for the program and the caller runs cold.
    pub fn get(&self, fingerprint: u64) -> Result<Option<Arc<RtmSnapshot>>, ServeError> {
        let reply = self
            .session
            .lock()
            .unwrap()
            .exchange(&Request::Get { fingerprint })?;
        match reply {
            Reply::Snapshot {
                fingerprint: fp,
                snapshot,
            } => {
                if fp != fingerprint {
                    return Err(ProtoError::Corrupt(format!(
                        "asked for fingerprint {fingerprint:#x}, server answered for {fp:#x}"
                    ))
                    .into());
                }
                Ok(snapshot.map(Arc::new))
            }
            other => Err(unexpected(&other, "Snapshot").into()),
        }
    }

    /// The warm reuse state for `fingerprint`, falling back to shape
    /// resolution on the daemon side, as
    /// [`SnapshotRegistry::get_by_shape`](crate::SnapshotRegistry::get_by_shape):
    /// a data-varied client passes its program's shape fingerprint and
    /// warm-starts from another seed's published RTM when its exact
    /// fingerprint is unknown. `Ok(None)` when neither resolves.
    pub fn get_by_shape(
        &self,
        fingerprint: u64,
        shape: u64,
    ) -> Result<Option<Arc<RtmSnapshot>>, ServeError> {
        let reply = self
            .session
            .lock()
            .unwrap()
            .exchange(&Request::GetShape { fingerprint, shape })?;
        match reply {
            Reply::Snapshot {
                fingerprint: fp,
                snapshot,
            } => {
                if fp != fingerprint {
                    return Err(ProtoError::Corrupt(format!(
                        "asked for fingerprint {fingerprint:#x}, server answered for {fp:#x}"
                    ))
                    .into());
                }
                Ok(snapshot.map(Arc::new))
            }
            other => Err(unexpected(&other, "Snapshot").into()),
        }
    }

    /// Contribute a finished run's RTM export, as
    /// [`SnapshotRegistry::publish`](crate::SnapshotRegistry::publish).
    pub fn publish(&self, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<(), ServeError> {
        let reply = self.session.lock().unwrap().exchange(&Request::Publish {
            fingerprint,
            snapshot: snapshot.clone(),
        })?;
        match reply {
            Reply::PublishOk => Ok(()),
            other => Err(unexpected(&other, "PublishOk").into()),
        }
    }

    /// Registry-wide aggregates, as [`SnapshotRegistry::stats`](crate::SnapshotRegistry::stats).
    pub fn stats(&self) -> Result<RegistryStats, ServeError> {
        let reply = self.session.lock().unwrap().exchange(&Request::Stats)?;
        match reply {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other, "Stats").into()),
        }
    }

    /// Ask the daemon to rescan its snapshot directory now, as
    /// [`SnapshotRegistry::refresh`](crate::SnapshotRegistry::refresh).
    pub fn refresh(&self) -> Result<RefreshOutcome, ServeError> {
        let reply = self.session.lock().unwrap().exchange(&Request::Refresh)?;
        match reply {
            Reply::RefreshOk {
                new_files,
                refreshed,
                skipped,
                unchanged,
            } => Ok(RefreshOutcome {
                new_files,
                refreshed,
                skipped,
                unchanged,
            }),
            other => Err(unexpected(&other, "RefreshOk").into()),
        }
    }
}

fn unexpected(reply: &Reply, expected: &'static str) -> ProtoError {
    let found = match reply {
        Reply::HelloOk { .. } => proto::TAG_HELLO_OK,
        Reply::Snapshot { .. } => proto::TAG_SNAPSHOT,
        Reply::PublishOk => proto::TAG_PUBLISH_OK,
        Reply::Stats(_) => proto::TAG_STATS_OK,
        Reply::RefreshOk { .. } => proto::TAG_REFRESH_OK,
        Reply::Error { .. } => proto::TAG_ERROR,
    };
    ProtoError::UnexpectedReply { found, expected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::Daemon;
    use crate::registry::{RegistryConfig, SnapshotRegistry};
    use std::path::PathBuf;
    use tlr_core::{RtmConfig, TraceRecord};
    use tlr_isa::Loc;
    use tlr_persist::save_snapshot;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tlr-remote-unit").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_of(v: u64) -> RtmSnapshot {
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(TraceRecord {
            start_pc: 8,
            next_pc: 10,
            len: 2,
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
            mix: Default::default(),
        });
        rtm.export()
    }

    #[test]
    fn remote_mirrors_in_process_registry() {
        let dir = temp_dir("mirror");
        save_snapshot(&dir.join("p.tlrsnap"), 1, &snapshot_of(5)).unwrap();
        let registry = Arc::new(SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap());
        let sock = dir.join("tlrd.sock");
        let daemon = Daemon::bind(&sock, Arc::clone(&registry)).unwrap();
        let handle = daemon.handle();
        let server = std::thread::spawn(move || daemon.run());

        let remote = RemoteRegistry::connect(&sock).unwrap();
        assert_eq!(remote.programs(), 1);

        // get: served state is byte-identical to the in-process path.
        let via_socket = remote.get(1).unwrap().expect("snapshot on disk");
        let in_process = registry.get(1).unwrap().unwrap();
        assert_eq!(*via_socket, *in_process);
        assert!(remote.get(999).unwrap().is_none());

        // publish round-trips and refreshes the resident entry.
        remote.publish(1, &snapshot_of(6)).unwrap();
        assert_eq!(remote.get(1).unwrap().unwrap().len(), 2);

        // publish with mismatched geometry: named remote error, session
        // survives.
        let bad = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_4K).export();
        match remote.publish(1, &bad) {
            Err(ServeError::Proto(ProtoError::Remote { code, .. })) => {
                assert_eq!(code, crate::proto::ErrorCode::Merge);
            }
            other => panic!("expected a remote Merge error, got {other:?}"),
        }

        // stats and refresh still answer on the same session. The Get
        // requests above were served from the image cache, and those
        // counters travel the wire too.
        let stats = remote.stats().unwrap();
        assert!(stats.hits + stats.misses >= 3);
        assert!(
            stats.image_builds >= 1,
            "daemon Get skipped the image cache"
        );
        let outcome = remote.refresh().unwrap();
        assert_eq!(
            (outcome.new_files, outcome.refreshed, outcome.skipped),
            (0, 0, 0)
        );
        assert_eq!(outcome.unchanged, 1, "known file not stamp-skipped");

        drop(remote);
        handle.shutdown();
        server.join().unwrap().unwrap();
    }
}
