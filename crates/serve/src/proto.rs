//! The `tlrd` wire protocol: framed request/reply messages over a
//! byte stream (in practice a Unix-domain socket).
//!
//! Everything here is transport-agnostic `Read`/`Write` code so the
//! fuzz tests can drive the codec over in-memory buffers. The layout is
//! documented normatively in `docs/PROTOCOL.md`, which a test in this
//! module checks against the constants below — change one, change both.
//!
//! ## Framing
//!
//! Every message travels in one frame (integers little-endian, like the
//! `tlr-persist` file formats whose wire helpers this module reuses):
//!
//! | field | size |
//! |---|---|
//! | payload length | u32 |
//! | payload | `length` bytes |
//! | checksum (FxHash64 of the payload) | u64 |
//!
//! A zero or over-[`MAX_MESSAGE`] length and a checksum mismatch are
//! framing errors: the peer's stream can no longer be trusted, so the
//! connection is closed rather than resynchronized.
//!
//! ## Messages
//!
//! The payload's first byte is the message tag; requests use the low
//! tag space, replies the high one. A session starts with
//! [`Request::Hello`] (magic + the client's protocol version); the
//! server answers [`Reply::HelloOk`] with the version it will speak or
//! a [`Reply::Error`] with [`ErrorCode::UnsupportedVersion`]. Snapshots
//! travel inside [`Request::Publish`] / [`Reply::Snapshot`] as a
//! complete `tlr-persist` snapshot file image, so both checked headers
//! and both validation layers (geometry bounds, per-record I/O caps)
//! protect the daemon exactly as they protect an on-disk load.

use crate::registry::RegistryStats;
use std::io::{Read, Write};
use tlr_core::RtmSnapshot;
use tlr_persist::snapshot::{read_snapshot, write_snapshot};
use tlr_persist::{wire, PersistError};
use tlr_util::fxhash::FxHasher64;

/// Magic the Hello request opens with, rejecting non-`tlrd` peers.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"TLRD";

/// The protocol version this build speaks. Version 2 widened the
/// `StatsOk` reply to nine counters (image-cache hits/builds/
/// invalidations) and `RefreshOk` to four (stamp-unchanged files).
/// Version 3 added the `GetShape` request (fingerprint + shape
/// fingerprint, answered with the existing `Snapshot` reply) and
/// widened `StatsOk` to eleven counters (shape hits/rejects).
pub const PROTOCOL_VERSION: u16 = 3;

/// Cap on one message payload (64 MiB): larger than any snapshot the
/// persist layer's geometry bounds admit, small enough that a corrupt
/// length prefix can never trigger a huge allocation.
pub const MAX_MESSAGE: u32 = 1 << 26;

/// Request tag: Hello (magic + u16 client protocol version).
pub const TAG_HELLO: u8 = 0x01;
/// Request tag: Get (u64 fingerprint).
pub const TAG_GET: u8 = 0x02;
/// Request tag: Publish (snapshot file image).
pub const TAG_PUBLISH: u8 = 0x03;
/// Request tag: Stats (empty body).
pub const TAG_STATS: u8 = 0x04;
/// Request tag: Refresh (empty body).
pub const TAG_REFRESH: u8 = 0x05;
/// Request tag: GetShape (u64 fingerprint + u64 shape fingerprint; v3+).
pub const TAG_GET_SHAPE: u8 = 0x06;
/// Reply tag: HelloOk (u16 negotiated version + u64 indexed programs).
pub const TAG_HELLO_OK: u8 = 0x81;
/// Reply tag: Snapshot (u8 present flag + snapshot file image).
pub const TAG_SNAPSHOT: u8 = 0x82;
/// Reply tag: PublishOk (empty body).
pub const TAG_PUBLISH_OK: u8 = 0x83;
/// Reply tag: Stats (eleven u64 registry counters).
pub const TAG_STATS_OK: u8 = 0x84;
/// Reply tag: RefreshOk (u64 new files + u64 refreshed + u64 skipped +
/// u64 unchanged).
pub const TAG_REFRESH_OK: u8 = 0x85;
/// Reply tag: Error (u16 code + UTF-8 message).
pub const TAG_ERROR: u8 = 0xff;

/// Why the server refused a request (the numeric value is the wire
/// encoding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The client's protocol version is not supported.
    UnsupportedVersion = 1,
    /// The request was malformed (unknown tag, short or trailing
    /// bytes).
    BadRequest = 2,
    /// The first message of a session was not a Hello.
    HelloRequired = 3,
    /// A snapshot failed to decode or a disk load failed.
    Persist = 4,
    /// A published snapshot's geometry disagrees with resident state.
    Merge = 5,
    /// The server failed internally.
    Internal = 6,
}

impl ErrorCode {
    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::UnsupportedVersion),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::HelloRequired),
            4 => Some(ErrorCode::Persist),
            5 => Some(ErrorCode::Merge),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable name, as used in `docs/PROTOCOL.md`.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::HelloRequired => "HELLO_REQUIRED",
            ErrorCode::Persist => "PERSIST",
            ErrorCode::Merge => "MERGE",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Every defined code, in wire-value order.
    pub const ALL: [ErrorCode; 6] = [
        ErrorCode::UnsupportedVersion,
        ErrorCode::BadRequest,
        ErrorCode::HelloRequired,
        ErrorCode::Persist,
        ErrorCode::Merge,
        ErrorCode::Internal,
    ];
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), *self as u16)
    }
}

/// Why a protocol exchange failed.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as a protocol message.
    Corrupt(String),
    /// An embedded snapshot failed to encode or decode.
    Persist(PersistError),
    /// Hello negotiation failed: the peer speaks a version this build
    /// does not.
    UnsupportedVersion {
        /// Version the peer offered.
        peer: u16,
        /// Version this build speaks.
        ours: u16,
    },
    /// The server answered with a named error reply.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The server's human-readable message.
        message: String,
    },
    /// The server sent a reply of the wrong kind for the request.
    UnexpectedReply {
        /// Tag of the reply that arrived.
        found: u8,
        /// What the request called for.
        expected: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol transport error: {e}"),
            ProtoError::Corrupt(msg) => write!(f, "corrupt protocol frame: {msg}"),
            ProtoError::Persist(e) => write!(f, "embedded snapshot: {e}"),
            ProtoError::UnsupportedVersion { peer, ours } => write!(
                f,
                "peer speaks protocol version {peer}, this build speaks {ours}"
            ),
            ProtoError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ProtoError::UnexpectedReply { found, expected } => {
                write!(f, "expected a {expected} reply, got tag {found:#04x}")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<PersistError> for ProtoError {
    fn from(e: PersistError) -> Self {
        ProtoError::Persist(e)
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session: protocol magic plus the client's version.
    Hello {
        /// The client's protocol version.
        version: u16,
    },
    /// Fetch the pooled warm state for a program.
    Get {
        /// Program fingerprint
        /// ([`tlr_persist::program_fingerprint`]).
        fingerprint: u64,
    },
    /// Contribute a finished run's RTM export back to the registry.
    Publish {
        /// The program the snapshot belongs to.
        fingerprint: u64,
        /// The run's exported reuse state.
        snapshot: RtmSnapshot,
    },
    /// Read registry-wide counters.
    Stats,
    /// Rescan the snapshot directory for new files now.
    Refresh,
    /// Fetch the pooled warm state for a program, falling back to
    /// *shape resolution* (v3+): when the exact fingerprint is unknown,
    /// the server pools the published state of programs sharing the
    /// same nonzero shape fingerprint (same code, different data) and
    /// serves that. Answered with [`Reply::Snapshot`].
    GetShape {
        /// Program fingerprint
        /// ([`tlr_persist::program_fingerprint`]).
        fingerprint: u64,
        /// Program shape fingerprint
        /// ([`tlr_persist::program_shape_fingerprint`]); 0 disables
        /// the fallback.
        shape: u64,
    },
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The session is open.
    HelloOk {
        /// The version the server will speak (= the client's, today).
        version: u16,
        /// Programs the server's snapshot index knows.
        programs: u64,
    },
    /// Answer to [`Request::Get`]: the pooled state, or `None` when
    /// the program is neither resident nor on disk.
    Snapshot {
        /// The fingerprint the state belongs to.
        fingerprint: u64,
        /// The pooled warm state, if any.
        snapshot: Option<RtmSnapshot>,
    },
    /// Answer to [`Request::Publish`].
    PublishOk,
    /// Answer to [`Request::Stats`].
    Stats(RegistryStats),
    /// Answer to [`Request::Refresh`].
    RefreshOk {
        /// Snapshot files discovered and indexed.
        new_files: u64,
        /// Resident entries that absorbed new or changed files.
        refreshed: u64,
        /// Files skipped as unreadable/mid-write.
        skipped: u64,
        /// Known files skipped because their (mtime, length) stamp
        /// matched the previous scan.
        unchanged: u64,
    },
    /// The request failed; the session stays open unless the failure
    /// was a framing error.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---- framing --------------------------------------------------------------

/// Write one checksummed frame around `payload`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.is_empty() || payload.len() > MAX_MESSAGE as usize {
        return Err(ProtoError::Corrupt(format!(
            "refusing to send a {}-byte payload (cap {MAX_MESSAGE})",
            payload.len()
        )));
    }
    let mut h = FxHasher64::new();
    std::hash::Hasher::write(&mut h, payload);
    let mut out = Vec::with_capacity(payload.len() + 12);
    wire::put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    wire::put_u64(&mut out, std::hash::Hasher::finish(&h));
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

/// Read one checksummed frame. `Ok(None)` on clean EOF *before* the
/// length prefix (the peer hung up between messages); EOF anywhere else
/// is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_MESSAGE {
        return Err(ProtoError::Corrupt(format!(
            "frame length {len} outside (0, {MAX_MESSAGE}]"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut h = FxHasher64::new();
    std::hash::Hasher::write(&mut h, &payload);
    let mut sum_buf = [0u8; 8];
    r.read_exact(&mut sum_buf)?;
    if u64::from_le_bytes(sum_buf) != std::hash::Hasher::finish(&h) {
        return Err(ProtoError::Corrupt("frame checksum mismatch".into()));
    }
    Ok(Some(payload))
}

// ---- codecs ---------------------------------------------------------------

fn snapshot_bytes(fingerprint: u64, snapshot: &RtmSnapshot) -> Result<Vec<u8>, ProtoError> {
    let mut bytes = Vec::with_capacity(64 + snapshot.len() * 64);
    write_snapshot(&mut bytes, fingerprint, snapshot)?;
    Ok(bytes)
}

fn decode_snapshot(
    slice: &mut &[u8],
    expected_fingerprint: Option<u64>,
) -> Result<(u64, RtmSnapshot), ProtoError> {
    let (fingerprint, snapshot) = read_snapshot(slice, expected_fingerprint)?;
    Ok((fingerprint, snapshot))
}

fn expect_drained(slice: &[u8], what: &str) -> Result<(), ProtoError> {
    if slice.is_empty() {
        Ok(())
    } else {
        Err(ProtoError::Corrupt(format!(
            "{} stray bytes after {what}",
            slice.len()
        )))
    }
}

/// Encode a request into a frame payload.
pub fn encode_request(request: &Request) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match request {
        Request::Hello { version } => {
            wire::put_u8(&mut out, TAG_HELLO);
            out.extend_from_slice(&PROTOCOL_MAGIC);
            wire::put_u16(&mut out, *version);
        }
        Request::Get { fingerprint } => {
            wire::put_u8(&mut out, TAG_GET);
            wire::put_u64(&mut out, *fingerprint);
        }
        Request::Publish {
            fingerprint,
            snapshot,
        } => {
            wire::put_u8(&mut out, TAG_PUBLISH);
            out.extend_from_slice(&snapshot_bytes(*fingerprint, snapshot)?);
        }
        Request::Stats => wire::put_u8(&mut out, TAG_STATS),
        Request::Refresh => wire::put_u8(&mut out, TAG_REFRESH),
        Request::GetShape { fingerprint, shape } => {
            wire::put_u8(&mut out, TAG_GET_SHAPE);
            wire::put_u64(&mut out, *fingerprint);
            wire::put_u64(&mut out, *shape);
        }
    }
    Ok(out)
}

/// Decode a request from a frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut slice = payload;
    let tag = wire::get_u8(&mut slice).map_err(|_| ProtoError::Corrupt("empty payload".into()))?;
    let short = |what: &str| ProtoError::Corrupt(format!("short {what} request"));
    match tag {
        TAG_HELLO => {
            let mut magic = [0u8; 4];
            slice.read_exact(&mut magic).map_err(|_| short("Hello"))?;
            if magic != PROTOCOL_MAGIC {
                return Err(ProtoError::Corrupt(format!(
                    "Hello magic {magic:02x?} is not {PROTOCOL_MAGIC:02x?}"
                )));
            }
            let version = wire::get_u16(&mut slice).map_err(|_| short("Hello"))?;
            expect_drained(slice, "Hello")?;
            Ok(Request::Hello { version })
        }
        TAG_GET => {
            let fingerprint = wire::get_u64(&mut slice).map_err(|_| short("Get"))?;
            expect_drained(slice, "Get")?;
            Ok(Request::Get { fingerprint })
        }
        TAG_PUBLISH => {
            let (fingerprint, snapshot) = decode_snapshot(&mut slice, None)?;
            expect_drained(slice, "Publish")?;
            Ok(Request::Publish {
                fingerprint,
                snapshot,
            })
        }
        TAG_STATS => {
            expect_drained(slice, "Stats")?;
            Ok(Request::Stats)
        }
        TAG_REFRESH => {
            expect_drained(slice, "Refresh")?;
            Ok(Request::Refresh)
        }
        TAG_GET_SHAPE => {
            let fingerprint = wire::get_u64(&mut slice).map_err(|_| short("GetShape"))?;
            let shape = wire::get_u64(&mut slice).map_err(|_| short("GetShape"))?;
            expect_drained(slice, "GetShape")?;
            Ok(Request::GetShape { fingerprint, shape })
        }
        other => Err(ProtoError::Corrupt(format!(
            "unknown request tag {other:#04x}"
        ))),
    }
}

/// Encode a [`Reply::Snapshot`] payload directly from a borrowed
/// snapshot. The daemon answers `Get` from shared (`Arc`) resident
/// state; this path serializes it without first deep-cloning the
/// snapshot into an owned [`Reply`].
pub fn encode_snapshot_reply(
    fingerprint: u64,
    snapshot: Option<&RtmSnapshot>,
) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    wire::put_u8(&mut out, TAG_SNAPSHOT);
    match snapshot {
        Some(snapshot) => {
            wire::put_u8(&mut out, 1);
            out.extend_from_slice(&snapshot_bytes(fingerprint, snapshot)?);
        }
        None => {
            wire::put_u8(&mut out, 0);
            wire::put_u64(&mut out, fingerprint);
        }
    }
    Ok(out)
}

/// Encode a [`Reply::Snapshot`] payload from an already-serialized
/// snapshot file image — the zero-copy `Get` path: the daemon serves
/// the registry's cached image bytes without touching the snapshot
/// structure at all. `image` must be a complete snapshot file image
/// (as [`SnapshotRegistry::get_image`](crate::SnapshotRegistry::get_image)
/// returns); only the 2-byte tag/present prefix is prepended.
pub fn encode_snapshot_reply_image(fingerprint: u64, image: Option<&[u8]>) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + image.map_or(8, <[u8]>::len));
    wire::put_u8(&mut out, TAG_SNAPSHOT);
    match image {
        Some(image) => {
            wire::put_u8(&mut out, 1);
            out.extend_from_slice(image);
        }
        None => {
            wire::put_u8(&mut out, 0);
            wire::put_u64(&mut out, fingerprint);
        }
    }
    out
}

/// Encode a reply into a frame payload.
pub fn encode_reply(reply: &Reply) -> Result<Vec<u8>, ProtoError> {
    let mut out = Vec::new();
    match reply {
        Reply::HelloOk { version, programs } => {
            wire::put_u8(&mut out, TAG_HELLO_OK);
            wire::put_u16(&mut out, *version);
            wire::put_u64(&mut out, *programs);
        }
        Reply::Snapshot {
            fingerprint,
            snapshot,
        } => return encode_snapshot_reply(*fingerprint, snapshot.as_ref()),
        Reply::PublishOk => wire::put_u8(&mut out, TAG_PUBLISH_OK),
        Reply::Stats(stats) => {
            wire::put_u8(&mut out, TAG_STATS_OK);
            for v in [
                stats.resident,
                stats.hits,
                stats.misses,
                stats.refreshes,
                stats.evicted,
                stats.unknown,
                stats.image_hits,
                stats.image_builds,
                stats.image_invalidations,
                stats.shape_hits,
                stats.shape_rejects,
            ] {
                wire::put_u64(&mut out, v);
            }
        }
        Reply::RefreshOk {
            new_files,
            refreshed,
            skipped,
            unchanged,
        } => {
            wire::put_u8(&mut out, TAG_REFRESH_OK);
            wire::put_u64(&mut out, *new_files);
            wire::put_u64(&mut out, *refreshed);
            wire::put_u64(&mut out, *skipped);
            wire::put_u64(&mut out, *unchanged);
        }
        Reply::Error { code, message } => {
            wire::put_u8(&mut out, TAG_ERROR);
            wire::put_u16(&mut out, *code as u16);
            out.extend_from_slice(message.as_bytes());
        }
    }
    Ok(out)
}

/// Decode a reply from a frame payload.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtoError> {
    let mut slice = payload;
    let tag = wire::get_u8(&mut slice).map_err(|_| ProtoError::Corrupt("empty payload".into()))?;
    let short = |what: &str| ProtoError::Corrupt(format!("short {what} reply"));
    match tag {
        TAG_HELLO_OK => {
            let version = wire::get_u16(&mut slice).map_err(|_| short("HelloOk"))?;
            let programs = wire::get_u64(&mut slice).map_err(|_| short("HelloOk"))?;
            expect_drained(slice, "HelloOk")?;
            Ok(Reply::HelloOk { version, programs })
        }
        TAG_SNAPSHOT => {
            let present = wire::get_u8(&mut slice).map_err(|_| short("Snapshot"))?;
            let (fingerprint, snapshot) = match present {
                0 => (
                    wire::get_u64(&mut slice).map_err(|_| short("Snapshot"))?,
                    None,
                ),
                1 => {
                    let (fp, snap) = decode_snapshot(&mut slice, None)?;
                    (fp, Some(snap))
                }
                other => {
                    return Err(ProtoError::Corrupt(format!(
                        "Snapshot present flag is {other}, expected 0 or 1"
                    )))
                }
            };
            expect_drained(slice, "Snapshot")?;
            Ok(Reply::Snapshot {
                fingerprint,
                snapshot,
            })
        }
        TAG_PUBLISH_OK => {
            expect_drained(slice, "PublishOk")?;
            Ok(Reply::PublishOk)
        }
        TAG_STATS_OK => {
            let mut get = || wire::get_u64(&mut slice).map_err(|_| short("Stats"));
            let stats = RegistryStats {
                resident: get()?,
                hits: get()?,
                misses: get()?,
                refreshes: get()?,
                evicted: get()?,
                unknown: get()?,
                image_hits: get()?,
                image_builds: get()?,
                image_invalidations: get()?,
                shape_hits: get()?,
                shape_rejects: get()?,
            };
            expect_drained(slice, "Stats")?;
            Ok(Reply::Stats(stats))
        }
        TAG_REFRESH_OK => {
            let mut get = || wire::get_u64(&mut slice).map_err(|_| short("RefreshOk"));
            let (new_files, refreshed, skipped, unchanged) = (get()?, get()?, get()?, get()?);
            expect_drained(slice, "RefreshOk")?;
            Ok(Reply::RefreshOk {
                new_files,
                refreshed,
                skipped,
                unchanged,
            })
        }
        TAG_ERROR => {
            let raw = wire::get_u16(&mut slice).map_err(|_| short("Error"))?;
            let code = ErrorCode::from_u16(raw)
                .ok_or_else(|| ProtoError::Corrupt(format!("unknown error code {raw}")))?;
            let message = String::from_utf8(slice.to_vec())
                .map_err(|_| ProtoError::Corrupt("error message is not UTF-8".into()))?;
            Ok(Reply::Error { code, message })
        }
        other => Err(ProtoError::Corrupt(format!(
            "unknown reply tag {other:#04x}"
        ))),
    }
}

/// Send one request as a frame.
pub fn write_request(w: &mut impl Write, request: &Request) -> Result<(), ProtoError> {
    write_frame(w, &encode_request(request)?)
}

/// Receive one request; `Ok(None)` on clean EOF.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(decode_request(&payload)?)),
        None => Ok(None),
    }
}

/// Send one reply as a frame.
pub fn write_reply(w: &mut impl Write, reply: &Reply) -> Result<(), ProtoError> {
    write_frame(w, &encode_reply(reply)?)
}

/// Receive one reply; `Ok(None)` on clean EOF.
pub fn read_reply(r: &mut impl Read) -> Result<Option<Reply>, ProtoError> {
    match read_frame(r)? {
        Some(payload) => Ok(Some(decode_reply(&payload)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::{RtmConfig, TraceRecord};
    use tlr_isa::Loc;

    fn sample_snapshot() -> RtmSnapshot {
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 0..5u64 {
            rtm.insert(TraceRecord {
                start_pc: 8 + v as u32 * 4,
                next_pc: 16 + v as u32 * 4,
                len: 2,
                ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
                outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
                mix: Default::default(),
            });
        }
        rtm.export()
    }

    #[test]
    fn requests_roundtrip() {
        for request in [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Get {
                fingerprint: 0xfeed,
            },
            Request::Publish {
                fingerprint: 7,
                snapshot: sample_snapshot(),
            },
            Request::Stats,
            Request::Refresh,
            Request::GetShape {
                fingerprint: 0xfeed,
                shape: 0xbeef,
            },
        ] {
            let mut buf = Vec::new();
            write_request(&mut buf, &request).unwrap();
            let again = read_request(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(again, request);
        }
    }

    #[test]
    fn replies_roundtrip() {
        for reply in [
            Reply::HelloOk {
                version: 1,
                programs: 14,
            },
            Reply::Snapshot {
                fingerprint: 9,
                snapshot: Some(sample_snapshot()),
            },
            Reply::Snapshot {
                fingerprint: 9,
                snapshot: None,
            },
            Reply::PublishOk,
            Reply::Stats(RegistryStats {
                resident: 1,
                hits: 2,
                misses: 3,
                refreshes: 4,
                evicted: 5,
                unknown: 6,
                image_hits: 7,
                image_builds: 8,
                image_invalidations: 9,
                shape_hits: 10,
                shape_rejects: 11,
            }),
            Reply::RefreshOk {
                new_files: 2,
                refreshed: 1,
                skipped: 0,
                unchanged: 3,
            },
            Reply::Error {
                code: ErrorCode::Merge,
                message: "geometry mismatch".into(),
            },
        ] {
            let mut buf = Vec::new();
            write_reply(&mut buf, &reply).unwrap();
            let again = read_reply(&mut buf.as_slice()).unwrap().unwrap();
            assert_eq!(again, reply);
        }
    }

    #[test]
    fn clean_eof_is_none_midframe_eof_is_error() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats).unwrap();
        for cut in 1..buf.len() {
            assert!(
                read_frame(&mut &buf[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut pristine = Vec::new();
        write_request(
            &mut pristine,
            &Request::Publish {
                fingerprint: 3,
                snapshot: sample_snapshot(),
            },
        )
        .unwrap();
        // Flip one bit at a spread of positions: every damaged frame
        // must fail framing, decoding, or snapshot validation — never
        // decode to the original.
        for pos in (0..pristine.len()).step_by(7) {
            let mut buf = pristine.clone();
            buf[pos] ^= 0x10;
            match read_request(&mut buf.as_slice()) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(
                    decoded,
                    Some(Request::Publish {
                        fingerprint: 3,
                        snapshot: sample_snapshot(),
                    }),
                    "bit flip at {pos} went unnoticed"
                ),
            }
        }
    }

    #[test]
    fn unknown_tags_and_bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x42]).unwrap();
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(ProtoError::Corrupt(_))
        ));

        let mut payload = vec![TAG_HELLO];
        payload.extend_from_slice(b"NOPE");
        payload.extend_from_slice(&1u16.to_le_bytes());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert!(matches!(
            read_request(&mut buf.as_slice()),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        wire::put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn error_codes_roundtrip_and_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
            assert!(seen.insert(code as u16), "duplicate wire value");
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    /// The normative protocol document must stay in sync with the wire
    /// constants: every tag, error code, the version, and the caps are
    /// checked against `docs/PROTOCOL.md` verbatim.
    #[test]
    fn protocol_doc_matches_wire_constants() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let mut expect = vec![
            format!("version is **{PROTOCOL_VERSION}**"),
            format!("`\"TLRD\"`"),
            format!("{} MiB", MAX_MESSAGE >> 20),
        ];
        for (tag, name) in [
            (TAG_HELLO, "Hello"),
            (TAG_GET, "Get"),
            (TAG_PUBLISH, "Publish"),
            (TAG_STATS, "Stats"),
            (TAG_REFRESH, "Refresh"),
            (TAG_GET_SHAPE, "GetShape"),
            (TAG_HELLO_OK, "HelloOk"),
            (TAG_SNAPSHOT, "Snapshot"),
            (TAG_PUBLISH_OK, "PublishOk"),
            (TAG_STATS_OK, "StatsOk"),
            (TAG_REFRESH_OK, "RefreshOk"),
            (TAG_ERROR, "Error"),
        ] {
            expect.push(format!("| `0x{tag:02x}` | `{name}`"));
        }
        for code in ErrorCode::ALL {
            expect.push(format!("| {} | `{}`", code as u16, code.name()));
        }
        for needle in expect {
            assert!(
                doc.contains(&needle),
                "docs/PROTOCOL.md is out of sync with the wire constants: \
                 missing {needle:?}"
            );
        }
    }
}
