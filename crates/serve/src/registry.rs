//! The sharded snapshot registry.
//!
//! Concurrency model: the fingerprint → path index is built at
//! [`SnapshotRegistry::open`] and extended only by
//! [`SnapshotRegistry::refresh`], so it sits behind an `RwLock` that is
//! almost always read-locked. Resident state lives in `N` shards, each
//! a `Mutex` over its own map; a fingerprint is pinned to one shard by
//! a remix of its bits, so fetches for different programs contend only
//! when they land on the same shard (1/N of the time). Snapshot files
//! are loaded and merged *outside* the shard lock — a slow disk never
//! stalls other programs on the shard — with a double-check on insert
//! so a racing loader's result is reused instead of clobbered. The
//! index lock and a shard lock are never held at the same time.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use tlr_core::{ReplacementPolicy, ReuseTraceMemory, RtmSnapshot};
use tlr_persist::{
    load_merged_snapshots_tuned, load_snapshot, peek_snapshot_fingerprint, PersistError,
};
use tlr_util::{FxHashMap, FxHashSet};

/// File extension the directory scan considers ([`SnapshotRegistry::open`]):
/// binary RTM snapshots only; JSON debug dumps are ignored.
pub const SNAPSHOT_FILE_EXT: &str = "tlrsnap";

/// Registry sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Number of shards (one lock each). Use at least the expected
    /// number of concurrently serving threads.
    pub shards: usize,
    /// Resident RTMs a shard may hold before evicting its least
    /// recently fetched entry.
    pub max_resident_per_shard: usize,
    /// Replacement policy applied when pooling reuse state: both the
    /// merge-on-load of several snapshot files and every publish-back
    /// merge resolve capacity contention under this policy, ranking by
    /// the persisted per-trace provenance for the non-recency policies.
    pub policy: ReplacementPolicy,
    /// LFU aging half-life (ticks) used by every pooling merge when
    /// `policy` is [`ReplacementPolicy::Lfu`]; the other policies
    /// ignore it. Defaults to [`tlr_core::LFU_HALF_LIFE`].
    pub lfu_half_life: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            max_resident_per_shard: 64,
            policy: ReplacementPolicy::Lru,
            lfu_half_life: tlr_core::LFU_HALF_LIFE,
        }
    }
}

/// Per-entry behaviour counters and residency gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntryStats {
    /// Fetches answered from the resident entry.
    pub hits: u64,
    /// Fetches that had to load from the snapshot directory.
    pub misses: u64,
    /// Publish-back merges applied to the resident entry.
    pub refreshes: u64,
    /// Traces resident for this program (gauge, refreshed on every
    /// load/publish).
    pub resident_traces: u64,
    /// Hit-weighted residency: the sum of resident traces' provenance
    /// hit counts — how much *observed* reuse the resident state
    /// represents, not just how many traces it holds (gauge).
    pub resident_hits: u64,
}

/// Registry-wide aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// RTMs currently resident across all shards.
    pub resident: u64,
    /// Sum of per-entry hits (evicted entries included).
    pub hits: u64,
    /// Sum of per-entry misses (evicted entries included).
    pub misses: u64,
    /// Sum of per-entry refreshes (evicted entries included).
    pub refreshes: u64,
    /// Resident entries evicted by the LRU bound.
    pub evicted: u64,
    /// Fetches for fingerprints with no snapshot on disk.
    pub unknown: u64,
}

/// What one [`SnapshotRegistry::refresh`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// Snapshot files discovered and indexed this pass.
    pub new_files: u64,
    /// Resident entries that absorbed newly discovered files.
    pub refreshed: u64,
    /// Files with the snapshot extension that could not be indexed this
    /// pass (unreadable or mid-write); they are left unindexed and will
    /// be retried on the next refresh.
    pub skipped: u64,
}

/// Why the registry could not serve.
#[derive(Debug)]
pub enum ServeError {
    /// A snapshot file failed to load, validate, or merge.
    Persist(PersistError),
    /// A published snapshot's geometry disagrees with the resident
    /// entry's.
    Merge(tlr_core::MergeError),
    /// A `tlrd` protocol exchange failed (see [`crate::proto`]).
    Proto(crate::proto::ProtoError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "{e}"),
            ServeError::Merge(e) => write!(f, "{e}"),
            ServeError::Proto(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::Merge(e) => Some(e),
            ServeError::Proto(e) => Some(e),
        }
    }
}

impl From<crate::proto::ProtoError> for ServeError {
    fn from(e: crate::proto::ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<tlr_core::MergeError> for ServeError {
    fn from(e: tlr_core::MergeError) -> Self {
        ServeError::Merge(e)
    }
}

/// One resident program: its warm RTM, the export handed to engines,
/// and behaviour counters.
struct Entry {
    /// Canonical resident reuse state; publish-back merges into it.
    rtm: ReuseTraceMemory,
    /// Cached export of `rtm`, shared with engines cheaply. Rebuilt on
    /// refresh.
    snap: Arc<RtmSnapshot>,
    stats: EntryStats,
    /// Fetch-recency stamp for the shard's LRU bound.
    last_touch: u64,
}

#[derive(Default)]
struct Shard {
    entries: FxHashMap<u64, Entry>,
    tick: u64,
    /// Stats of entries that were evicted, so aggregates never go
    /// backwards.
    retired: EntryStats,
}

impl Shard {
    fn touch(&mut self, fingerprint: u64) -> Option<&mut Entry> {
        self.tick += 1;
        let entry = self.entries.get_mut(&fingerprint)?;
        entry.last_touch = self.tick;
        Some(entry)
    }

    /// Enforce the LRU bound after an insert. Returns entries evicted.
    fn enforce_bound(&mut self, max_resident: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > max_resident.max(1) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(fp, _)| *fp)
                .expect("len > 1, so a victim exists");
            if let Some(e) = self.entries.remove(&victim) {
                self.retired.hits += e.stats.hits;
                self.retired.misses += e.stats.misses;
                self.retired.refreshes += e.stats.refreshes;
            }
            evicted += 1;
        }
        evicted
    }
}

/// The fingerprint → snapshot-file index, extended by refresh passes.
#[derive(Default)]
struct Index {
    /// fingerprint → snapshot files of that program, in deterministic
    /// (sorted-path) order so merge MRU priority is stable.
    by_fingerprint: FxHashMap<u64, Vec<PathBuf>>,
    /// Every path indexed so far, so a refresh scan can cheaply tell
    /// new files from known ones.
    files: FxHashSet<PathBuf>,
}

impl Index {
    fn add(&mut self, fingerprint: u64, path: PathBuf) {
        let paths = self.by_fingerprint.entry(fingerprint).or_default();
        paths.push(path.clone());
        paths.sort();
        self.files.insert(path);
    }
}

/// A concurrent, sharded cache of warm RTMs keyed by program
/// fingerprint, backed by a directory of `.tlrsnap` files. See the
/// crate docs for the full model.
pub struct SnapshotRegistry {
    config: RegistryConfig,
    /// The snapshot directory, rescanned by [`SnapshotRegistry::refresh`].
    dir: PathBuf,
    index: RwLock<Index>,
    /// Serializes [`SnapshotRegistry::refresh`] passes (see its docs).
    refresh_serial: Mutex<()>,
    shards: Vec<Mutex<Shard>>,
    evicted: AtomicU64,
    unknown: AtomicU64,
}

/// Scan `dir` for snapshot files, sorted for deterministic merge order.
fn scan_snapshot_files(dir: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(PersistError::from)?
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(PersistError::from)?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| {
            p.is_file()
                && p.extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e.eq_ignore_ascii_case(SNAPSHOT_FILE_EXT))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

impl SnapshotRegistry {
    /// Build a registry over `dir`: every `*.tlrsnap` file is indexed
    /// by the fingerprint in its header (a 16-byte read per file; no
    /// traces are deserialized until a program is actually fetched).
    /// Several files may carry the same fingerprint — they are merged
    /// at first fetch. Non-snapshot extensions are ignored; a file with
    /// the snapshot extension but an invalid header is a hard error.
    pub fn open(dir: &Path, config: RegistryConfig) -> Result<Self, ServeError> {
        let mut index = Index::default();
        for path in scan_snapshot_files(dir)? {
            let fingerprint = peek_snapshot_fingerprint(&path)?;
            index.add(fingerprint, path);
        }
        Ok(Self {
            shards: (0..config.shards.max(1))
                .map(|_| Mutex::default())
                .collect(),
            config,
            dir: dir.to_path_buf(),
            index: RwLock::new(index),
            refresh_serial: Mutex::new(()),
            evicted: AtomicU64::new(0),
            unknown: AtomicU64::new(0),
        })
    }

    /// The snapshot directory this registry was opened over.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fingerprints the snapshot directory holds state for (sorted).
    pub fn fingerprints(&self) -> Vec<u64> {
        let index = self.index.read().unwrap();
        let mut fps: Vec<u64> = index.by_fingerprint.keys().copied().collect();
        fps.sort_unstable();
        fps
    }

    /// Snapshot files indexed for `fingerprint`.
    pub fn paths(&self, fingerprint: u64) -> Vec<PathBuf> {
        self.index
            .read()
            .unwrap()
            .by_fingerprint
            .get(&fingerprint)
            .cloned()
            .unwrap_or_default()
    }

    /// Rescan the snapshot directory for files that appeared after
    /// [`open`](SnapshotRegistry::open) (or the last refresh): new
    /// files are validated, indexed, and any whose program is currently
    /// *resident* are merged into the resident entry immediately — so a
    /// long-lived registry (or a `tlrd` daemon) picks up snapshots
    /// other processes drop into the directory without a restart.
    ///
    /// Ordering is deliberate, per file: a new file is **fully loaded
    /// and validated before it is indexed**, so an unreadable,
    /// mid-write, or damaged file is skipped (and counted) this pass
    /// and retried on the next one instead of poisoning later fetches;
    /// and a resident entry absorbs the new state **before** the file
    /// becomes visible to [`get`](SnapshotRegistry::get), so a racing
    /// fetch can never load a file that is then merged a second time.
    /// Refresh passes are serialized against each other for the same
    /// reason.
    pub fn refresh(&self) -> Result<RefreshOutcome, ServeError> {
        let _pass = self.refresh_serial.lock().unwrap();
        let on_disk = scan_snapshot_files(&self.dir)?;
        let unknown: Vec<PathBuf> = {
            let index = self.index.read().unwrap();
            on_disk
                .into_iter()
                .filter(|p| !index.files.contains(p))
                .collect()
        };
        let mut outcome = RefreshOutcome::default();
        if unknown.is_empty() {
            return Ok(outcome);
        }
        // Validation loads happen outside every lock: disk latency must
        // not stall index readers or the shards.
        let mut discovered: FxHashMap<u64, Vec<(PathBuf, RtmSnapshot)>> = FxHashMap::default();
        for path in unknown {
            match load_snapshot(&path, None) {
                Ok((fingerprint, snapshot)) => discovered
                    .entry(fingerprint)
                    .or_default()
                    .push((path, snapshot)),
                Err(_) => outcome.skipped += 1,
            }
        }
        // Per fingerprint: pool the new files, fold them into the
        // resident entry if there is one, then (and only then) index.
        // A failure affects its own fingerprint only; the first one is
        // reported after every other fingerprint has been processed.
        let mut first_err: Option<ServeError> = None;
        for (fingerprint, entries) in discovered {
            let (paths, snapshots): (Vec<PathBuf>, Vec<RtmSnapshot>) = entries.into_iter().unzip();
            let pooled = match self.pool(&snapshots) {
                Ok(pooled) => pooled,
                Err(e) => {
                    outcome.skipped += paths.len() as u64;
                    first_err.get_or_insert(e.into());
                    continue;
                }
            };
            match self.merge_into_resident(fingerprint, &pooled) {
                Ok(true) => outcome.refreshed += 1,
                Ok(false) => {}
                Err(e) => {
                    outcome.skipped += paths.len() as u64;
                    first_err.get_or_insert(e);
                    continue;
                }
            }
            let mut index = self.index.write().unwrap();
            for path in paths {
                index.add(fingerprint, path);
                outcome.new_files += 1;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Pool several snapshots under the registry's policy and LFU
    /// half-life — the one merge rule every path (load, refresh,
    /// publish) shares.
    fn pool(&self, snapshots: &[RtmSnapshot]) -> Result<RtmSnapshot, tlr_core::MergeError> {
        Ok(RtmSnapshot::merge_detailed_tuned(
            snapshots,
            self.config.policy,
            self.config.lfu_half_life,
        )?
        .snapshot)
    }

    /// Import a snapshot into a resident RTM tuned to the registry's
    /// policy and LFU half-life.
    fn import(&self, snapshot: &RtmSnapshot) -> ReuseTraceMemory {
        ReuseTraceMemory::import_with(snapshot, self.config.policy)
            .with_lfu_half_life(self.config.lfu_half_life)
    }

    fn shard_of(&self, fingerprint: u64) -> &Mutex<Shard> {
        // The fingerprint is already a hash; remix so shard choice does
        // not depend on its low bits alone.
        let mixed = (fingerprint ^ (fingerprint >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// The warm reuse state for `fingerprint`: the resident entry on a
    /// hit — whether it became resident via a disk load or via
    /// [`publish`](SnapshotRegistry::publish) — otherwise loaded (and,
    /// when several files exist, merged) from the snapshot directory.
    /// `Ok(None)` when the program is neither resident nor on disk —
    /// the caller runs cold.
    ///
    /// The returned [`RtmSnapshot`] is shared (`Arc`) and immutable;
    /// feed it to [`tlr_core::TraceReuseEngine::new_warm`].
    pub fn get(&self, fingerprint: u64) -> Result<Option<Arc<RtmSnapshot>>, ServeError> {
        // Resident state first: a program that only ever arrived via
        // publish-back has no snapshot file but must still be served.
        {
            let mut shard = self.shard_of(fingerprint).lock().unwrap();
            if let Some(entry) = shard.touch(fingerprint) {
                entry.stats.hits += 1;
                return Ok(Some(Arc::clone(&entry.snap)));
            }
        }
        let paths = self.paths(fingerprint);
        if paths.is_empty() {
            self.unknown.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        // Miss: load and merge outside the lock, under the configured
        // policy.
        let (_, merged) = load_merged_snapshots_tuned(
            &paths,
            Some(fingerprint),
            self.config.policy,
            self.config.lfu_half_life,
        )?;
        let loaded = Entry {
            rtm: self.import(&merged),
            stats: EntryStats {
                misses: 1,
                resident_traces: merged.len() as u64,
                resident_hits: merged.total_hits(),
                ..EntryStats::default()
            },
            snap: Arc::new(merged),
            last_touch: 0,
        };
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(entry) = shard.touch(fingerprint) {
            // A racing fetch resolved the miss first; use its entry.
            entry.stats.hits += 1;
            return Ok(Some(Arc::clone(&entry.snap)));
        }
        shard.tick += 1;
        let tick = shard.tick;
        let snap = Arc::clone(&loaded.snap);
        shard.entries.insert(
            fingerprint,
            Entry {
                last_touch: tick,
                ..loaded
            },
        );
        let evicted = shard.enforce_bound(self.config.max_resident_per_shard);
        drop(shard);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(Some(snap))
    }

    /// Merge `snapshot` into an already-locked resident `entry` under
    /// the registry policy, refreshing its cached export and gauges.
    fn merge_into_entry(
        &self,
        entry: &mut Entry,
        snapshot: &RtmSnapshot,
    ) -> Result<(), ServeError> {
        if entry.rtm.config() != snapshot.config {
            return Err(tlr_core::MergeError::GeometryMismatch {
                first: entry.rtm.config(),
                other: snapshot.config,
            }
            .into());
        }
        // The proper interleaved union, not a sequential replay: a
        // near-capacity publish must not wholesale-evict the pooled
        // hot state of every prior run. The configured policy
        // decides what survives contention.
        let merged = self.pool(&[entry.rtm.export(), snapshot.clone()])?;
        entry.rtm = self.import(&merged);
        entry.stats.resident_traces = merged.len() as u64;
        entry.stats.resident_hits = merged.total_hits();
        entry.snap = Arc::new(merged);
        entry.stats.refreshes += 1;
        Ok(())
    }

    /// Merge `snapshot` into the resident entry for `fingerprint`, if
    /// one exists. Returns whether the program was resident. Shared by
    /// [`publish`](SnapshotRegistry::publish) and
    /// [`refresh`](SnapshotRegistry::refresh).
    fn merge_into_resident(
        &self,
        fingerprint: u64,
        snapshot: &RtmSnapshot,
    ) -> Result<bool, ServeError> {
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        let Some(entry) = shard.touch(fingerprint) else {
            return Ok(false);
        };
        self.merge_into_entry(entry, snapshot)?;
        Ok(true)
    }

    /// Contribute a finished run's RTM export back to the registry:
    /// merged into the resident entry (creating one if the program is
    /// not resident), so the *next* fetch serves the pooled state of
    /// every run so far. In-memory only — writing refreshed snapshots
    /// back to the directory is a planned follow-up.
    pub fn publish(&self, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<(), ServeError> {
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(entry) = shard.touch(fingerprint) {
            return self.merge_into_entry(entry, snapshot);
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(
            fingerprint,
            Entry {
                rtm: self.import(snapshot),
                snap: Arc::new(snapshot.clone()),
                stats: EntryStats {
                    refreshes: 1,
                    resident_traces: snapshot.len() as u64,
                    resident_hits: snapshot.total_hits(),
                    ..EntryStats::default()
                },
                last_touch: tick,
            },
        );
        let evicted = shard.enforce_bound(self.config.max_resident_per_shard);
        drop(shard);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Behaviour counters for one resident program, `None` if it is not
    /// (or no longer) resident.
    pub fn entry_stats(&self, fingerprint: u64) -> Option<EntryStats> {
        let shard = self.shard_of(fingerprint).lock().unwrap();
        shard.entries.get(&fingerprint).map(|e| e.stats)
    }

    /// Registry-wide aggregates. Counters of evicted entries are folded
    /// in, so hits/misses/refreshes are lifetime totals.
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            evicted: self.evicted.load(Ordering::Relaxed),
            unknown: self.unknown.load(Ordering::Relaxed),
            ..RegistryStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            stats.resident += shard.entries.len() as u64;
            stats.hits += shard.retired.hits;
            stats.misses += shard.retired.misses;
            stats.refreshes += shard.retired.refreshes;
            for entry in shard.entries.values() {
                stats.hits += entry.stats.hits;
                stats.misses += entry.stats.misses;
                stats.refreshes += entry.stats.refreshes;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::{RtmConfig, TraceRecord};
    use tlr_isa::Loc;
    use tlr_persist::save_snapshot;

    fn rec(pc: u32, v: u64) -> TraceRecord {
        TraceRecord {
            start_pc: pc,
            next_pc: pc + 2,
            len: 2,
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
            mix: Default::default(),
        }
    }

    fn snapshot_of(records: &[TraceRecord]) -> RtmSnapshot {
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        for r in records {
            rtm.insert(r.clone());
        }
        rtm.export()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("tlr-serve-registry-unit")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_warm_loads_and_caches() {
        let dir = temp_dir("warm-load");
        save_snapshot(&dir.join("p1.tlrsnap"), 1, &snapshot_of(&[rec(8, 5)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.fingerprints(), vec![1]);

        let first = registry.get(1).unwrap().expect("snapshot on disk");
        assert_eq!(first.len(), 1);
        let second = registry.get(1).unwrap().unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second fetch not served resident"
        );
        let stats = registry.entry_stats(1).unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        assert!(registry.get(999).unwrap().is_none());
        assert_eq!(registry.stats().unknown, 1);
    }

    #[test]
    fn multiple_files_for_one_fingerprint_merge_on_load() {
        let dir = temp_dir("pooled");
        save_snapshot(&dir.join("run-a.tlrsnap"), 7, &snapshot_of(&[rec(8, 1)])).unwrap();
        save_snapshot(
            &dir.join("run-b.tlrsnap"),
            7,
            &snapshot_of(&[rec(8, 2), rec(40, 3)]),
        )
        .unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.paths(7).len(), 2);
        let snap = registry.get(7).unwrap().unwrap();
        assert_eq!(snap.len(), 3, "union of both runs");
    }

    #[test]
    fn publish_refreshes_resident_state() {
        let dir = temp_dir("publish");
        save_snapshot(&dir.join("p.tlrsnap"), 3, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.get(3).unwrap().unwrap().len(), 1);

        registry
            .publish(3, &snapshot_of(&[rec(8, 1), rec(8, 9)]))
            .unwrap();
        assert_eq!(registry.get(3).unwrap().unwrap().len(), 2);
        let stats = registry.entry_stats(3).unwrap();
        assert_eq!(stats.refreshes, 1);

        // Geometry disagreement is rejected loudly.
        let other = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_4K).export();
        assert!(matches!(
            registry.publish(3, &other),
            Err(ServeError::Merge(
                tlr_core::MergeError::GeometryMismatch { .. }
            ))
        ));

        // Publishing an unknown program makes it resident, and `get`
        // serves it even though no snapshot file exists for it.
        registry.publish(77, &snapshot_of(&[rec(4, 4)])).unwrap();
        assert_eq!(registry.entry_stats(77).unwrap().refreshes, 1);
        let unknown_before = registry.stats().unknown;
        let served = registry
            .get(77)
            .unwrap()
            .expect("published entry not served");
        assert_eq!(served.len(), 1);
        assert_eq!(registry.entry_stats(77).unwrap().hits, 1);
        assert_eq!(registry.stats().unknown, unknown_before);
    }

    #[test]
    fn lru_bound_evicts_least_recently_fetched() {
        let dir = temp_dir("lru");
        for fp in 1..=3u64 {
            save_snapshot(
                &dir.join(format!("p{fp}.tlrsnap")),
                fp,
                &snapshot_of(&[rec(8, fp)]),
            )
            .unwrap();
        }
        let registry = SnapshotRegistry::open(
            &dir,
            RegistryConfig {
                shards: 1,
                max_resident_per_shard: 2,
                ..RegistryConfig::default()
            },
        )
        .unwrap();
        registry.get(1).unwrap();
        registry.get(2).unwrap();
        registry.get(1).unwrap(); // 2 is now LRU
        registry.get(3).unwrap(); // evicts 2
        let stats = registry.stats();
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evicted, 1);
        assert!(registry.entry_stats(2).is_none());
        assert!(registry.entry_stats(1).is_some());
        // Lifetime hit/miss totals include the evicted entry's.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        // Refetching 2 reloads from disk.
        assert!(registry.get(2).unwrap().is_some());
        assert_eq!(registry.stats().misses, 4);
    }

    #[test]
    fn residency_gauges_expose_hit_weighted_state() {
        let dir = temp_dir("gauges");
        // A producer whose traces have real hit history.
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(8, 1));
        rtm.insert(rec(8, 2));
        for _ in 0..3 {
            assert!(rtm
                .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { 1 } else { 0 })
                .is_some());
        }
        save_snapshot(&dir.join("hot.tlrsnap"), 5, &rtm.export()).unwrap();

        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        registry.get(5).unwrap().unwrap();
        let stats = registry.entry_stats(5).unwrap();
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(stats.resident_hits, 3, "persisted hit history lost");

        // Publish-back folds in more observed reuse.
        let mut update = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        update.insert(rec(8, 1));
        for _ in 0..2 {
            assert!(update
                .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { 1 } else { 0 })
                .is_some());
        }
        registry.publish(5, &update.export()).unwrap();
        let stats = registry.entry_stats(5).unwrap();
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(stats.resident_hits, 5, "publish must absorb hit history");
    }

    #[test]
    fn policy_is_applied_to_pooling() {
        // Under capacity contention (per_pc = 4 at one PC), an LFU
        // registry keeps all of the publisher's hot traces over the
        // on-disk cold ones; an LRU registry's interleaved recency
        // merge keeps only half of them.
        let dir = temp_dir("policy");
        let cold: Vec<TraceRecord> = (0..4u64).map(|v| rec(8, v)).collect();
        save_snapshot(&dir.join("cold.tlrsnap"), 9, &snapshot_of(&cold)).unwrap();

        let mut hot_rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 100..104u64 {
            hot_rtm.insert(rec(8, v));
            for _ in 0..4 {
                assert!(hot_rtm
                    .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { v } else { 0 })
                    .is_some());
            }
        }
        let hot = hot_rtm.export();

        for (policy, expect_hot_survivors) in
            [(ReplacementPolicy::Lfu, 4), (ReplacementPolicy::Lru, 2)]
        {
            let registry = SnapshotRegistry::open(
                &dir,
                RegistryConfig {
                    policy,
                    ..RegistryConfig::default()
                },
            )
            .unwrap();
            registry.get(9).unwrap().unwrap();
            registry.publish(9, &hot).unwrap();
            let snap = registry.get(9).unwrap().unwrap();
            let hot_survivors = snap.traces.iter().filter(|t| t.ins[0].1 >= 100).count();
            assert_eq!(
                hot_survivors, expect_hot_survivors,
                "{policy}: hot traces lost in publish merge"
            );
            if policy == ReplacementPolicy::Lfu {
                // LFU keeps observed-reuse weight across the merge.
                assert_eq!(registry.entry_stats(9).unwrap().resident_hits, 16);
            }
        }
    }

    #[test]
    fn lfu_half_life_reaches_pooling_merges() {
        assert_eq!(
            RegistryConfig::default().lfu_half_life,
            tlr_core::LFU_HALF_LIFE
        );
        // The knob must not change *what state exists* for an
        // uncontended pool — only how contention is ranked — so a
        // registry tuned to an extreme half-life still pools and
        // publishes identically here.
        let dir = temp_dir("half-life");
        save_snapshot(&dir.join("p.tlrsnap"), 4, &snapshot_of(&[rec(8, 1)])).unwrap();
        for half_life in [1, u64::MAX] {
            let registry = SnapshotRegistry::open(
                &dir,
                RegistryConfig {
                    policy: ReplacementPolicy::Lfu,
                    lfu_half_life: half_life,
                    ..RegistryConfig::default()
                },
            )
            .unwrap();
            assert_eq!(registry.get(4).unwrap().unwrap().len(), 1, "{half_life}");
            registry
                .publish(4, &snapshot_of(&[rec(8, 1), rec(40, 2)]))
                .unwrap();
            assert_eq!(registry.get(4).unwrap().unwrap().len(), 2, "{half_life}");
        }
    }

    #[test]
    fn refresh_indexes_new_files_and_updates_resident_entries() {
        let dir = temp_dir("refresh");
        save_snapshot(&dir.join("p1.tlrsnap"), 1, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.refresh().unwrap(), RefreshOutcome::default());

        // Program 1 becomes resident; program 2 is never fetched.
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 1);

        // New files appear after open: more state for resident program
        // 1, a first file for unknown program 2, and one mid-write junk
        // file that must be skipped, not fatal.
        save_snapshot(&dir.join("p1-more.tlrsnap"), 1, &snapshot_of(&[rec(40, 2)])).unwrap();
        save_snapshot(&dir.join("p2.tlrsnap"), 2, &snapshot_of(&[rec(8, 3)])).unwrap();
        std::fs::write(dir.join("partial.tlrsnap"), b"TL").unwrap();

        let outcome = registry.refresh().unwrap();
        assert_eq!(outcome.new_files, 2);
        assert_eq!(outcome.refreshed, 1, "resident entry not refreshed");
        assert_eq!(outcome.skipped, 1, "mid-write file not skipped");

        // The resident entry absorbed the new file without a re-fetch.
        let stats = registry.entry_stats(1).unwrap();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 2);

        // The unknown program is now indexed and warm-loads on fetch.
        assert_eq!(registry.paths(2).len(), 1);
        assert_eq!(registry.get(2).unwrap().unwrap().len(), 1);

        // A second pass with nothing new (the junk file is retried and
        // skipped again, still not indexed).
        let outcome = registry.refresh().unwrap();
        assert_eq!((outcome.new_files, outcome.refreshed), (0, 0));
        assert_eq!(outcome.skipped, 1);
    }

    #[test]
    fn corrupt_snapshot_file_fails_open() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("bad.tlrsnap"), b"not a snapshot").unwrap();
        assert!(matches!(
            SnapshotRegistry::open(&dir, RegistryConfig::default()),
            Err(ServeError::Persist(PersistError::BadMagic { .. }))
        ));
    }
}
