//! The sharded snapshot registry.
//!
//! Concurrency model: the fingerprint → path index is built at
//! [`SnapshotRegistry::open`] and extended only by
//! [`SnapshotRegistry::refresh`], so it sits behind an `RwLock` that is
//! almost always read-locked. Resident state lives in `N` shards, each
//! a `Mutex` over its own map; a fingerprint is pinned to one shard by
//! a remix of its bits, so fetches for different programs contend only
//! when they land on the same shard (1/N of the time). Snapshot files
//! are loaded and merged *outside* the shard lock — a slow disk never
//! stalls other programs on the shard — with a double-check on insert
//! so a racing loader's result is reused instead of clobbered. The
//! index lock and a shard lock are never held at the same time.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;
use tlr_core::{ReplacementPolicy, ReuseTraceMemory, RtmSnapshot};
use tlr_persist::snapshot::write_snapshot;
use tlr_persist::{
    base_file_name, delta_file_name, delta_seq_from_path, diff_snapshots, group_digests,
    load_merged_snapshots_tuned, load_snapshot_payload, peek_snapshot_identity, save_delta_segment,
    save_snapshot_with, PersistError, SnapshotPayload, SnapshotWriteOptions,
};
use tlr_util::{FxHashMap, FxHashSet};

/// File extension the directory scan considers ([`SnapshotRegistry::open`]):
/// binary RTM snapshots only; JSON debug dumps are ignored.
pub const SNAPSHOT_FILE_EXT: &str = "tlrsnap";

/// Registry sizing and policy.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Number of shards (one lock each). Use at least the expected
    /// number of concurrently serving threads.
    pub shards: usize,
    /// Resident RTMs a shard may hold before evicting its least
    /// recently fetched entry.
    pub max_resident_per_shard: usize,
    /// Replacement policy applied when pooling reuse state: both the
    /// merge-on-load of several snapshot files and every publish-back
    /// merge resolve capacity contention under this policy, ranking by
    /// the persisted per-trace provenance for the non-recency policies.
    pub policy: ReplacementPolicy,
    /// LFU aging half-life (ticks) used by every pooling merge when
    /// `policy` is [`ReplacementPolicy::Lfu`]; the other policies
    /// ignore it. Defaults to [`tlr_core::LFU_HALF_LIFE`].
    pub lfu_half_life: u64,
    /// Delta segments a fingerprint may accumulate before
    /// [`spill`](SnapshotRegistry::spill) folds base + deltas into a
    /// fresh base file (LSM level-0 style).
    pub compact_threshold: usize,
    /// Run-length compress spilled files (deltas and compacted bases).
    pub compress_spills: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            max_resident_per_shard: 64,
            policy: ReplacementPolicy::Lru,
            lfu_half_life: tlr_core::LFU_HALF_LIFE,
            compact_threshold: 8,
            compress_spills: true,
        }
    }
}

/// Per-entry behaviour counters and residency gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntryStats {
    /// Fetches answered from the resident entry.
    pub hits: u64,
    /// Fetches that had to load from the snapshot directory.
    pub misses: u64,
    /// Publish-back merges applied to the resident entry.
    pub refreshes: u64,
    /// Traces resident for this program (gauge, refreshed on every
    /// load/publish).
    pub resident_traces: u64,
    /// Hit-weighted residency: the sum of resident traces' provenance
    /// hit counts — how much *observed* reuse the resident state
    /// represents, not just how many traces it holds (gauge).
    pub resident_hits: u64,
    /// Image fetches answered from the cached serialized image.
    pub image_hits: u64,
    /// Serialized images built (first fetch after load/invalidation).
    pub image_builds: u64,
    /// Cached images dropped because the resident state changed
    /// (publish/refresh merge).
    pub image_invalidations: u64,
    /// Fetches answered by *shape resolution*: the exact fingerprint was
    /// unknown, but another program with the same shape fingerprint
    /// (same code, different data) had published state this entry was
    /// warm-started from.
    pub shape_hits: u64,
}

/// Registry-wide aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// RTMs currently resident across all shards.
    pub resident: u64,
    /// Sum of per-entry hits (evicted entries included).
    pub hits: u64,
    /// Sum of per-entry misses (evicted entries included).
    pub misses: u64,
    /// Sum of per-entry refreshes (evicted entries included).
    pub refreshes: u64,
    /// Resident entries evicted by the LRU bound.
    pub evicted: u64,
    /// Fetches for fingerprints with no snapshot on disk.
    pub unknown: u64,
    /// Sum of per-entry image-cache hits (evicted entries included).
    pub image_hits: u64,
    /// Sum of per-entry image builds (evicted entries included).
    pub image_builds: u64,
    /// Sum of per-entry image invalidations (evicted entries included).
    pub image_invalidations: u64,
    /// Sum of per-entry shape-resolved fetches (evicted entries
    /// included): warm starts served to a data-varied client from
    /// another seed's published state.
    pub shape_hits: u64,
    /// Shape lookups that found same-shape donors but could not pool
    /// them (load or merge failure). Before these were counted, such a
    /// fetch was indistinguishable from an unknown program — the miss
    /// was silent.
    pub shape_rejects: u64,
}

/// What one [`SnapshotRegistry::refresh`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// Snapshot files discovered and indexed this pass.
    pub new_files: u64,
    /// Resident entries that absorbed newly discovered files.
    pub refreshed: u64,
    /// Files with the snapshot extension that could not be indexed this
    /// pass (unreadable or mid-write); they are left unindexed and will
    /// be retried on the next refresh.
    pub skipped: u64,
    /// Known files whose (mtime, length) stamp matched the last scan —
    /// not re-read at all this pass.
    pub unchanged: u64,
}

/// How [`SnapshotRegistry::spill`] persisted an entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillKind {
    /// The program is not resident, or nothing changed since the last
    /// spill — no bytes written.
    #[default]
    NoChange,
    /// A full base file was written (the entry had no durable state to
    /// diff against).
    Base,
    /// A delta segment holding only changed PC groups was appended next
    /// to the base.
    Delta,
    /// Accumulated deltas crossed
    /// [`RegistryConfig::compact_threshold`] and were folded into a
    /// fresh base; the superseded files were deleted.
    Compacted,
}

/// What one [`SnapshotRegistry::spill`] call wrote.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpillOutcome {
    /// The kind of write performed.
    pub kind: SpillKind,
    /// Bytes this spill put on disk (0 for [`SpillKind::NoChange`]).
    pub bytes_written: u64,
    /// Changed PC groups a delta spill carried.
    pub delta_groups: u64,
    /// Emptied PC groups a delta spill tombstoned.
    pub tombstones: u64,
    /// Superseded files a compaction deleted.
    pub removed_files: u64,
    /// The file written, if any.
    pub path: Option<PathBuf>,
}

/// Why the registry could not serve.
#[derive(Debug)]
pub enum ServeError {
    /// A snapshot file failed to load, validate, or merge.
    Persist(PersistError),
    /// A published snapshot's geometry disagrees with the resident
    /// entry's.
    Merge(tlr_core::MergeError),
    /// A `tlrd` protocol exchange failed (see [`crate::proto`]).
    Proto(crate::proto::ProtoError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "{e}"),
            ServeError::Merge(e) => write!(f, "{e}"),
            ServeError::Proto(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::Merge(e) => Some(e),
            ServeError::Proto(e) => Some(e),
        }
    }
}

impl From<crate::proto::ProtoError> for ServeError {
    fn from(e: crate::proto::ProtoError) -> Self {
        ServeError::Proto(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<tlr_core::MergeError> for ServeError {
    fn from(e: tlr_core::MergeError) -> Self {
        ServeError::Merge(e)
    }
}

/// Durable-state bookkeeping for incremental spills: what of this
/// entry is already on disk, and under which delta sequence the next
/// spill continues.
#[derive(Clone, Debug)]
struct SpillState {
    /// Per-PC-group digests of the state already durable on disk; the
    /// next spill diffs the resident snapshot against these.
    groups: BTreeMap<u32, u64>,
    /// Sequence number the next delta segment will carry.
    next_seq: u64,
    /// Delta files this registry has spilled (or loaded) for the
    /// fingerprint — when they reach the compaction threshold the next
    /// spill folds everything into a fresh base.
    delta_files: Vec<PathBuf>,
}

/// One resident program: its warm RTM, the export handed to engines,
/// and behaviour counters.
struct Entry {
    /// Canonical resident reuse state; publish-back merges into it.
    rtm: ReuseTraceMemory,
    /// Cached export of `rtm`, shared with engines cheaply. Rebuilt on
    /// refresh.
    snap: Arc<RtmSnapshot>,
    /// Cached serialized snapshot file image of `snap`, built lazily by
    /// [`SnapshotRegistry::get_image`] and dropped whenever `snap` is
    /// replaced.
    image: Option<Arc<[u8]>>,
    /// Bumped whenever `snap` is replaced, so an image serialized
    /// outside the shard lock is cached only if the state it encoded
    /// still stands.
    generation: u64,
    /// `None` until the entry's state has a durable representation to
    /// diff against (publish-born entries before their first spill).
    spill: Option<SpillState>,
    stats: EntryStats,
    /// Fetch-recency stamp for the shard's LRU bound.
    last_touch: u64,
}

impl Entry {
    /// Drop the cached image because `snap` was replaced.
    fn invalidate_image(&mut self) {
        self.generation += 1;
        if self.image.take().is_some() {
            self.stats.image_invalidations += 1;
        }
    }
}

#[derive(Default)]
struct Shard {
    entries: FxHashMap<u64, Entry>,
    tick: u64,
    /// Stats of entries that were evicted, so aggregates never go
    /// backwards.
    retired: EntryStats,
}

impl Shard {
    fn touch(&mut self, fingerprint: u64) -> Option<&mut Entry> {
        self.tick += 1;
        let entry = self.entries.get_mut(&fingerprint)?;
        entry.last_touch = self.tick;
        Some(entry)
    }

    /// Enforce the LRU bound after an insert. Returns entries evicted.
    fn enforce_bound(&mut self, max_resident: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > max_resident.max(1) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(fp, _)| *fp)
                .expect("len > 1, so a victim exists");
            if let Some(e) = self.entries.remove(&victim) {
                self.retired.hits += e.stats.hits;
                self.retired.misses += e.stats.misses;
                self.retired.refreshes += e.stats.refreshes;
                self.retired.image_hits += e.stats.image_hits;
                self.retired.image_builds += e.stats.image_builds;
                self.retired.image_invalidations += e.stats.image_invalidations;
                self.retired.shape_hits += e.stats.shape_hits;
            }
            evicted += 1;
        }
        evicted
    }
}

/// The (mtime, length) identity a refresh scan uses to tell whether a
/// known file changed without re-reading it.
type FileStamp = (SystemTime, u64);

/// Stat `path` into a [`FileStamp`]; `None` when the file vanished or
/// the filesystem reports no mtime (treated as "changed").
fn file_stamp(path: &Path) -> Option<FileStamp> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// The fingerprint → snapshot-file index, extended by refresh passes.
#[derive(Default)]
struct Index {
    /// fingerprint → snapshot files of that program, in deterministic
    /// (sorted-path) order so merge MRU priority is stable.
    by_fingerprint: FxHashMap<u64, Vec<PathBuf>>,
    /// shape fingerprint → value fingerprints of programs whose
    /// snapshots carry that shape (v6+ files only). Shape 0
    /// (value-pinned) is never indexed.
    by_shape: FxHashMap<u64, Vec<u64>>,
    /// Every path indexed so far, so a refresh scan can cheaply tell
    /// new files from known ones.
    files: FxHashSet<PathBuf>,
    /// Last-seen (mtime, length) per indexed path, so refresh skips
    /// files that have not changed since the previous scan.
    stamps: FxHashMap<PathBuf, FileStamp>,
}

impl Index {
    /// Index `path` under `fingerprint` (idempotent), record its
    /// current stamp, and — when the file carries a nonzero `shape` —
    /// register the fingerprint under that shape for cross-seed
    /// resolution.
    fn add(&mut self, fingerprint: u64, shape: u64, path: PathBuf) {
        let paths = self.by_fingerprint.entry(fingerprint).or_default();
        if !paths.contains(&path) {
            paths.push(path.clone());
            paths.sort();
        }
        if let Some(stamp) = file_stamp(&path) {
            self.stamps.insert(path.clone(), stamp);
        } else {
            self.stamps.remove(&path);
        }
        self.files.insert(path);
        self.add_shape(fingerprint, shape);
    }

    /// Register `fingerprint` under a nonzero shape (idempotent, sorted
    /// for deterministic donor order).
    fn add_shape(&mut self, fingerprint: u64, shape: u64) {
        if shape == 0 {
            return;
        }
        let fps = self.by_shape.entry(shape).or_default();
        if !fps.contains(&fingerprint) {
            fps.push(fingerprint);
            fps.sort_unstable();
        }
    }

    /// Value fingerprints sharing `shape`, excluding `not` (the asking
    /// program itself).
    fn shape_donors(&self, shape: u64, not: u64) -> Vec<u64> {
        if shape == 0 {
            return Vec::new();
        }
        self.by_shape
            .get(&shape)
            .map(|fps| fps.iter().copied().filter(|fp| *fp != not).collect())
            .unwrap_or_default()
    }

    /// Drop `path` from the index (compaction deleted it).
    fn forget(&mut self, fingerprint: u64, path: &Path) {
        if let Some(paths) = self.by_fingerprint.get_mut(&fingerprint) {
            paths.retain(|p| p != path);
            if paths.is_empty() {
                self.by_fingerprint.remove(&fingerprint);
            }
        }
        self.files.remove(path);
        self.stamps.remove(path);
    }
}

/// A concurrent, sharded cache of warm RTMs keyed by program
/// fingerprint, backed by a directory of `.tlrsnap` files. See the
/// crate docs for the full model.
pub struct SnapshotRegistry {
    config: RegistryConfig,
    /// The snapshot directory, rescanned by [`SnapshotRegistry::refresh`].
    dir: PathBuf,
    index: RwLock<Index>,
    /// Serializes [`SnapshotRegistry::refresh`] passes (see its docs).
    refresh_serial: Mutex<()>,
    shards: Vec<Mutex<Shard>>,
    evicted: AtomicU64,
    unknown: AtomicU64,
    /// Shape lookups that found same-shape donors but failed to pool
    /// them (see [`RegistryStats::shape_rejects`]).
    shape_rejects: AtomicU64,
}

/// Scan `dir` for snapshot files, sorted for deterministic merge order.
fn scan_snapshot_files(dir: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(PersistError::from)?
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(PersistError::from)?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| {
            p.is_file()
                && p.extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e.eq_ignore_ascii_case(SNAPSHOT_FILE_EXT))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

impl SnapshotRegistry {
    /// Build a registry over `dir`: every `*.tlrsnap` file is indexed
    /// by the fingerprint in its header (a 16-byte read per file; no
    /// traces are deserialized until a program is actually fetched).
    /// Several files may carry the same fingerprint — they are merged
    /// at first fetch. Non-snapshot extensions are ignored; a file with
    /// the snapshot extension but an invalid header is a hard error.
    pub fn open(dir: &Path, config: RegistryConfig) -> Result<Self, ServeError> {
        let mut index = Index::default();
        for path in scan_snapshot_files(dir)? {
            let (fingerprint, shape) = peek_snapshot_identity(&path)?;
            index.add(fingerprint, shape, path);
        }
        Ok(Self {
            shards: (0..config.shards.max(1))
                .map(|_| Mutex::default())
                .collect(),
            config,
            dir: dir.to_path_buf(),
            index: RwLock::new(index),
            refresh_serial: Mutex::new(()),
            evicted: AtomicU64::new(0),
            unknown: AtomicU64::new(0),
            shape_rejects: AtomicU64::new(0),
        })
    }

    /// The snapshot directory this registry was opened over.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fingerprints the snapshot directory holds state for (sorted).
    pub fn fingerprints(&self) -> Vec<u64> {
        let index = self.index.read().unwrap();
        let mut fps: Vec<u64> = index.by_fingerprint.keys().copied().collect();
        fps.sort_unstable();
        fps
    }

    /// Snapshot files indexed for `fingerprint`.
    pub fn paths(&self, fingerprint: u64) -> Vec<PathBuf> {
        self.index
            .read()
            .unwrap()
            .by_fingerprint
            .get(&fingerprint)
            .cloned()
            .unwrap_or_default()
    }

    /// Rescan the snapshot directory for files that appeared (or
    /// changed) after [`open`](SnapshotRegistry::open) or the last
    /// refresh: new and changed files are validated, indexed, and any
    /// whose program is currently *resident* are merged into the
    /// resident entry immediately — so a long-lived registry (or a
    /// `tlrd` daemon) picks up snapshots other processes drop into the
    /// directory without a restart. Known files whose (mtime, length)
    /// stamp matches the previous scan are counted as `unchanged` and
    /// not re-read at all. Delta segments contribute their changed
    /// groups (an absorb merge can only add state; tombstones matter
    /// only to the merge-on-load path).
    ///
    /// Ordering is deliberate, per file: a new file is **fully loaded
    /// and validated before it is indexed**, so an unreadable,
    /// mid-write, or damaged file is skipped (and counted) this pass
    /// and retried on the next one instead of poisoning later fetches;
    /// and a resident entry absorbs the new state **before** the file
    /// becomes visible to [`get`](SnapshotRegistry::get), so a racing
    /// fetch can never load a file that is then merged a second time.
    /// Refresh passes are serialized against each other for the same
    /// reason.
    pub fn refresh(&self) -> Result<RefreshOutcome, ServeError> {
        let _pass = self.refresh_serial.lock().unwrap();
        let on_disk = scan_snapshot_files(&self.dir)?;
        let mut outcome = RefreshOutcome::default();
        // Partition the scan against the index: unseen paths, known
        // paths whose stamp moved, and stamp-stable paths (skipped
        // without a read).
        let (new_paths, changed_paths) = {
            let index = self.index.read().unwrap();
            let mut new_paths = Vec::new();
            let mut changed_paths = Vec::new();
            for path in on_disk {
                if !index.files.contains(&path) {
                    new_paths.push(path);
                } else if file_stamp(&path)
                    .is_some_and(|fresh| index.stamps.get(&path) == Some(&fresh))
                {
                    outcome.unchanged += 1;
                } else {
                    changed_paths.push(path);
                }
            }
            (new_paths, changed_paths)
        };
        if new_paths.is_empty() && changed_paths.is_empty() {
            return Ok(outcome);
        }
        // Validation loads happen outside every lock: disk latency must
        // not stall index readers or the shards.
        let mut discovered: FxHashMap<u64, Vec<(PathBuf, RtmSnapshot, bool)>> =
            FxHashMap::default();
        for (path, known) in new_paths
            .into_iter()
            .map(|p| (p, false))
            .chain(changed_paths.into_iter().map(|p| (p, true)))
        {
            match load_snapshot_payload(&path, None) {
                Ok((fingerprint, SnapshotPayload::Full(snapshot))) => discovered
                    .entry(fingerprint)
                    .or_default()
                    .push((path, snapshot, known)),
                Ok((fingerprint, SnapshotPayload::Delta(delta))) => {
                    let partial = RtmSnapshot {
                        config: delta.config,
                        traces: delta.traces,
                        meta: delta.meta,
                        shape: 0,
                    };
                    discovered
                        .entry(fingerprint)
                        .or_default()
                        .push((path, partial, known));
                }
                Err(_) => outcome.skipped += 1,
            }
        }
        // Per fingerprint: pool the new state, fold it into the
        // resident entry if there is one, then (and only then) index
        // and stamp — a load error leaves a changed file's old stamp in
        // place so it is retried. A failure affects its own fingerprint
        // only; the first one is reported after every other fingerprint
        // has been processed.
        let mut first_err: Option<ServeError> = None;
        for (fingerprint, entries) in discovered {
            let mut paths_known = Vec::with_capacity(entries.len());
            let mut snapshots = Vec::with_capacity(entries.len());
            for (path, snapshot, known) in entries {
                paths_known.push((path, snapshot.shape, known));
                snapshots.push(snapshot);
            }
            let pooled = match self.pool(&snapshots) {
                Ok(pooled) => pooled,
                Err(e) => {
                    outcome.skipped += paths_known.len() as u64;
                    first_err.get_or_insert(e.into());
                    continue;
                }
            };
            match self.merge_into_resident(fingerprint, &pooled) {
                Ok(true) => outcome.refreshed += 1,
                Ok(false) => {}
                Err(e) => {
                    outcome.skipped += paths_known.len() as u64;
                    first_err.get_or_insert(e);
                    continue;
                }
            }
            let mut index = self.index.write().unwrap();
            for (path, shape, known) in paths_known {
                index.add(fingerprint, shape, path);
                if !known {
                    outcome.new_files += 1;
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Pool several snapshots under the registry's policy and LFU
    /// half-life — the one merge rule every path (load, refresh,
    /// publish) shares.
    fn pool(&self, snapshots: &[RtmSnapshot]) -> Result<RtmSnapshot, tlr_core::MergeError> {
        Ok(RtmSnapshot::merge_detailed_tuned(
            snapshots,
            self.config.policy,
            self.config.lfu_half_life,
        )?
        .snapshot)
    }

    /// Import a snapshot into a resident RTM tuned to the registry's
    /// policy and LFU half-life.
    fn import(&self, snapshot: &RtmSnapshot) -> ReuseTraceMemory {
        ReuseTraceMemory::import_with(snapshot, self.config.policy)
            .with_lfu_half_life(self.config.lfu_half_life)
    }

    fn shard_of(&self, fingerprint: u64) -> &Mutex<Shard> {
        // The fingerprint is already a hash; remix so shard choice does
        // not depend on its low bits alone.
        let mixed = (fingerprint ^ (fingerprint >> 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// The warm reuse state for `fingerprint`: the resident entry on a
    /// hit — whether it became resident via a disk load or via
    /// [`publish`](SnapshotRegistry::publish) — otherwise loaded (and,
    /// when several files exist, merged) from the snapshot directory.
    /// `Ok(None)` when the program is neither resident nor on disk —
    /// the caller runs cold.
    ///
    /// The returned [`RtmSnapshot`] is shared (`Arc`) and immutable;
    /// feed it to [`tlr_core::TraceReuseEngine::new_warm`].
    pub fn get(&self, fingerprint: u64) -> Result<Option<Arc<RtmSnapshot>>, ServeError> {
        // Resident state first: a program that only ever arrived via
        // publish-back has no snapshot file but must still be served.
        {
            let mut shard = self.shard_of(fingerprint).lock().unwrap();
            if let Some(entry) = shard.touch(fingerprint) {
                entry.stats.hits += 1;
                return Ok(Some(Arc::clone(&entry.snap)));
            }
        }
        let paths = self.paths(fingerprint);
        if paths.is_empty() {
            self.unknown.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        // Miss: load and merge outside the lock, under the configured
        // policy.
        let (_, merged) = load_merged_snapshots_tuned(
            &paths,
            Some(fingerprint),
            self.config.policy,
            self.config.lfu_half_life,
        )?;
        // The loaded state *is* the durable state: seed the spill
        // bookkeeping from it so the first publish-back spills a delta
        // against these files instead of a full rewrite.
        let spill = SpillState {
            groups: group_digests(&merged)?,
            next_seq: paths
                .iter()
                .filter_map(|p| delta_seq_from_path(p))
                .max()
                .map_or(1, |s| s + 1),
            delta_files: paths
                .iter()
                .filter(|p| delta_seq_from_path(p).is_some())
                .cloned()
                .collect(),
        };
        let loaded = Entry {
            rtm: self.import(&merged),
            stats: EntryStats {
                misses: 1,
                resident_traces: merged.len() as u64,
                resident_hits: merged.total_hits(),
                ..EntryStats::default()
            },
            snap: Arc::new(merged),
            image: None,
            generation: 0,
            spill: Some(spill),
            last_touch: 0,
        };
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(entry) = shard.touch(fingerprint) {
            // A racing fetch resolved the miss first; use its entry.
            entry.stats.hits += 1;
            return Ok(Some(Arc::clone(&entry.snap)));
        }
        shard.tick += 1;
        let tick = shard.tick;
        let snap = Arc::clone(&loaded.snap);
        shard.entries.insert(
            fingerprint,
            Entry {
                last_touch: tick,
                ..loaded
            },
        );
        let evicted = shard.enforce_bound(self.config.max_resident_per_shard);
        drop(shard);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(Some(snap))
    }

    /// [`get`](SnapshotRegistry::get), falling back to *shape
    /// resolution* when the exact fingerprint is unknown: programs
    /// whose published snapshots carry the same nonzero `shape`
    /// fingerprint (same code, different data image) donate their warm
    /// state, pooled under the registry's policy and installed as a
    /// resident entry under `fingerprint`. The shared traces are only
    /// *candidates* — the RTM's live-in value comparison validates
    /// every reuse at fetch time, so a donor's data-dependent traces
    /// can never corrupt the client's run.
    ///
    /// `Ok(None)` when neither the fingerprint nor any same-shape donor
    /// resolves. Donors that exist but fail to load or pool are not a
    /// silent miss: each such fetch is logged, counted in
    /// [`RegistryStats::shape_rejects`], and still returns `Ok(None)`.
    pub fn get_by_shape(
        &self,
        fingerprint: u64,
        shape: u64,
    ) -> Result<Option<Arc<RtmSnapshot>>, ServeError> {
        if let Some(snap) = self.get(fingerprint)? {
            return Ok(Some(snap));
        }
        if shape == 0 {
            return Ok(None);
        }
        let donors = self.index.read().unwrap().shape_donors(shape, fingerprint);
        if donors.is_empty() {
            return Ok(None);
        }
        // Pool every donor's warm state (resident or disk-loaded) under
        // the registry's policy. A donor that fails to load or a pool
        // that fails to merge is a *shape reject* — the fetch falls
        // back to cold, but visibly.
        let mut pooled_inputs = Vec::with_capacity(donors.len());
        for donor in &donors {
            match self.get(*donor) {
                Ok(Some(snap)) => pooled_inputs.push((*snap).clone()),
                Ok(None) => {}
                Err(e) => {
                    eprintln!(
                        "tlr-serve: shape {shape:#018x} donor {donor:#018x} \
                         failed to load for {fingerprint:#018x}: {e}"
                    );
                    self.shape_rejects.fetch_add(1, Ordering::Relaxed);
                    return Ok(None);
                }
            }
        }
        if pooled_inputs.is_empty() {
            eprintln!(
                "tlr-serve: shape {shape:#018x} has {} indexed donor(s) for \
                 {fingerprint:#018x} but none produced warm state",
                donors.len()
            );
            self.shape_rejects.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        let mut merged = match self.pool(&pooled_inputs) {
            Ok(merged) => merged,
            Err(e) => {
                eprintln!(
                    "tlr-serve: shape {shape:#018x} donors failed to pool for \
                     {fingerprint:#018x}: {e}"
                );
                self.shape_rejects.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
        };
        merged.shape = shape;
        // Install under the *client's* fingerprint so its own
        // publish-backs land on this entry. No spill seeding: the donor
        // files belong to the donors, and this entry's first spill must
        // write its own base.
        let entry = Entry {
            rtm: self.import(&merged),
            stats: EntryStats {
                misses: 1,
                shape_hits: 1,
                resident_traces: merged.len() as u64,
                resident_hits: merged.total_hits(),
                ..EntryStats::default()
            },
            snap: Arc::new(merged),
            image: None,
            generation: 0,
            spill: None,
            last_touch: 0,
        };
        self.index.write().unwrap().add_shape(fingerprint, shape);
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(existing) = shard.touch(fingerprint) {
            // A racing fetch resolved this fingerprint first.
            existing.stats.hits += 1;
            return Ok(Some(Arc::clone(&existing.snap)));
        }
        shard.tick += 1;
        let tick = shard.tick;
        let snap = Arc::clone(&entry.snap);
        shard.entries.insert(
            fingerprint,
            Entry {
                last_touch: tick,
                ..entry
            },
        );
        let evicted = shard.enforce_bound(self.config.max_resident_per_shard);
        drop(shard);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(Some(snap))
    }

    /// The serialized snapshot file image for `fingerprint` — the exact
    /// bytes [`tlr_persist::save_snapshot`] would write, and what the
    /// `tlrd` `Snapshot` reply embeds — from a per-entry cache, so
    /// repeated fetches share one immutable buffer instead of
    /// re-serializing the resident state per call. The image is built
    /// at most once per resident state: publish/refresh merges
    /// invalidate it (and bump the entry generation, so an image
    /// serialized outside the lock is never cached over newer state).
    /// `Ok(None)` mirrors [`get`](SnapshotRegistry::get).
    pub fn get_image(&self, fingerprint: u64) -> Result<Option<Arc<[u8]>>, ServeError> {
        let mut counted = false;
        loop {
            let staged = {
                let mut shard = self.shard_of(fingerprint).lock().unwrap();
                match shard.touch(fingerprint) {
                    Some(entry) => {
                        if !counted {
                            entry.stats.hits += 1;
                            counted = true;
                        }
                        if let Some(image) = &entry.image {
                            entry.stats.image_hits += 1;
                            return Ok(Some(Arc::clone(image)));
                        }
                        Some((Arc::clone(&entry.snap), entry.generation))
                    }
                    None => None,
                }
            };
            let Some((snap, generation)) = staged else {
                // Not resident: run the ordinary load-or-unknown path
                // (which does its own hit/miss accounting), then retry
                // the image build against the now-resident entry.
                if self.get(fingerprint)?.is_none() {
                    return Ok(None);
                }
                counted = true;
                continue;
            };
            // Serialize outside the shard lock — a large snapshot must
            // not stall other fetches on this shard.
            let mut bytes = Vec::with_capacity(64 + snap.len() * 64);
            write_snapshot(&mut bytes, fingerprint, &snap)?;
            let image: Arc<[u8]> = bytes.into();
            let mut shard = self.shard_of(fingerprint).lock().unwrap();
            match shard.entries.get_mut(&fingerprint) {
                Some(entry) if entry.generation == generation => {
                    entry.image = Some(Arc::clone(&image));
                    entry.stats.image_builds += 1;
                    return Ok(Some(image));
                }
                // The state moved while we serialized; rebuild.
                Some(_) => continue,
                // Evicted while we serialized: the bytes are still the
                // right answer, just not cacheable.
                None => return Ok(Some(image)),
            }
        }
    }

    /// Persist the resident entry for `fingerprint` incrementally:
    /// the first spill of a publish-born entry writes a full base
    /// file; later spills diff the resident state against the
    /// per-group digests of what is already durable and append a
    /// delta segment carrying only changed groups (plus tombstones
    /// for emptied ones). Once
    /// [`RegistryConfig::compact_threshold`] deltas accumulate, the
    /// next spill folds everything into a fresh base and deletes the
    /// superseded files (LSM level-0 style). An entry loaded from
    /// disk seeds its digests from the loaded state, so its first
    /// spill is already a delta. No-ops (with
    /// [`SpillKind::NoChange`]) when the program is not resident or
    /// nothing changed.
    ///
    /// Spills serialize against [`refresh`](SnapshotRegistry::refresh)
    /// passes, so a spilled file is always indexed and stamped before a
    /// scan can see it — the registry never re-absorbs its own spill.
    pub fn spill(&self, fingerprint: u64) -> Result<SpillOutcome, ServeError> {
        let _pass = self.refresh_serial.lock().unwrap();
        let (snap, spill_state) = {
            let mut shard = self.shard_of(fingerprint).lock().unwrap();
            let Some(entry) = shard.entries.get_mut(&fingerprint) else {
                return Ok(SpillOutcome::default());
            };
            (Arc::clone(&entry.snap), entry.spill.clone())
        };
        let groups = group_digests(&snap)?;
        let options = SnapshotWriteOptions {
            compress: self.config.compress_spills,
        };
        let Some(state) = spill_state else {
            // First durable representation: a full base file.
            let path = self.dir.join(base_file_name(fingerprint));
            let bytes = self.write_base(&path, fingerprint, &snap, options)?;
            {
                let mut index = self.index.write().unwrap();
                index.add(fingerprint, snap.shape, path.clone());
            }
            self.set_spill_state(
                fingerprint,
                SpillState {
                    groups,
                    next_seq: 1,
                    delta_files: Vec::new(),
                },
            );
            return Ok(SpillOutcome {
                kind: SpillKind::Base,
                bytes_written: bytes,
                path: Some(path),
                ..SpillOutcome::default()
            });
        };
        let delta = diff_snapshots(&state.groups, &snap, state.next_seq)?;
        if delta.is_empty() {
            return Ok(SpillOutcome::default());
        }
        if state.delta_files.len() + 1 >= self.config.compact_threshold.max(1) {
            return self.compact_resident(fingerprint, &snap, groups, options);
        }
        let path = self.dir.join(delta_file_name(fingerprint, state.next_seq));
        let delta_groups = delta
            .traces
            .iter()
            .map(|t| t.start_pc)
            .collect::<std::collections::BTreeSet<u32>>()
            .len() as u64;
        let tombstones = delta.tombstones.len() as u64;
        let tmp = path.with_extension("tmp");
        save_delta_segment(&tmp, fingerprint, &delta, options.compress)?;
        std::fs::rename(&tmp, &path).map_err(PersistError::from)?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        {
            let mut index = self.index.write().unwrap();
            // Delta segments carry no shape; the fingerprint's shape
            // mapping (if any) was recorded when its base was indexed.
            index.add(fingerprint, 0, path.clone());
        }
        let mut delta_files = state.delta_files;
        delta_files.push(path.clone());
        self.set_spill_state(
            fingerprint,
            SpillState {
                groups,
                next_seq: state.next_seq + 1,
                delta_files,
            },
        );
        Ok(SpillOutcome {
            kind: SpillKind::Delta,
            bytes_written: bytes,
            delta_groups,
            tombstones,
            path: Some(path),
            ..SpillOutcome::default()
        })
    }

    /// Write a full base file via a temp-and-rename so a concurrent
    /// reader never sees a half-written snapshot. Returns bytes
    /// written.
    fn write_base(
        &self,
        path: &Path,
        fingerprint: u64,
        snap: &RtmSnapshot,
        options: SnapshotWriteOptions,
    ) -> Result<u64, ServeError> {
        let tmp = path.with_extension("tmp");
        save_snapshot_with(&tmp, fingerprint, snap, options)?;
        std::fs::rename(&tmp, path).map_err(PersistError::from)?;
        Ok(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0))
    }

    /// Fold the resident state into a fresh base file and delete every
    /// superseded file for `fingerprint`. Caller holds `refresh_serial`.
    fn compact_resident(
        &self,
        fingerprint: u64,
        snap: &RtmSnapshot,
        groups: BTreeMap<u32, u64>,
        options: SnapshotWriteOptions,
    ) -> Result<SpillOutcome, ServeError> {
        let base = self.dir.join(base_file_name(fingerprint));
        let old_paths: Vec<PathBuf> = self
            .paths(fingerprint)
            .into_iter()
            .filter(|p| *p != base)
            .collect();
        let bytes = self.write_base(&base, fingerprint, snap, options)?;
        {
            let mut index = self.index.write().unwrap();
            for path in &old_paths {
                index.forget(fingerprint, path);
            }
            index.add(fingerprint, snap.shape, base.clone());
        }
        // Unindexed first, deleted second: a racing fetch can no longer
        // pick up a path that is about to vanish.
        let mut removed = 0;
        for path in &old_paths {
            if std::fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
        self.set_spill_state(
            fingerprint,
            SpillState {
                groups,
                next_seq: 1,
                delta_files: Vec::new(),
            },
        );
        Ok(SpillOutcome {
            kind: SpillKind::Compacted,
            bytes_written: bytes,
            removed_files: removed,
            path: Some(base),
            ..SpillOutcome::default()
        })
    }

    /// Replace the spill bookkeeping for `fingerprint`, if it is still
    /// resident (a concurrent eviction simply drops the state — the
    /// next load reseeds it from disk, which now includes the spill).
    fn set_spill_state(&self, fingerprint: u64, state: SpillState) {
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(entry) = shard.entries.get_mut(&fingerprint) {
            entry.spill = Some(state);
        }
    }

    /// Merge `snapshot` into an already-locked resident `entry` under
    /// the registry policy, refreshing its cached export and gauges.
    fn merge_into_entry(
        &self,
        entry: &mut Entry,
        snapshot: &RtmSnapshot,
    ) -> Result<(), ServeError> {
        if entry.rtm.config() != snapshot.config {
            return Err(tlr_core::MergeError::GeometryMismatch {
                first: entry.rtm.config(),
                other: snapshot.config,
            }
            .into());
        }
        // The proper interleaved union, not a sequential replay: a
        // near-capacity publish must not wholesale-evict the pooled
        // hot state of every prior run. The configured policy
        // decides what survives contention.
        //
        // The resident RTM's export is shape-less (an RTM holds no
        // program identity); restamp it from the entry's snapshot so a
        // publish-back cannot silently demote the entry to value-pinned.
        let mut resident = entry.rtm.export();
        resident.shape = entry.snap.shape;
        let merged = self.pool(&[resident, snapshot.clone()])?;
        entry.rtm = self.import(&merged);
        entry.stats.resident_traces = merged.len() as u64;
        entry.stats.resident_hits = merged.total_hits();
        entry.snap = Arc::new(merged);
        entry.invalidate_image();
        entry.stats.refreshes += 1;
        Ok(())
    }

    /// Merge `snapshot` into the resident entry for `fingerprint`, if
    /// one exists. Returns whether the program was resident. Shared by
    /// [`publish`](SnapshotRegistry::publish) and
    /// [`refresh`](SnapshotRegistry::refresh).
    fn merge_into_resident(
        &self,
        fingerprint: u64,
        snapshot: &RtmSnapshot,
    ) -> Result<bool, ServeError> {
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        let Some(entry) = shard.touch(fingerprint) else {
            return Ok(false);
        };
        self.merge_into_entry(entry, snapshot)?;
        Ok(true)
    }

    /// Contribute a finished run's RTM export back to the registry:
    /// merged into the resident entry (creating one if the program is
    /// not resident), so the *next* fetch serves the pooled state of
    /// every run so far. In-memory only — writing refreshed snapshots
    /// back to the directory is a planned follow-up.
    pub fn publish(&self, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<(), ServeError> {
        // Record the shape mapping first (index lock and shard lock are
        // never held together), so a later `get_by_shape` from a
        // data-varied client can discover this entry as a donor.
        if snapshot.shape != 0 {
            self.index
                .write()
                .unwrap()
                .add_shape(fingerprint, snapshot.shape);
        }
        let mut shard = self.shard_of(fingerprint).lock().unwrap();
        if let Some(entry) = shard.touch(fingerprint) {
            return self.merge_into_entry(entry, snapshot);
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(
            fingerprint,
            Entry {
                rtm: self.import(snapshot),
                snap: Arc::new(snapshot.clone()),
                image: None,
                generation: 0,
                // No durable representation yet: the first spill writes
                // a full base file.
                spill: None,
                stats: EntryStats {
                    refreshes: 1,
                    resident_traces: snapshot.len() as u64,
                    resident_hits: snapshot.total_hits(),
                    ..EntryStats::default()
                },
                last_touch: tick,
            },
        );
        let evicted = shard.enforce_bound(self.config.max_resident_per_shard);
        drop(shard);
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Behaviour counters for one resident program, `None` if it is not
    /// (or no longer) resident.
    pub fn entry_stats(&self, fingerprint: u64) -> Option<EntryStats> {
        let shard = self.shard_of(fingerprint).lock().unwrap();
        shard.entries.get(&fingerprint).map(|e| e.stats)
    }

    /// Registry-wide aggregates. Counters of evicted entries are folded
    /// in, so hits/misses/refreshes are lifetime totals.
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            evicted: self.evicted.load(Ordering::Relaxed),
            unknown: self.unknown.load(Ordering::Relaxed),
            shape_rejects: self.shape_rejects.load(Ordering::Relaxed),
            ..RegistryStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            stats.resident += shard.entries.len() as u64;
            stats.hits += shard.retired.hits;
            stats.misses += shard.retired.misses;
            stats.refreshes += shard.retired.refreshes;
            stats.image_hits += shard.retired.image_hits;
            stats.image_builds += shard.retired.image_builds;
            stats.image_invalidations += shard.retired.image_invalidations;
            stats.shape_hits += shard.retired.shape_hits;
            for entry in shard.entries.values() {
                stats.hits += entry.stats.hits;
                stats.misses += entry.stats.misses;
                stats.refreshes += entry.stats.refreshes;
                stats.image_hits += entry.stats.image_hits;
                stats.image_builds += entry.stats.image_builds;
                stats.image_invalidations += entry.stats.image_invalidations;
                stats.shape_hits += entry.stats.shape_hits;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_core::{RtmConfig, TraceRecord};
    use tlr_isa::Loc;
    use tlr_persist::save_snapshot;

    fn rec(pc: u32, v: u64) -> TraceRecord {
        TraceRecord {
            start_pc: pc,
            next_pc: pc + 2,
            len: 2,
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
            mix: Default::default(),
        }
    }

    fn snapshot_of(records: &[TraceRecord]) -> RtmSnapshot {
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        for r in records {
            rtm.insert(r.clone());
        }
        rtm.export()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("tlr-serve-registry-unit")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn get_warm_loads_and_caches() {
        let dir = temp_dir("warm-load");
        save_snapshot(&dir.join("p1.tlrsnap"), 1, &snapshot_of(&[rec(8, 5)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.fingerprints(), vec![1]);

        let first = registry.get(1).unwrap().expect("snapshot on disk");
        assert_eq!(first.len(), 1);
        let second = registry.get(1).unwrap().unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second fetch not served resident"
        );
        let stats = registry.entry_stats(1).unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        assert!(registry.get(999).unwrap().is_none());
        assert_eq!(registry.stats().unknown, 1);
    }

    #[test]
    fn multiple_files_for_one_fingerprint_merge_on_load() {
        let dir = temp_dir("pooled");
        save_snapshot(&dir.join("run-a.tlrsnap"), 7, &snapshot_of(&[rec(8, 1)])).unwrap();
        save_snapshot(
            &dir.join("run-b.tlrsnap"),
            7,
            &snapshot_of(&[rec(8, 2), rec(40, 3)]),
        )
        .unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.paths(7).len(), 2);
        let snap = registry.get(7).unwrap().unwrap();
        assert_eq!(snap.len(), 3, "union of both runs");
    }

    #[test]
    fn publish_refreshes_resident_state() {
        let dir = temp_dir("publish");
        save_snapshot(&dir.join("p.tlrsnap"), 3, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.get(3).unwrap().unwrap().len(), 1);

        registry
            .publish(3, &snapshot_of(&[rec(8, 1), rec(8, 9)]))
            .unwrap();
        assert_eq!(registry.get(3).unwrap().unwrap().len(), 2);
        let stats = registry.entry_stats(3).unwrap();
        assert_eq!(stats.refreshes, 1);

        // Geometry disagreement is rejected loudly.
        let other = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_4K).export();
        assert!(matches!(
            registry.publish(3, &other),
            Err(ServeError::Merge(
                tlr_core::MergeError::GeometryMismatch { .. }
            ))
        ));

        // Publishing an unknown program makes it resident, and `get`
        // serves it even though no snapshot file exists for it.
        registry.publish(77, &snapshot_of(&[rec(4, 4)])).unwrap();
        assert_eq!(registry.entry_stats(77).unwrap().refreshes, 1);
        let unknown_before = registry.stats().unknown;
        let served = registry
            .get(77)
            .unwrap()
            .expect("published entry not served");
        assert_eq!(served.len(), 1);
        assert_eq!(registry.entry_stats(77).unwrap().hits, 1);
        assert_eq!(registry.stats().unknown, unknown_before);
    }

    #[test]
    fn lru_bound_evicts_least_recently_fetched() {
        let dir = temp_dir("lru");
        for fp in 1..=3u64 {
            save_snapshot(
                &dir.join(format!("p{fp}.tlrsnap")),
                fp,
                &snapshot_of(&[rec(8, fp)]),
            )
            .unwrap();
        }
        let registry = SnapshotRegistry::open(
            &dir,
            RegistryConfig {
                shards: 1,
                max_resident_per_shard: 2,
                ..RegistryConfig::default()
            },
        )
        .unwrap();
        registry.get(1).unwrap();
        registry.get(2).unwrap();
        registry.get(1).unwrap(); // 2 is now LRU
        registry.get(3).unwrap(); // evicts 2
        let stats = registry.stats();
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.evicted, 1);
        assert!(registry.entry_stats(2).is_none());
        assert!(registry.entry_stats(1).is_some());
        // Lifetime hit/miss totals include the evicted entry's.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        // Refetching 2 reloads from disk.
        assert!(registry.get(2).unwrap().is_some());
        assert_eq!(registry.stats().misses, 4);
    }

    #[test]
    fn residency_gauges_expose_hit_weighted_state() {
        let dir = temp_dir("gauges");
        // A producer whose traces have real hit history.
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(rec(8, 1));
        rtm.insert(rec(8, 2));
        for _ in 0..3 {
            assert!(rtm
                .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { 1 } else { 0 })
                .is_some());
        }
        save_snapshot(&dir.join("hot.tlrsnap"), 5, &rtm.export()).unwrap();

        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        registry.get(5).unwrap().unwrap();
        let stats = registry.entry_stats(5).unwrap();
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(stats.resident_hits, 3, "persisted hit history lost");

        // Publish-back folds in more observed reuse.
        let mut update = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        update.insert(rec(8, 1));
        for _ in 0..2 {
            assert!(update
                .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { 1 } else { 0 })
                .is_some());
        }
        registry.publish(5, &update.export()).unwrap();
        let stats = registry.entry_stats(5).unwrap();
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(stats.resident_hits, 5, "publish must absorb hit history");
    }

    #[test]
    fn policy_is_applied_to_pooling() {
        // Under capacity contention (per_pc = 4 at one PC), an LFU
        // registry keeps all of the publisher's hot traces over the
        // on-disk cold ones; an LRU registry's interleaved recency
        // merge keeps only half of them.
        let dir = temp_dir("policy");
        let cold: Vec<TraceRecord> = (0..4u64).map(|v| rec(8, v)).collect();
        save_snapshot(&dir.join("cold.tlrsnap"), 9, &snapshot_of(&cold)).unwrap();

        let mut hot_rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        for v in 100..104u64 {
            hot_rtm.insert(rec(8, v));
            for _ in 0..4 {
                assert!(hot_rtm
                    .lookup(8, |l| if l == tlr_isa::Loc::IntReg(1) { v } else { 0 })
                    .is_some());
            }
        }
        let hot = hot_rtm.export();

        for (policy, expect_hot_survivors) in
            [(ReplacementPolicy::Lfu, 4), (ReplacementPolicy::Lru, 2)]
        {
            let registry = SnapshotRegistry::open(
                &dir,
                RegistryConfig {
                    policy,
                    ..RegistryConfig::default()
                },
            )
            .unwrap();
            registry.get(9).unwrap().unwrap();
            registry.publish(9, &hot).unwrap();
            let snap = registry.get(9).unwrap().unwrap();
            let hot_survivors = snap.traces.iter().filter(|t| t.ins[0].1 >= 100).count();
            assert_eq!(
                hot_survivors, expect_hot_survivors,
                "{policy}: hot traces lost in publish merge"
            );
            if policy == ReplacementPolicy::Lfu {
                // LFU keeps observed-reuse weight across the merge.
                assert_eq!(registry.entry_stats(9).unwrap().resident_hits, 16);
            }
        }
    }

    #[test]
    fn lfu_half_life_reaches_pooling_merges() {
        assert_eq!(
            RegistryConfig::default().lfu_half_life,
            tlr_core::LFU_HALF_LIFE
        );
        // The knob must not change *what state exists* for an
        // uncontended pool — only how contention is ranked — so a
        // registry tuned to an extreme half-life still pools and
        // publishes identically here.
        let dir = temp_dir("half-life");
        save_snapshot(&dir.join("p.tlrsnap"), 4, &snapshot_of(&[rec(8, 1)])).unwrap();
        for half_life in [1, u64::MAX] {
            let registry = SnapshotRegistry::open(
                &dir,
                RegistryConfig {
                    policy: ReplacementPolicy::Lfu,
                    lfu_half_life: half_life,
                    ..RegistryConfig::default()
                },
            )
            .unwrap();
            assert_eq!(registry.get(4).unwrap().unwrap().len(), 1, "{half_life}");
            registry
                .publish(4, &snapshot_of(&[rec(8, 1), rec(40, 2)]))
                .unwrap();
            assert_eq!(registry.get(4).unwrap().unwrap().len(), 2, "{half_life}");
        }
    }

    #[test]
    fn refresh_indexes_new_files_and_updates_resident_entries() {
        let dir = temp_dir("refresh");
        save_snapshot(&dir.join("p1.tlrsnap"), 1, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        // Nothing new: the known file's stamp matches, so it is counted
        // as unchanged and never re-read.
        assert_eq!(
            registry.refresh().unwrap(),
            RefreshOutcome {
                unchanged: 1,
                ..RefreshOutcome::default()
            }
        );

        // Program 1 becomes resident; program 2 is never fetched.
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 1);

        // New files appear after open: more state for resident program
        // 1, a first file for unknown program 2, and one mid-write junk
        // file that must be skipped, not fatal.
        save_snapshot(&dir.join("p1-more.tlrsnap"), 1, &snapshot_of(&[rec(40, 2)])).unwrap();
        save_snapshot(&dir.join("p2.tlrsnap"), 2, &snapshot_of(&[rec(8, 3)])).unwrap();
        std::fs::write(dir.join("partial.tlrsnap"), b"TL").unwrap();

        let outcome = registry.refresh().unwrap();
        assert_eq!(outcome.new_files, 2);
        assert_eq!(outcome.refreshed, 1, "resident entry not refreshed");
        assert_eq!(outcome.skipped, 1, "mid-write file not skipped");
        assert_eq!(outcome.unchanged, 1, "stamp-stable file re-read");

        // The resident entry absorbed the new file without a re-fetch.
        let stats = registry.entry_stats(1).unwrap();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.resident_traces, 2);
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 2);

        // The unknown program is now indexed and warm-loads on fetch.
        assert_eq!(registry.paths(2).len(), 1);
        assert_eq!(registry.get(2).unwrap().unwrap().len(), 1);

        // A second pass with nothing new (the junk file is retried and
        // skipped again, still not indexed; every indexed file is
        // stamp-stable).
        let outcome = registry.refresh().unwrap();
        assert_eq!((outcome.new_files, outcome.refreshed), (0, 0));
        assert_eq!(outcome.skipped, 1);
        assert_eq!(outcome.unchanged, 3);
    }

    #[test]
    fn refresh_reabsorbs_changed_files() {
        let dir = temp_dir("refresh-changed");
        let path = dir.join("p1.tlrsnap");
        save_snapshot(&path, 1, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 1);

        // Another process rewrites the file with more state (the length
        // changes, so the stamp moves even on coarse-mtime systems).
        save_snapshot(&path, 1, &snapshot_of(&[rec(8, 1), rec(40, 2)])).unwrap();
        let outcome = registry.refresh().unwrap();
        assert_eq!(outcome.refreshed, 1, "changed file not re-absorbed");
        assert_eq!(outcome.new_files, 0, "changed file is not new");
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 2);

        // The rewritten stamp was recorded: the next pass skips it.
        let outcome = registry.refresh().unwrap();
        assert_eq!(outcome.refreshed, 0);
        assert_eq!(outcome.unchanged, 1);
    }

    #[test]
    fn image_cache_serves_built_bytes_until_invalidated() {
        let dir = temp_dir("image-cache");
        save_snapshot(&dir.join("p.tlrsnap"), 6, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();

        // First image fetch loads (miss) and builds; the bytes are a
        // complete snapshot file image.
        let first = registry.get_image(6).unwrap().expect("image");
        let (fp, decoded) = tlr_persist::snapshot::read_snapshot(&mut &first[..], Some(6)).unwrap();
        assert_eq!(fp, 6);
        assert_eq!(decoded.len(), 1);
        let stats = registry.entry_stats(6).unwrap();
        assert_eq!((stats.image_builds, stats.image_hits), (1, 0));
        assert_eq!((stats.misses, stats.hits), (1, 0));

        // Second fetch is the zero-copy path: same buffer, no rebuild.
        let second = registry.get_image(6).unwrap().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "image not served from cache");
        let stats = registry.entry_stats(6).unwrap();
        assert_eq!((stats.image_builds, stats.image_hits), (1, 1));

        // Publish invalidates: the next image is rebuilt over the
        // merged state.
        registry.publish(6, &snapshot_of(&[rec(40, 2)])).unwrap();
        let stats = registry.entry_stats(6).unwrap();
        assert_eq!(stats.image_invalidations, 1);
        let third = registry.get_image(6).unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &third), "stale image after publish");
        let (_, decoded) = tlr_persist::snapshot::read_snapshot(&mut &third[..], Some(6)).unwrap();
        assert_eq!(decoded.len(), 2);
        let stats = registry.entry_stats(6).unwrap();
        assert_eq!(stats.image_builds, 2);

        // Unknown programs mirror `get`.
        assert!(registry.get_image(999).unwrap().is_none());

        // Registry-wide aggregates carry the image counters.
        let totals = registry.stats();
        assert_eq!(totals.image_builds, 2);
        assert_eq!(totals.image_hits, 1);
        assert_eq!(totals.image_invalidations, 1);
    }

    #[test]
    fn spill_writes_base_then_deltas_then_compacts() {
        let dir = temp_dir("spill");
        let registry = SnapshotRegistry::open(
            &dir,
            RegistryConfig {
                compact_threshold: 3,
                ..RegistryConfig::default()
            },
        )
        .unwrap();

        // Not resident: nothing to spill.
        assert_eq!(registry.spill(11).unwrap().kind, SpillKind::NoChange);

        // A publish-born entry's first spill is a full base.
        registry.publish(11, &snapshot_of(&[rec(8, 1)])).unwrap();
        let outcome = registry.spill(11).unwrap();
        assert_eq!(outcome.kind, SpillKind::Base);
        assert!(dir.join(base_file_name(11)).is_file());

        // No change since the base: nothing written.
        assert_eq!(registry.spill(11).unwrap().kind, SpillKind::NoChange);

        // New state spills an incremental delta, much smaller than the
        // base rewrite would be.
        registry.publish(11, &snapshot_of(&[rec(40, 2)])).unwrap();
        let outcome = registry.spill(11).unwrap();
        assert_eq!(outcome.kind, SpillKind::Delta);
        assert_eq!(outcome.delta_groups, 1);
        let delta_path = dir.join(delta_file_name(11, 1));
        assert!(delta_path.is_file());

        // Second delta (seq 2).
        registry.publish(11, &snapshot_of(&[rec(72, 3)])).unwrap();
        assert_eq!(registry.spill(11).unwrap().kind, SpillKind::Delta);

        // Third change crosses compact_threshold = 3: everything folds
        // into a fresh base and the deltas are deleted.
        registry.publish(11, &snapshot_of(&[rec(104, 4)])).unwrap();
        let outcome = registry.spill(11).unwrap();
        assert_eq!(outcome.kind, SpillKind::Compacted);
        assert_eq!(outcome.removed_files, 2);
        assert!(!delta_path.exists(), "compaction left a delta behind");
        assert_eq!(registry.paths(11), vec![dir.join(base_file_name(11))]);

        // A cold registry over the same directory reconstructs the full
        // state from the compacted base.
        let cold = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(cold.get(11).unwrap().unwrap().len(), 4);
    }

    #[test]
    fn disk_loaded_entry_spills_delta_against_loaded_state() {
        let dir = temp_dir("spill-seeded");
        save_snapshot(&dir.join("p.tlrsnap"), 12, &snapshot_of(&[rec(8, 1)])).unwrap();
        let registry = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(registry.get(12).unwrap().unwrap().len(), 1);

        // Nothing beyond the on-disk state: no write at all.
        assert_eq!(registry.spill(12).unwrap().kind, SpillKind::NoChange);

        // Publish new state: the spill is a delta next to the existing
        // file, not a full rewrite.
        registry.publish(12, &snapshot_of(&[rec(40, 2)])).unwrap();
        let outcome = registry.spill(12).unwrap();
        assert_eq!(outcome.kind, SpillKind::Delta);

        // The spilled delta is already indexed and stamped: a refresh
        // pass does not re-absorb it.
        let outcome = registry.refresh().unwrap();
        assert_eq!(outcome.new_files, 0);
        assert_eq!(outcome.refreshed, 0);
        assert_eq!(outcome.unchanged, 2);

        // A cold registry merges base + delta back to the full state.
        let cold = SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap();
        assert_eq!(cold.get(12).unwrap().unwrap().len(), 2);
    }

    #[test]
    fn corrupt_snapshot_file_fails_open() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("bad.tlrsnap"), b"not a snapshot").unwrap();
        assert!(matches!(
            SnapshotRegistry::open(&dir, RegistryConfig::default()),
            Err(ServeError::Persist(PersistError::BadMagic { .. }))
        ));
    }
}
