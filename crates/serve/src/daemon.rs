//! `tlrd` — the cross-process snapshot server.
//!
//! A [`Daemon`] owns a [`SnapshotRegistry`] and exposes it over a
//! Unix-domain socket speaking the [`crate::proto`] protocol, so many
//! simulator *processes* share one resident pool of warm RTMs instead
//! of each paying its own warm-load. The model is deliberately boring:
//!
//! * **blocking, thread-per-connection** — each accepted client gets a
//!   handler thread; the registry is already sharded and lock-scoped
//!   for exactly this shape of concurrency;
//! * **graceful shutdown** — a [`DaemonHandle`] flips a stop flag and
//!   nudges the accept loop awake; `run` then joins every handler (and
//!   the refresh ticker) and removes the socket file before returning;
//! * **background refresh** — an optional [`RefreshTicker`] rescans the
//!   snapshot directory ([`SnapshotRegistry::refresh`]) on an interval,
//!   so snapshots dropped into the directory by other processes reach
//!   resident entries without a restart. The ticker is independent of
//!   the daemon: in-process `tlrsim serve` uses the same type.
//!
//! A protocol *request* error (unknown program, bad snapshot, geometry
//! mismatch) answers with a named [`crate::proto::Reply::Error`] and
//! keeps the session; a *framing* error (bad length, checksum mismatch,
//! garbage tag) closes the connection, because the byte stream can no
//! longer be trusted. Neither ever takes the daemon down.

use crate::proto::{self, ErrorCode, ProtoError, Reply, Request, PROTOCOL_VERSION};
use crate::registry::{ServeError, SnapshotRegistry};
use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A bound-but-not-yet-serving `tlrd` instance.
pub struct Daemon {
    listener: UnixListener,
    registry: Arc<SnapshotRegistry>,
    path: PathBuf,
    stop: Arc<AtomicBool>,
}

/// Shuts a running [`Daemon`] down from another thread.
#[derive(Clone)]
pub struct DaemonHandle {
    path: PathBuf,
    stop: Arc<AtomicBool>,
}

impl DaemonHandle {
    /// Ask the daemon to stop: no new connections are accepted, live
    /// handler threads finish their sessions, then
    /// [`Daemon::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept awake; if the daemon is already
        // gone the connect just fails, which is fine.
        let _ = UnixStream::connect(&self.path);
    }
}

impl Daemon {
    /// Bind a daemon for `registry` on the Unix socket at `path`. A
    /// stale socket file from a previous run is removed first; any
    /// other pre-existing file makes the bind fail as it should.
    pub fn bind(path: &Path, registry: Arc<SnapshotRegistry>) -> Result<Daemon, ServeError> {
        // Only unlink something that actually is a socket: never
        // clobber a regular file the caller mistyped.
        if let Ok(meta) = std::fs::symlink_metadata(path) {
            use std::os::unix::fs::FileTypeExt;
            if meta.file_type().is_socket() {
                let _ = std::fs::remove_file(path);
            }
        }
        let listener = UnixListener::bind(path).map_err(|e| {
            ServeError::Proto(ProtoError::Io(std::io::Error::new(
                e.kind(),
                format!("cannot bind {}: {e}", path.display()),
            )))
        })?;
        Ok(Daemon {
            listener,
            registry,
            path: path.to_path_buf(),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The socket path this daemon is bound on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The registry this daemon serves.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }

    /// A handle that can stop this daemon from another thread.
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            path: self.path.clone(),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serve until [`DaemonHandle::shutdown`]: accept clients, one
    /// handler thread each. Joins every handler and removes the socket
    /// file before returning.
    pub fn run(self) -> Result<(), ServeError> {
        let result = std::thread::scope(|scope| {
            for conn in self.listener.incoming() {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => stream,
                    // Accept errors (e.g. EMFILE) are transient; keep
                    // serving the clients we have.
                    Err(_) => continue,
                };
                let registry = Arc::clone(&self.registry);
                scope.spawn(move || serve_connection(stream, &registry));
            }
            Ok(())
        });
        let _ = std::fs::remove_file(&self.path);
        result
    }
}

/// One client session: Hello first, then request/reply until EOF or a
/// framing error. Never panics; never takes the registry down.
fn serve_connection(stream: UnixStream, registry: &SnapshotRegistry) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // Session opening: exactly one Hello with a version we speak.
    match proto::read_request(&mut reader) {
        Ok(Some(Request::Hello { version })) if version == PROTOCOL_VERSION => {
            let reply = Reply::HelloOk {
                version: PROTOCOL_VERSION,
                programs: registry.fingerprints().len() as u64,
            };
            if proto::write_reply(&mut writer, &reply).is_err() {
                return;
            }
        }
        Ok(Some(Request::Hello { version })) => {
            let _ = proto::write_reply(
                &mut writer,
                &Reply::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "client speaks protocol version {version}, server speaks \
                         {PROTOCOL_VERSION}"
                    ),
                },
            );
            return;
        }
        Ok(Some(_)) => {
            let _ = proto::write_reply(
                &mut writer,
                &Reply::Error {
                    code: ErrorCode::HelloRequired,
                    message: "the first message of a session must be Hello".into(),
                },
            );
            return;
        }
        Ok(None) => return,
        Err(e) => {
            let _ = proto::write_reply(
                &mut writer,
                &Reply::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("{e}"),
                },
            );
            return;
        }
    }
    loop {
        let request = match proto::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                // Framing is broken: answer once if the pipe still
                // works, then hang up.
                let _ = proto::write_reply(
                    &mut writer,
                    &Reply::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("{e}"),
                    },
                );
                return;
            }
        };
        let payload = answer_payload(registry, request);
        let sent = match payload {
            Ok(payload) => proto::write_frame(&mut writer, &payload).is_ok(),
            // Encoding failed (snapshot too large for a frame, say):
            // tell the client by name rather than hanging up silently.
            Err(e) => proto::write_reply(
                &mut writer,
                &Reply::Error {
                    code: ErrorCode::Internal,
                    message: format!("{e}"),
                },
            )
            .is_ok(),
        };
        if !sent {
            return;
        }
    }
}

/// Map one request onto the registry, producing the encoded reply
/// payload. `Get` answers from the registry's cached serialized image
/// ([`SnapshotRegistry::get_image`]) — repeated fetches of the same
/// resident state share one immutable buffer and never re-serialize.
fn answer_payload(
    registry: &SnapshotRegistry,
    request: Request,
) -> Result<Vec<u8>, proto::ProtoError> {
    let reply = match request {
        Request::Hello { .. } => Reply::Error {
            code: ErrorCode::BadRequest,
            message: "Hello is only valid as the first message".into(),
        },
        Request::Get { fingerprint } => match registry.get_image(fingerprint) {
            // Zero-copy: the registry's cached image bytes go straight
            // into the reply frame; only the tag/present prefix is new.
            Ok(image) => {
                return Ok(proto::encode_snapshot_reply_image(
                    fingerprint,
                    image.as_deref(),
                ))
            }
            Err(e) => error_reply(e),
        },
        Request::Publish {
            fingerprint,
            snapshot,
        } => match registry.publish(fingerprint, &snapshot) {
            Ok(()) => Reply::PublishOk,
            Err(e) => error_reply(e),
        },
        Request::GetShape { fingerprint, shape } => {
            match registry.get_by_shape(fingerprint, shape) {
                // Shape resolution installs a resident entry under the
                // client's fingerprint, so the image cache serves it
                // zero-copy exactly like a plain Get.
                Ok(Some(_)) => match registry.get_image(fingerprint) {
                    Ok(image) => {
                        return Ok(proto::encode_snapshot_reply_image(
                            fingerprint,
                            image.as_deref(),
                        ))
                    }
                    Err(e) => error_reply(e),
                },
                Ok(None) => return Ok(proto::encode_snapshot_reply_image(fingerprint, None)),
                Err(e) => error_reply(e),
            }
        }
        Request::Stats => Reply::Stats(registry.stats()),
        Request::Refresh => match registry.refresh() {
            Ok(outcome) => Reply::RefreshOk {
                new_files: outcome.new_files,
                refreshed: outcome.refreshed,
                skipped: outcome.skipped,
                unchanged: outcome.unchanged,
            },
            Err(e) => error_reply(e),
        },
    };
    proto::encode_reply(&reply)
}

fn error_reply(e: ServeError) -> Reply {
    let code = match &e {
        ServeError::Persist(_) => ErrorCode::Persist,
        ServeError::Merge(_) => ErrorCode::Merge,
        ServeError::Proto(_) => ErrorCode::Internal,
    };
    Reply::Error {
        code,
        message: format!("{e}"),
    }
}

/// A background thread calling [`SnapshotRegistry::refresh`] on an
/// interval, used by the daemon and by in-process `tlrsim serve` alike.
/// Stops (and joins) on [`RefreshTicker::stop`] or drop.
pub struct RefreshTicker {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RefreshTicker {
    /// Spawn a ticker refreshing `registry` every `interval`. Refresh
    /// errors (e.g. a directory made unreadable mid-run) are swallowed
    /// and retried next tick — background maintenance must not kill a
    /// serving process.
    pub fn spawn(registry: Arc<SnapshotRegistry>, interval: Duration) -> RefreshTicker {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            // Sleep in short slices so stop() never waits a full
            // interval.
            let slice = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            loop {
                if stop_seen.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(slice);
                elapsed += slice;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    let _ = registry.refresh();
                }
            }
        });
        RefreshTicker {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the ticker and join its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for RefreshTicker {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use tlr_core::{RtmConfig, TraceRecord};
    use tlr_isa::Loc;
    use tlr_persist::save_snapshot;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tlr-daemon-unit").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_of(pc: u32, v: u64) -> tlr_core::RtmSnapshot {
        let mut rtm = tlr_core::ReuseTraceMemory::new(RtmConfig::RTM_512);
        rtm.insert(TraceRecord {
            start_pc: pc,
            next_pc: pc + 2,
            len: 2,
            ins: vec![(Loc::IntReg(1), v)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), v * 3)].into_boxed_slice(),
            mix: Default::default(),
        });
        rtm.export()
    }

    #[test]
    fn daemon_shuts_down_gracefully_and_removes_socket() {
        let dir = temp_dir("shutdown");
        save_snapshot(&dir.join("p.tlrsnap"), 1, &snapshot_of(8, 5)).unwrap();
        let registry = Arc::new(SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap());
        let sock = dir.join("tlrd.sock");
        let daemon = Daemon::bind(&sock, registry).unwrap();
        let handle = daemon.handle();
        let server = std::thread::spawn(move || daemon.run());
        // The daemon is accepting; a remote client can speak to it.
        let remote = crate::remote::RemoteRegistry::connect(&sock).unwrap();
        assert_eq!(remote.get(1).unwrap().unwrap().len(), 1);
        drop(remote);
        handle.shutdown();
        server.join().unwrap().unwrap();
        assert!(!sock.exists(), "socket file left behind");
        // Shutdown is idempotent.
        handle.shutdown();
    }

    #[test]
    fn stale_socket_file_is_replaced_but_regular_file_is_not() {
        let dir = temp_dir("stale");
        let registry = Arc::new(SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap());
        let sock = dir.join("tlrd.sock");
        // First bind creates the socket; dropping the daemon without
        // running leaves a stale file a second bind must replace.
        let first = Daemon::bind(&sock, Arc::clone(&registry)).unwrap();
        drop(first);
        assert!(sock.exists(), "bind did not create the socket file");
        let second = Daemon::bind(&sock, Arc::clone(&registry)).unwrap();
        drop(second);

        let file = dir.join("not-a-socket");
        std::fs::write(&file, b"precious data").unwrap();
        assert!(
            Daemon::bind(&file, registry).is_err(),
            "bind clobbered a regular file"
        );
        assert_eq!(std::fs::read(&file).unwrap(), b"precious data");
    }

    #[test]
    fn refresh_ticker_picks_up_new_files() {
        let dir = temp_dir("ticker");
        save_snapshot(&dir.join("a.tlrsnap"), 1, &snapshot_of(8, 1)).unwrap();
        let registry = Arc::new(SnapshotRegistry::open(&dir, RegistryConfig::default()).unwrap());
        registry.get(1).unwrap().unwrap();
        let ticker = RefreshTicker::spawn(Arc::clone(&registry), Duration::from_millis(25));
        save_snapshot(&dir.join("b.tlrsnap"), 1, &snapshot_of(40, 2)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if registry.entry_stats(1).unwrap().refreshes >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ticker never refreshed the resident entry"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        ticker.stop();
        assert_eq!(registry.get(1).unwrap().unwrap().len(), 2);
    }
}
