#![warn(missing_docs)]
//! # tlr-persist — durable trace state
//!
//! The paper's Reuse Trace Memory is built online and discarded at
//! process exit: every simulation pays the full cold-start collection
//! cost, and no experiment can be re-examined offline. This crate makes
//! trace state durable, in three capabilities:
//!
//! * **record** — [`TraceWriter`] is a [`tlr_isa::StreamSink`] tap: run
//!   any program through `tlr_vm::Vm::run` with it and every committed
//!   [`tlr_isa::DynInstr`] is appended to a trace file;
//! * **replay** — [`replay`](replay()) re-executes the program against the
//!   recording and fails loudly on the first divergence (mismatched PC
//!   or live-in/live-out values), wasm-rr style;
//! * **warm-start** — [`save_snapshot`] / [`load_snapshot`] persist a
//!   full [`tlr_core::RtmSnapshot`] so a later
//!   `TraceReuseEngine::new_warm` run starts with the prior run's reuse
//!   state instead of an empty RTM.
//!
//! ## Formats
//!
//! Two encodings, auto-detected by extension ([`FileFormat::detect`]):
//! a versioned length-prefixed **binary** format (conventionally
//! `.tlrtrace` for streams, `.tlrsnap` for snapshots), and a pretty
//! **JSON** debug format (`.json`) for inspection and diffing. Binary
//! layout:
//!
//! | section | contents |
//! |---|---|
//! | header (16 B) | magic `TLRP`, version u16, kind u8, flags u8 (v5+; 0 before), fingerprint u64 |
//! | trace stream | per record: u32 length + [`tlr_isa::DynInstr`] frame |
//! | RTM snapshot | geometry (3 × u32), count u64, then per trace: u32 length + [`tlr_core::TraceRecord`] frame |
//! | delta segment | geometry, count, seq, tombstones, then changed-group frames ([`delta`]) |
//! | trailer | u32 `0`, u64 count, u64 checksum (+ u8 halt flag for streams) |
//!
//! The header is checked on every load: wrong magic, an unsupported
//! version, the wrong payload kind, or a fingerprint from a different
//! program/ISA each produce a distinct, descriptive [`PersistError`].
//! Frame checksums catch bit-level damage; a missing trailer reports the
//! stream as truncated.
//!
//! Format v5 turns the reserved header byte into flags:
//! [`format::FLAG_COMPRESSED_FRAMES`] run-length compresses every trace
//! frame ([`compress`]), and [`format::FLAG_DELTA_SEGMENT`] marks an
//! incremental **delta segment** so publish-back spills only changed PC
//! groups next to a base file ([`delta`]); [`load_merged_snapshots`]
//! replays base + deltas in sequence order.
//!
//! ## Quick start
//!
//! ```
//! use tlr_asm::assemble;
//! use tlr_core::{EngineConfig, Heuristic, RtmConfig, TraceReuseEngine};
//!
//! let program = assemble(
//!     "li r9, 40\nloop: li r1, 3\naddq r2, r2, r1\nsubq r9, r9, 1\nbnez r9, loop\nhalt\n",
//! )
//! .unwrap();
//!
//! // Cold run: collect traces, snapshot the RTM.
//! let config = EngineConfig::paper(RtmConfig::RTM_512, Heuristic::FixedExp(2));
//! let mut cold = TraceReuseEngine::new(&program, config);
//! let cold_stats = cold.run(100_000).unwrap();
//! let snapshot = cold.export_rtm().unwrap();
//!
//! // Warm run: seeded from the snapshot, reuse starts at the first fetch.
//! let mut warm = TraceReuseEngine::new_warm(&program, config, &snapshot);
//! let warm_stats = warm.run(100_000).unwrap();
//! assert!(warm_stats.pct_reused() >= cold_stats.pct_reused());
//! ```
//!
//! (On disk the snapshot travels through [`save_snapshot`] /
//! [`load_snapshot`]; `examples/record_replay.rs` shows the full
//! record → replay → snapshot → warm-start loop, and the `tlrsim`
//! binary exposes it as `record` / `replay` / `snapshot` /
//! `run --warm-rtm` subcommands.)

pub mod compress;
pub mod delta;
pub mod error;
pub mod format;
pub mod json;
pub mod replay;
pub mod snapshot;
pub mod stream;
pub mod wire;

pub use delta::{
    apply_delta, base_file_name, delta_file_name, delta_seq_from_path, diff_snapshots,
    group_digests, save_delta_segment, write_delta_segment, DeltaSegment,
};
pub use error::{PersistError, Result};
pub use format::{
    FileFormat, Header, FLAG_COMPRESSED_FRAMES, FLAG_DELTA_SEGMENT, FORMAT_VERSION,
    KIND_RTM_SNAPSHOT, KIND_TRACE_STREAM, KNOWN_FLAGS, MAGIC, MIN_SUPPORTED_VERSION, SNAPSHOT_EXT,
    TRACE_EXT,
};
pub use replay::{replay, MemorySource, RecordSource, ReplayStats};
pub use snapshot::{
    load_merged_snapshots, load_merged_snapshots_tuned, load_merged_snapshots_with, load_snapshot,
    load_snapshot_payload, peek_snapshot_fingerprint, peek_snapshot_identity, save_snapshot,
    save_snapshot_with, SnapshotPayload, SnapshotWriteOptions,
};
pub use stream::{load_trace, save_trace, TraceFile, TraceReader, TraceWriter};
pub use wire::{program_fingerprint, program_shape_fingerprint};
