//! Little-endian binary codecs for the on-disk types.
//!
//! Every multi-byte integer is little-endian. Variable-length payloads
//! (dynamic instructions, trace records) are length-prefixed by their
//! frame (see [`crate::stream`] and [`crate::snapshot`]), so codecs here
//! only need to read exactly what they wrote.

use crate::error::{PersistError, Result};
use std::hash::Hasher;
use std::io::{Read, Write};
use tlr_asm::Program;
use tlr_core::TraceRecord;
use tlr_isa::dynrec::{MAX_READS, MAX_WRITES};
use tlr_isa::{ClassMix, DynInstr, Loc, OpClass};
use tlr_util::fxhash::FxHasher64;

/// Bumped when the meaning of the instruction stream changes (ISA
/// semantics, record layout): folds into every file's fingerprint so
/// stale recordings are rejected loudly rather than replayed wrongly.
pub const ISA_REVISION: u64 = 1;

// ---- primitive readers/writers ------------------------------------------
//
// Public: the `tlrd` socket protocol (`tlr-serve::proto`) encodes its
// frames with the same little-endian primitives the file formats use.

/// Append one little-endian `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append one little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Read one little-endian `u8`.
pub fn get_u8(r: &mut impl Read) -> Result<u8> {
    Ok(read_exact::<1>(r)?[0])
}

/// Read one little-endian `u16`.
pub fn get_u16(r: &mut impl Read) -> Result<u16> {
    Ok(u16::from_le_bytes(read_exact::<2>(r)?))
}

/// Read one little-endian `u32`.
pub fn get_u32(r: &mut impl Read) -> Result<u32> {
    Ok(u32::from_le_bytes(read_exact::<4>(r)?))
}

/// Read one little-endian `u64`.
pub fn get_u64(r: &mut impl Read) -> Result<u64> {
    Ok(u64::from_le_bytes(read_exact::<8>(r)?))
}

/// Cap on one file frame's payload size, enforced symmetrically: the
/// writer refuses to produce what the reader would refuse to load.
pub const MAX_FRAME: u32 = 1 << 20;

/// Write one length-prefixed frame and fold it into `checksum`.
pub(crate) fn write_frame(
    w: &mut impl Write,
    payload: &[u8],
    checksum: &mut FxHasher64,
) -> Result<()> {
    debug_assert!(!payload.is_empty(), "zero-length frames mark the trailer");
    if payload.len() > MAX_FRAME as usize {
        return Err(PersistError::Corrupt(format!(
            "record serializes to {} bytes, over the {MAX_FRAME}-byte frame cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    checksum.write(payload);
    Ok(())
}

/// Read one length-prefixed frame; `Ok(None)` on the zero-length trailer
/// marker. Frames are capped so corrupt lengths fail fast instead of
/// attempting huge allocations.
pub(crate) fn read_frame(r: &mut impl Read, checksum: &mut FxHasher64) -> Result<Option<Vec<u8>>> {
    let len = get_u32(r)?;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME {
        return Err(PersistError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    checksum.write(&buf);
    Ok(Some(buf))
}

// ---- Loc ------------------------------------------------------------------

const LOC_INT: u8 = 0;
const LOC_FP: u8 = 1;
const LOC_MEM: u8 = 2;

pub(crate) fn put_loc(out: &mut Vec<u8>, loc: Loc) {
    match loc {
        Loc::IntReg(n) => {
            put_u8(out, LOC_INT);
            put_u8(out, n);
        }
        Loc::FpReg(n) => {
            put_u8(out, LOC_FP);
            put_u8(out, n);
        }
        Loc::Mem(addr) => {
            put_u8(out, LOC_MEM);
            put_u64(out, addr);
        }
    }
}

pub(crate) fn get_loc(r: &mut impl Read) -> Result<Loc> {
    match get_u8(r)? {
        LOC_INT => Ok(Loc::IntReg(get_u8(r)?)),
        LOC_FP => Ok(Loc::FpReg(get_u8(r)?)),
        LOC_MEM => Ok(Loc::Mem(get_u64(r)?)),
        tag => Err(PersistError::Corrupt(format!("unknown Loc tag {tag}"))),
    }
}

/// Numeric tags used for [`Loc`] in both the binary and JSON formats.
pub fn loc_tag(loc: Loc) -> (u64, u64) {
    match loc {
        Loc::IntReg(n) => (LOC_INT as u64, n as u64),
        Loc::FpReg(n) => (LOC_FP as u64, n as u64),
        Loc::Mem(addr) => (LOC_MEM as u64, addr),
    }
}

/// Inverse of [`loc_tag`].
pub fn loc_from_tag(tag: u64, value: u64) -> Result<Loc> {
    match tag {
        t if t == LOC_INT as u64 => Ok(Loc::IntReg(value as u8)),
        t if t == LOC_FP as u64 => Ok(Loc::FpReg(value as u8)),
        t if t == LOC_MEM as u64 => Ok(Loc::Mem(value)),
        _ => Err(PersistError::Corrupt(format!("unknown Loc tag {tag}"))),
    }
}

// ---- OpClass --------------------------------------------------------------

pub(crate) fn opclass_code(class: OpClass) -> u8 {
    OpClass::ALL
        .iter()
        .position(|c| *c == class)
        .expect("OpClass::ALL is exhaustive") as u8
}

pub(crate) fn opclass_from_code(code: u8) -> Result<OpClass> {
    OpClass::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| PersistError::Corrupt(format!("unknown OpClass code {code}")))
}

// ---- DynInstr -------------------------------------------------------------

/// Encode one dynamic instruction record.
pub(crate) fn put_dyn_instr(out: &mut Vec<u8>, d: &DynInstr) {
    put_u32(out, d.pc);
    put_u32(out, d.next_pc);
    put_u8(out, opclass_code(d.class));
    put_u8(out, d.reads.len() as u8);
    put_u8(out, d.writes.len() as u8);
    for (loc, val) in d.reads.iter() {
        put_loc(out, *loc);
        put_u64(out, *val);
    }
    for (loc, val) in d.writes.iter() {
        put_loc(out, *loc);
        put_u64(out, *val);
    }
}

/// Decode one dynamic instruction record.
pub(crate) fn get_dyn_instr(r: &mut impl Read) -> Result<DynInstr> {
    let pc = get_u32(r)?;
    let next_pc = get_u32(r)?;
    let class = opclass_from_code(get_u8(r)?)?;
    let n_reads = get_u8(r)? as usize;
    let n_writes = get_u8(r)? as usize;
    if n_reads > MAX_READS || n_writes > MAX_WRITES {
        return Err(PersistError::Corrupt(format!(
            "record at pc={pc} claims {n_reads} reads / {n_writes} writes \
             (caps are {MAX_READS}/{MAX_WRITES})"
        )));
    }
    let mut d = DynInstr {
        pc,
        next_pc,
        class,
        reads: Default::default(),
        writes: Default::default(),
    };
    for _ in 0..n_reads {
        let loc = get_loc(r)?;
        d.reads.push((loc, get_u64(r)?));
    }
    for _ in 0..n_writes {
        let loc = get_loc(r)?;
        d.writes.push((loc, get_u64(r)?));
    }
    Ok(d)
}

// ---- TraceRecord ----------------------------------------------------------

/// Encode one finished trace record. Rejects records whose live-in or
/// live-out counts do not fit the format's `u16` fields (possible under
/// `IoCaps::UNLIMITED`) rather than silently truncating them.
pub(crate) fn put_trace_record(out: &mut Vec<u8>, rec: &TraceRecord) -> Result<()> {
    if rec.ins.len() > u16::MAX as usize || rec.outs.len() > u16::MAX as usize {
        return Err(PersistError::Corrupt(format!(
            "trace at pc={} has {} live-ins / {} live-outs; the format caps both at {}",
            rec.start_pc,
            rec.ins.len(),
            rec.outs.len(),
            u16::MAX
        )));
    }
    put_u32(out, rec.start_pc);
    put_u32(out, rec.next_pc);
    put_u32(out, rec.len);
    put_u16(out, rec.ins.len() as u16);
    put_u16(out, rec.outs.len() as u16);
    for (loc, val) in rec.ins.iter() {
        put_loc(out, *loc);
        put_u64(out, *val);
    }
    for (loc, val) in rec.outs.iter() {
        put_loc(out, *loc);
        put_u64(out, *val);
    }
    Ok(())
}

/// Decode one finished trace record.
pub(crate) fn get_trace_record(r: &mut impl Read) -> Result<TraceRecord> {
    let start_pc = get_u32(r)?;
    let next_pc = get_u32(r)?;
    let len = get_u32(r)?;
    let n_ins = get_u16(r)? as usize;
    let n_outs = get_u16(r)? as usize;
    let mut read_pairs = |n: usize| -> Result<Box<[(Loc, u64)]>> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let loc = get_loc(r)?;
            v.push((loc, get_u64(r)?));
        }
        Ok(v.into_boxed_slice())
    };
    let ins = read_pairs(n_ins)?;
    let outs = read_pairs(n_outs)?;
    Ok(TraceRecord {
        start_pc,
        next_pc,
        len,
        ins,
        outs,
        // Format v4+ appends the mix after the provenance record; the
        // snapshot reader fills it in. Pre-v4 records have none.
        mix: ClassMix::EMPTY,
    })
}

// ---- ClassMix -------------------------------------------------------------

/// Encode a trace's per-class instruction mix (format v4+: appended
/// after the provenance record inside the frame). Self-describing: a
/// lane-count prefix lets a reader reject a mix written by an ISA with a
/// different class set instead of misparsing it.
pub(crate) fn put_class_mix(out: &mut Vec<u8>, mix: ClassMix) {
    put_u8(out, OpClass::COUNT as u8);
    for (_, count) in mix.iter() {
        put_u32(out, count);
    }
}

/// Decode a trace's per-class instruction mix.
pub(crate) fn get_class_mix(r: &mut impl Read) -> Result<ClassMix> {
    let lanes = get_u8(r)? as usize;
    if lanes != OpClass::COUNT {
        return Err(PersistError::Corrupt(format!(
            "class mix claims {lanes} instruction classes; this ISA has {}",
            OpClass::COUNT
        )));
    }
    let mut counts = [0u32; OpClass::COUNT];
    for lane in counts.iter_mut() {
        *lane = get_u32(r)?;
    }
    Ok(ClassMix::from_counts(counts))
}

// ---- TraceMeta ------------------------------------------------------------

/// Encode one trace's provenance (format v3+: appended to the trace
/// record inside its frame, so the frame checksum covers it).
pub(crate) fn put_trace_meta(out: &mut Vec<u8>, meta: &tlr_core::TraceMeta) {
    put_u64(out, meta.hits);
    put_u64(out, meta.last_use);
    put_u64(out, meta.source_run);
}

/// Decode one trace's provenance.
pub(crate) fn get_trace_meta(r: &mut impl Read) -> Result<tlr_core::TraceMeta> {
    Ok(tlr_core::TraceMeta {
        hits: get_u64(r)?,
        last_use: get_u64(r)?,
        source_run: get_u64(r)?,
    })
}

// ---- fingerprint ----------------------------------------------------------

/// Fingerprint of everything a recording's validity depends on: the
/// program text (instructions + entry + initial data image) and the ISA
/// revision. Streams and snapshots stamp this in their header; loading
/// against a different program fails with
/// [`PersistError::FingerprintMismatch`].
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FxHasher64::new();
    h.write_u64(ISA_REVISION);
    h.write_u64(program.entry as u64);
    h.write_u64(program.instrs.len() as u64);
    for instr in &program.instrs {
        h.write(instr.to_string().as_bytes());
    }
    h.write_u64(program.data.len() as u64);
    for (addr, value) in &program.data {
        h.write_u64(*addr);
        h.write_u64(*value);
    }
    h.finish()
}

/// Value-independent identity of a program: everything
/// [`program_fingerprint`] hashes *except* the initial data image. Runs
/// of the same code over different data agree on it, which is what lets
/// a data-varied client warm-start from another run's published
/// snapshot — the RTM's live-in value comparison at reuse time is the
/// safety net that makes the weaker identity sound. A domain-separation
/// constant keeps a program's shape fingerprint distinct from its value
/// fingerprint even when the program carries no data image at all.
pub fn program_shape_fingerprint(program: &Program) -> u64 {
    let mut h = FxHasher64::new();
    h.write_u64(0x5452_4143_4553_4850); // "TRACESHP": shape domain
    h.write_u64(ISA_REVISION);
    h.write_u64(program.entry as u64);
    h.write_u64(program.instrs.len() as u64);
    for instr in &program.instrs {
        h.write(instr.to_string().as_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xab);
        put_u16(&mut buf, 0xcdef);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, 0x0123_4567_89ab_cdef);
        let mut r = buf.as_slice();
        assert_eq!(get_u8(&mut r).unwrap(), 0xab);
        assert_eq!(get_u16(&mut r).unwrap(), 0xcdef);
        assert_eq!(get_u32(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(get_u64(&mut r).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(get_u8(&mut r).is_err());
    }

    #[test]
    fn loc_roundtrips_all_kinds() {
        for loc in [
            Loc::IntReg(0),
            Loc::IntReg(31),
            Loc::FpReg(7),
            Loc::Mem(0),
            Loc::Mem(u64::MAX),
        ] {
            let mut buf = Vec::new();
            put_loc(&mut buf, loc);
            assert_eq!(get_loc(&mut buf.as_slice()).unwrap(), loc);
            let (tag, value) = loc_tag(loc);
            assert_eq!(loc_from_tag(tag, value).unwrap(), loc);
        }
        assert!(get_loc(&mut [9u8].as_slice()).is_err());
        assert!(loc_from_tag(9, 0).is_err());
    }

    #[test]
    fn opclass_codes_roundtrip() {
        for class in OpClass::ALL {
            assert_eq!(opclass_from_code(opclass_code(class)).unwrap(), class);
        }
        assert!(opclass_from_code(OpClass::ALL.len() as u8).is_err());
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let a = assemble("li r1, 1\nhalt\n").unwrap();
        let b = assemble("li r1, 2\nhalt\n").unwrap();
        let a2 = assemble("li r1, 1\nhalt\n").unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a2));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }
}
