//! File header and format detection.
//!
//! Binary layout (all integers little-endian):
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `"TLRP"` |
//! | 4 | 2 | format version (currently 6) |
//! | 6 | 1 | payload kind (1 = trace stream, 2 = RTM snapshot) |
//! | 7 | 1 | flags (v5+; must be 0 in v2–v4) |
//! | 8 | 8 | program/ISA fingerprint |
//!
//! The JSON debug format carries the same information in a `"format"`
//! tag (`"tlr-trace-v1"` / `"tlr-rtm-v1"`) and a `"fingerprint"` field.

use crate::error::{PersistError, Result};
use crate::wire;
use std::io::{Read, Write};
use std::path::Path;

/// File magic for the binary formats.
pub const MAGIC: [u8; 4] = *b"TLRP";

/// The format version this build writes.
///
/// History: v1 checksummed trace frames only; v2 extended the snapshot
/// checksum to cover the geometry prelude, so v1 snapshots would fail
/// the trailer comparison — the bump makes them fail with a version
/// error instead of a misleading "damaged file" one; v3 appends
/// per-trace provenance ([`tlr_core::TraceMeta`]: hit count, last-use
/// tick, source-run id) to every snapshot record; v4 appends each
/// trace's per-class instruction mix ([`tlr_isa::ClassMix`]) after the
/// provenance, for reuse attribution; v5 turns the reserved header
/// byte into a flags field ([`FLAG_COMPRESSED_FRAMES`],
/// [`FLAG_DELTA_SEGMENT`]) and extends the snapshot prelude when the
/// delta flag is set; v6 appends the producing program's *shape
/// fingerprint* ([`wire::program_shape_fingerprint`]) to the full
/// snapshot prelude, so data-varied runs of the same code can find and
/// share each other's warm state (value-validated at reuse time).
/// v2–v5 files still load (their traces carry zero provenance and/or
/// an empty mix, pre-v5 flags must be 0, and pre-v6 snapshots read as
/// value-pinned: shape 0); see [`MIN_SUPPORTED_VERSION`].
pub const FORMAT_VERSION: u16 = 6;

/// The oldest format version this build still reads.
pub const MIN_SUPPORTED_VERSION: u16 = 2;

/// Header flag (v5+): trace frames are run-length compressed. Each
/// frame payload is `u32` raw length followed by the codec stream of
/// [`crate::compress`]; the frame checksum covers the on-disk bytes.
pub const FLAG_COMPRESSED_FRAMES: u8 = 0x01;

/// Header flag (v5+): the file is an append-only *delta segment*, not
/// a full snapshot. Its prelude carries a sequence number and a
/// tombstone list, and its frames replace whole PC groups of a base
/// snapshot (see `docs/ARCHITECTURE.md`, "Snapshot file format").
pub const FLAG_DELTA_SEGMENT: u8 = 0x02;

/// Every flag bit this build understands. v5 headers with unknown
/// bits set are rejected as corrupt rather than misparsed.
pub const KNOWN_FLAGS: u8 = FLAG_COMPRESSED_FRAMES | FLAG_DELTA_SEGMENT;

/// Payload kind: a stream of executed [`tlr_isa::DynInstr`] records.
pub const KIND_TRACE_STREAM: u8 = 1;

/// Payload kind: a full [`tlr_core::RtmSnapshot`].
pub const KIND_RTM_SNAPSHOT: u8 = 2;

/// Human-readable name of a payload kind tag.
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_TRACE_STREAM => "trace stream",
        KIND_RTM_SNAPSHOT => "RTM snapshot",
        _ => "unknown",
    }
}

/// Conventional extension for binary trace streams.
pub const TRACE_EXT: &str = "tlrtrace";

/// Conventional extension for binary RTM snapshots.
pub const SNAPSHOT_EXT: &str = "tlrsnap";

/// On-disk encoding, chosen by file extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileFormat {
    /// Length-prefixed binary with the `TLRP` header (the default).
    Binary,
    /// Pretty-printed JSON for debugging and diffing.
    Json,
}

impl FileFormat {
    /// `.json` selects [`FileFormat::Json`]; everything else (including
    /// the conventional `.tlrtrace` / `.tlrsnap`) is binary.
    pub fn detect(path: &Path) -> FileFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case("json") => FileFormat::Json,
            _ => FileFormat::Binary,
        }
    }
}

/// The checked binary header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version (see [`FORMAT_VERSION`]).
    pub version: u16,
    /// Payload kind tag.
    pub kind: u8,
    /// Encoding flags (see [`KNOWN_FLAGS`]); always 0 before v5.
    pub flags: u8,
    /// Program/ISA fingerprint (see [`wire::program_fingerprint`]).
    pub fingerprint: u64,
}

impl Header {
    /// Header for a fresh file of `kind` bound to `fingerprint`.
    pub fn new(kind: u8, fingerprint: u64) -> Self {
        Self::with_flags(kind, fingerprint, 0)
    }

    /// Header for a fresh file with explicit encoding `flags`.
    pub fn with_flags(kind: u8, fingerprint: u64, flags: u8) -> Self {
        debug_assert_eq!(flags & !KNOWN_FLAGS, 0, "unknown header flags");
        Self {
            version: FORMAT_VERSION,
            kind,
            flags,
            fingerprint,
        }
    }

    /// Serialize (16 bytes).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&MAGIC);
        wire::put_u16(&mut buf, self.version);
        wire::put_u8(&mut buf, self.kind);
        wire::put_u8(&mut buf, self.flags);
        wire::put_u64(&mut buf, self.fingerprint);
        w.write_all(&buf)?;
        Ok(())
    }

    /// Parse and validate a header: magic and version are checked here;
    /// kind and fingerprint are checked against the caller's expectation
    /// with [`Header::expect`].
    pub fn read_from(r: &mut impl Read) -> Result<Header> {
        let magic: [u8; 4] = wire::read_exact(r)?;
        if magic != MAGIC {
            return Err(PersistError::BadMagic { found: magic });
        }
        let version = wire::get_u16(r)?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = wire::get_u8(r)?;
        let flags = wire::get_u8(r)?;
        if version < 5 && flags != 0 {
            return Err(PersistError::Corrupt(format!(
                "reserved header byte is {flags}, expected 0"
            )));
        }
        if flags & !KNOWN_FLAGS != 0 {
            return Err(PersistError::Corrupt(format!(
                "unknown header flags {:#04x} (known mask {:#04x})",
                flags, KNOWN_FLAGS
            )));
        }
        let fingerprint = wire::get_u64(r)?;
        Ok(Header {
            version,
            kind,
            flags,
            fingerprint,
        })
    }

    /// Reject a header whose kind or fingerprint does not match what the
    /// caller is about to do with the payload. Pass `expected_fingerprint
    /// = None` to skip the fingerprint check (inspection tools).
    pub fn expect(&self, kind: u8, expected_fingerprint: Option<u64>) -> Result<()> {
        if self.kind != kind {
            return Err(PersistError::KindMismatch {
                found: self.kind,
                expected: kind,
            });
        }
        if let Some(expected) = expected_fingerprint {
            if self.fingerprint != expected {
                return Err(PersistError::FingerprintMismatch {
                    found: self.fingerprint,
                    expected,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let h = Header::new(KIND_TRACE_STREAM, 0xfeed_f00d);
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 16);
        assert_eq!(Header::read_from(&mut buf.as_slice()).unwrap(), h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        Header::new(KIND_TRACE_STREAM, 1)
            .write_to(&mut buf)
            .unwrap();
        buf[0] = b'X';
        match Header::read_from(&mut buf.as_slice()) {
            Err(PersistError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected() {
        let mut buf = Vec::new();
        Header::new(KIND_RTM_SNAPSHOT, 1)
            .write_to(&mut buf)
            .unwrap();
        buf[4] = 0xff; // version LE low byte
        match Header::read_from(&mut buf.as_slice()) {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 0xff);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn flags_roundtrip_on_v5() {
        let h = Header::with_flags(
            KIND_RTM_SNAPSHOT,
            9,
            FLAG_COMPRESSED_FRAMES | FLAG_DELTA_SEGMENT,
        );
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(Header::read_from(&mut buf.as_slice()).unwrap(), h);
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut buf = Vec::new();
        Header::new(KIND_RTM_SNAPSHOT, 9)
            .write_to(&mut buf)
            .unwrap();
        buf[7] = 0x80; // a flag bit this build does not know
        match Header::read_from(&mut buf.as_slice()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("unknown header flags")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flags_must_be_zero_before_v5() {
        let mut buf = Vec::new();
        Header::with_flags(KIND_RTM_SNAPSHOT, 9, FLAG_DELTA_SEGMENT)
            .write_to(&mut buf)
            .unwrap();
        buf[4] = 4; // rewrite version to v4; the flag byte is now illegal
        match Header::read_from(&mut buf.as_slice()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("reserved header byte")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn kind_and_fingerprint_checked() {
        let h = Header::new(KIND_TRACE_STREAM, 7);
        assert!(h.expect(KIND_TRACE_STREAM, Some(7)).is_ok());
        assert!(matches!(
            h.expect(KIND_RTM_SNAPSHOT, Some(7)),
            Err(PersistError::KindMismatch { .. })
        ));
        assert!(matches!(
            h.expect(KIND_TRACE_STREAM, Some(8)),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        assert!(h.expect(KIND_TRACE_STREAM, None).is_ok());
    }

    /// The normative format section of `docs/ARCHITECTURE.md` must
    /// stay in sync with the code: the version pair, every flag bit,
    /// the known mask, and the base/delta file-naming scheme are
    /// checked against the document verbatim.
    #[test]
    fn format_doc_matches_wire_constants() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/ARCHITECTURE.md");
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let expect = [
            format!("current format version is **{FORMAT_VERSION}**"),
            format!("oldest\nloadable is **{MIN_SUPPORTED_VERSION}**"),
            format!("| `{FLAG_COMPRESSED_FRAMES:#04x}` | `FLAG_COMPRESSED_FRAMES`"),
            format!("| `{FLAG_DELTA_SEGMENT:#04x}` | `FLAG_DELTA_SEGMENT`"),
            format!("known mask is `{KNOWN_FLAGS:#04x}`"),
            format!("-base.{SNAPSHOT_EXT}"),
            format!("-delta-NNNNNN.{SNAPSHOT_EXT}"),
        ];
        for needle in expect {
            assert!(
                doc.contains(&needle),
                "docs/ARCHITECTURE.md is out of sync with the format constants: \
                 missing {needle:?}"
            );
        }
    }

    #[test]
    fn format_detection_by_extension() {
        assert_eq!(
            FileFormat::detect(Path::new("a.tlrtrace")),
            FileFormat::Binary
        );
        assert_eq!(
            FileFormat::detect(Path::new("a.tlrsnap")),
            FileFormat::Binary
        );
        assert_eq!(FileFormat::detect(Path::new("a.json")), FileFormat::Json);
        assert_eq!(FileFormat::detect(Path::new("a.JSON")), FileFormat::Json);
        assert_eq!(FileFormat::detect(Path::new("noext")), FileFormat::Binary);
    }
}
