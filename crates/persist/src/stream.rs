//! Recording and reading `DynInstr` streams.
//!
//! **Record mode**: [`TraceWriter`] implements [`StreamSink`], so it taps
//! directly into `tlr_vm::Vm::run` — every committed instruction is
//! appended to the file as a length-prefixed frame. The stream ends with
//! a trailer (record count, checksum, halt flag) written by
//! [`TraceWriter::close`] — always close a recording; a file without its
//! trailer is reported as truncated instead of being silently accepted.
//!
//! **Read mode**: [`TraceReader`] yields records one at a time without
//! materializing the stream, verifying the trailer when it is reached.

use crate::error::{PersistError, Result};
use crate::format::{FileFormat, Header, KIND_TRACE_STREAM};
use crate::json::{self, Json};
use crate::wire;
use std::collections::BTreeMap;
use std::fs::File;
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use tlr_isa::{DynInstr, StreamSink};
use tlr_util::fxhash::FxHasher64;

/// Streaming binary writer for an executed-instruction trace.
///
/// Use it as the sink of a VM run:
///
/// ```
/// use tlr_asm::assemble;
/// use tlr_isa::StreamSink;
/// use tlr_persist::{program_fingerprint, TraceWriter};
/// use tlr_vm::Vm;
///
/// let program = assemble("li r1, 3\nhalt\n").unwrap();
/// let mut buf = Vec::new();
/// let mut sink = TraceWriter::new(&mut buf, program_fingerprint(&program)).unwrap();
/// let outcome = Vm::new(&program).run(100, &mut sink).unwrap();
/// sink.set_halted(matches!(outcome, tlr_vm::RunOutcome::Halted { .. }));
/// assert_eq!(sink.close().unwrap(), 1);
/// ```
pub struct TraceWriter<W: Write> {
    out: W,
    checksum: FxHasher64,
    count: u64,
    halted: bool,
    trailer_written: bool,
    scratch: Vec<u8>,
    /// First I/O error, reported at [`TraceWriter::close`] (the
    /// [`StreamSink`] interface cannot propagate errors per record).
    deferred: Option<PersistError>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncate) `path` and write the stream header. The path's
    /// extension must select the binary format — JSON is a one-shot
    /// format (see [`save_trace`]), not a streaming one.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Self> {
        if FileFormat::detect(path) == FileFormat::Json {
            return Err(PersistError::Corrupt(
                "streaming trace files are binary; write JSON via save_trace".into(),
            ));
        }
        Self::new(BufWriter::new(File::create(path)?), fingerprint)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `out` and write the stream header.
    pub fn new(mut out: W, fingerprint: u64) -> Result<Self> {
        Header::new(KIND_TRACE_STREAM, fingerprint).write_to(&mut out)?;
        Ok(Self {
            out,
            checksum: FxHasher64::new(),
            count: 0,
            halted: false,
            trailer_written: false,
            scratch: Vec::with_capacity(128),
            deferred: None,
        })
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mark whether the recorded run ended on `halt` (as opposed to
    /// budget exhaustion). Stored in the trailer so replay can verify
    /// termination too. Call after the run, before
    /// [`TraceWriter::close`].
    pub fn set_halted(&mut self, halted: bool) {
        self.halted = halted;
    }

    fn append(&mut self, d: &DynInstr) -> Result<()> {
        self.scratch.clear();
        wire::put_dyn_instr(&mut self.scratch, d);
        wire::write_frame(&mut self.out, &self.scratch, &mut self.checksum)?;
        self.count += 1;
        Ok(())
    }

    fn write_trailer(&mut self) -> Result<()> {
        if self.trailer_written {
            return Ok(());
        }
        self.trailer_written = true;
        let mut buf = Vec::with_capacity(21);
        wire::put_u32(&mut buf, 0);
        wire::put_u64(&mut buf, self.count);
        wire::put_u64(&mut buf, self.checksum.finish());
        wire::put_u8(&mut buf, self.halted as u8);
        self.out.write_all(&buf)?;
        self.out.flush()?;
        Ok(())
    }

    /// Write the trailer, flush, and surface any deferred I/O error.
    /// Returns the number of records written. A recording that is never
    /// closed has no trailer and loads as "truncated".
    pub fn close(mut self) -> Result<u64> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        self.write_trailer()?;
        Ok(self.count)
    }
}

impl<W: Write> StreamSink for TraceWriter<W> {
    fn observe(&mut self, d: &DynInstr) {
        if self.deferred.is_none() {
            if let Err(e) = self.append(d) {
                self.deferred = Some(e);
            }
        }
    }

    fn finish(&mut self) {
        // The trailer is NOT written here: `Vm::run` calls `finish`
        // before the recorder knows the run outcome (`set_halted`).
        // Flush so even an unclosed recording is readable up to its
        // last record.
        if self.deferred.is_none() {
            if let Err(e) = self.out.flush() {
                self.deferred = Some(e.into());
            }
        }
    }
}

/// Pull-based reader over a recorded stream.
pub struct TraceReader<R: Read> {
    input: R,
    checksum: FxHasher64,
    count: u64,
    header: Header,
    /// Set once the trailer has been read and verified.
    halted: Option<bool>,
}

impl TraceReader<BufReader<File>> {
    /// Open a binary trace stream, checking magic, version, kind, and —
    /// when `expected_fingerprint` is given — the program fingerprint.
    pub fn open(path: &Path, expected_fingerprint: Option<u64>) -> Result<Self> {
        if FileFormat::detect(path) == FileFormat::Json {
            return Err(PersistError::Corrupt(
                "streaming trace files are binary; read JSON via load_trace".into(),
            ));
        }
        Self::new(BufReader::new(File::open(path)?), expected_fingerprint)
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap `input`, validating the header.
    pub fn new(mut input: R, expected_fingerprint: Option<u64>) -> Result<Self> {
        let header = Header::read_from(&mut input)?;
        header.expect(KIND_TRACE_STREAM, expected_fingerprint)?;
        Ok(Self {
            input,
            checksum: FxHasher64::new(),
            count: 0,
            header,
            halted: None,
        })
    }

    /// The validated header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// Whether the recorded run halted — known only after the trailer
    /// has been reached (i.e. [`TraceReader::next_record`] returned
    /// `Ok(None)`).
    pub fn halted(&self) -> Option<bool> {
        self.halted
    }

    /// Records read so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Next record, or `Ok(None)` at the (verified) end of the stream.
    pub fn next_record(&mut self) -> Result<Option<DynInstr>> {
        if self.halted.is_some() {
            return Ok(None);
        }
        match wire::read_frame(&mut self.input, &mut self.checksum) {
            Ok(Some(frame)) => {
                let mut slice = frame.as_slice();
                let d = wire::get_dyn_instr(&mut slice)?;
                if !slice.is_empty() {
                    return Err(PersistError::Corrupt(format!(
                        "{} stray bytes after record {}",
                        slice.len(),
                        self.count
                    )));
                }
                self.count += 1;
                Ok(Some(d))
            }
            Ok(None) => {
                let truncated = |e: PersistError| match e {
                    PersistError::Io(io) if io.kind() == std::io::ErrorKind::UnexpectedEof => {
                        PersistError::Corrupt("stream truncated inside the trailer".into())
                    }
                    other => other,
                };
                let count = wire::get_u64(&mut self.input).map_err(truncated)?;
                let checksum = wire::get_u64(&mut self.input).map_err(truncated)?;
                let halted = wire::get_u8(&mut self.input).map_err(truncated)?;
                if count != self.count {
                    return Err(PersistError::Corrupt(format!(
                        "trailer claims {count} records, stream held {}",
                        self.count
                    )));
                }
                if checksum != self.checksum.finish() {
                    return Err(PersistError::Corrupt(
                        "stream checksum mismatch (file is damaged)".into(),
                    ));
                }
                self.halted = Some(halted != 0);
                Ok(None)
            }
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(PersistError::Corrupt(format!(
                    "stream truncated after {} records (no trailer; the recording \
                     process likely died before finish)",
                    self.count
                )))
            }
            Err(e) => Err(e),
        }
    }

    /// Read all remaining records into memory.
    pub fn read_to_end(&mut self) -> Result<Vec<DynInstr>> {
        let mut records = Vec::new();
        while let Some(d) = self.next_record()? {
            records.push(d);
        }
        Ok(records)
    }
}

/// An in-memory trace, as loaded by [`load_trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceFile {
    /// Program/ISA fingerprint the trace was recorded under.
    pub fingerprint: u64,
    /// The executed instructions, in order.
    pub records: Vec<DynInstr>,
    /// Whether the recorded run ended on `halt`.
    pub halted: bool,
}

/// JSON format tag for trace streams.
pub const JSON_TRACE_FORMAT: &str = "tlr-trace-v1";

fn dyn_instr_to_json(d: &DynInstr) -> Json {
    let pairs = |items: &[(tlr_isa::Loc, u64)]| {
        Json::Arr(
            items
                .iter()
                .map(|(loc, val)| {
                    let (tag, n) = wire::loc_tag(*loc);
                    Json::Arr(vec![Json::Num(tag), Json::Num(n), Json::Num(*val)])
                })
                .collect(),
        )
    };
    let mut obj = BTreeMap::new();
    obj.insert("pc".into(), Json::Num(d.pc as u64));
    obj.insert("next_pc".into(), Json::Num(d.next_pc as u64));
    obj.insert(
        "class".into(),
        Json::Num(wire::opclass_code(d.class) as u64),
    );
    obj.insert("reads".into(), pairs(d.reads.as_slice()));
    obj.insert("writes".into(), pairs(d.writes.as_slice()));
    Json::Obj(obj)
}

pub(crate) fn json_pairs(value: &Json, what: &str) -> Result<Vec<(tlr_isa::Loc, u64)>> {
    value
        .as_arr(what)?
        .iter()
        .map(|item| {
            let triple = item.as_arr(what)?;
            if triple.len() != 3 {
                return Err(PersistError::Corrupt(format!(
                    "\"{what}\": location entries are [tag, loc, value] triples"
                )));
            }
            let loc = wire::loc_from_tag(triple[0].as_u64(what)?, triple[1].as_u64(what)?)?;
            Ok((loc, triple[2].as_u64(what)?))
        })
        .collect()
}

fn dyn_instr_from_json(value: &Json) -> Result<DynInstr> {
    let reads = json_pairs(value.field("reads")?, "reads")?;
    let writes = json_pairs(value.field("writes")?, "writes")?;
    if reads.len() > tlr_isa::dynrec::MAX_READS || writes.len() > tlr_isa::dynrec::MAX_WRITES {
        return Err(PersistError::Corrupt(
            "record exceeds read/write set capacity".into(),
        ));
    }
    Ok(DynInstr {
        pc: value.field("pc")?.as_u32("pc")?,
        next_pc: value.field("next_pc")?.as_u32("next_pc")?,
        class: wire::opclass_from_code(value.field("class")?.as_u8("class")?)?,
        reads: reads.into_iter().collect(),
        writes: writes.into_iter().collect(),
    })
}

/// Save a trace to `path`, choosing binary or JSON by extension.
pub fn save_trace(path: &Path, fingerprint: u64, records: &[DynInstr], halted: bool) -> Result<()> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut writer = TraceWriter::create(path, fingerprint)?;
            for d in records {
                writer.append(d)?;
            }
            writer.set_halted(halted);
            writer.close()?;
            Ok(())
        }
        FileFormat::Json => {
            let mut obj = BTreeMap::new();
            obj.insert("format".into(), Json::Str(JSON_TRACE_FORMAT.into()));
            obj.insert("fingerprint".into(), Json::Num(fingerprint));
            obj.insert("halted".into(), Json::Bool(halted));
            obj.insert(
                "records".into(),
                Json::Arr(records.iter().map(dyn_instr_to_json).collect()),
            );
            std::fs::write(path, json::to_string_pretty(&Json::Obj(obj)))?;
            Ok(())
        }
    }
}

/// Load a trace from `path` (format by extension), optionally pinning
/// the expected program fingerprint.
pub fn load_trace(path: &Path, expected_fingerprint: Option<u64>) -> Result<TraceFile> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut reader = TraceReader::open(path, expected_fingerprint)?;
            let records = reader.read_to_end()?;
            Ok(TraceFile {
                fingerprint: reader.header().fingerprint,
                records,
                halted: reader.halted().unwrap_or(false),
            })
        }
        FileFormat::Json => {
            let doc = json::parse(&std::fs::read_to_string(path)?)?;
            let format = doc.field("format")?.as_str("format")?;
            if format != JSON_TRACE_FORMAT {
                return Err(PersistError::Corrupt(format!(
                    "\"format\" is {format:?}, expected {JSON_TRACE_FORMAT:?}"
                )));
            }
            let fingerprint = doc.field("fingerprint")?.as_u64("fingerprint")?;
            if let Some(expected) = expected_fingerprint {
                if fingerprint != expected {
                    return Err(PersistError::FingerprintMismatch {
                        found: fingerprint,
                        expected,
                    });
                }
            }
            let halted = matches!(doc.field("halted")?, Json::Bool(true));
            let records = doc
                .field("records")?
                .as_arr("records")?
                .iter()
                .map(dyn_instr_from_json)
                .collect::<Result<Vec<_>>>()?;
            Ok(TraceFile {
                fingerprint,
                records,
                halted,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::{Loc, OpClass};

    fn sample(pc: u32) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: [(Loc::IntReg(1), pc as u64), (Loc::Mem(100 + pc as u64), 7)]
                .into_iter()
                .collect(),
            writes: [(Loc::IntReg(2), pc as u64 * 3)].into_iter().collect(),
        }
    }

    #[test]
    fn in_memory_roundtrip_with_trailer() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 42).unwrap();
        for pc in 0..50 {
            w.observe(&sample(pc));
        }
        w.set_halted(true);
        w.finish();
        assert_eq!(w.close().unwrap(), 50);

        let mut r = TraceReader::new(buf.as_slice(), Some(42)).unwrap();
        let records = r.read_to_end().unwrap();
        assert_eq!(records.len(), 50);
        assert_eq!(records[13], sample(13));
        assert_eq!(r.halted(), Some(true));
        // Reading past the end stays at the end.
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn wrong_fingerprint_rejected() {
        let mut buf = Vec::new();
        let w = TraceWriter::new(&mut buf, 1).unwrap();
        w.close().unwrap();
        assert!(matches!(
            TraceReader::new(buf.as_slice(), Some(2)),
            Err(PersistError::FingerprintMismatch {
                found: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 0).unwrap();
        for pc in 0..10 {
            w.observe(&sample(pc));
        }
        w.close().unwrap();
        // Chop the trailer (and a bit of the last record).
        buf.truncate(buf.len() - 30);
        let mut r = TraceReader::new(buf.as_slice(), None).unwrap();
        let err = loop {
            match r.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated stream accepted"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 0).unwrap();
        for pc in 0..10 {
            w.observe(&sample(pc));
        }
        w.close().unwrap();
        // Flip a value byte inside a record, keeping lengths intact.
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        let mut r = TraceReader::new(buf.as_slice(), None).unwrap();
        let mut saw_error = false;
        loop {
            match r.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "bit flip not detected");
    }

    #[test]
    fn json_file_roundtrip() {
        let dir = std::env::temp_dir().join("tlr-persist-test-json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let records: Vec<DynInstr> = (0..5).map(sample).collect();
        save_trace(&path, 99, &records, false).unwrap();
        let loaded = load_trace(&path, Some(99)).unwrap();
        assert_eq!(loaded.records, records);
        assert_eq!(loaded.fingerprint, 99);
        assert!(!loaded.halted);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_writer_refuses_json_path() {
        assert!(TraceWriter::create(Path::new("/tmp/x.json"), 0).is_err());
    }
}
