//! Deterministic replay of recorded instruction streams.
//!
//! Replay re-executes the program from scratch and checks every executed
//! instruction against the recording — PC, next PC, and the full ordered
//! read/write sets (live-in and live-out values). Any mismatch aborts
//! with [`PersistError::Divergence`] identifying the record index and
//! both sides, in the spirit of wasm-rr's divergence checks: a replay
//! that silently drifts is worse than no replay at all.
//!
//! Because the VM is deterministic, divergence can only mean the trace
//! file belongs to a different program/configuration (normally caught
//! earlier by the header fingerprint) or the file is damaged in a way
//! the checksum did not cover (e.g. hand-edited JSON).

use crate::error::{PersistError, Result};
use crate::stream::{TraceFile, TraceReader};
use std::io::Read;
use tlr_asm::Program;
use tlr_isa::{DynInstr, Loc};
use tlr_vm::{StepResult, Vm};

/// A source of recorded instructions for replay.
pub trait RecordSource {
    /// Next recorded instruction, or `Ok(None)` at the end.
    fn next_record(&mut self) -> Result<Option<DynInstr>>;

    /// Whether the recorded run halted; `None` when unknown (only known
    /// after the end of the source has been reached).
    fn halted(&self) -> Option<bool>;
}

impl<R: Read> RecordSource for TraceReader<R> {
    fn next_record(&mut self) -> Result<Option<DynInstr>> {
        TraceReader::next_record(self)
    }

    fn halted(&self) -> Option<bool> {
        TraceReader::halted(self)
    }
}

/// In-memory source over a loaded [`TraceFile`].
pub struct MemorySource {
    records: std::vec::IntoIter<DynInstr>,
    halted: bool,
}

impl From<TraceFile> for MemorySource {
    fn from(file: TraceFile) -> Self {
        Self {
            records: file.records.into_iter(),
            halted: file.halted,
        }
    }
}

impl RecordSource for MemorySource {
    fn next_record(&mut self) -> Result<Option<DynInstr>> {
        Ok(self.records.next())
    }

    fn halted(&self) -> Option<bool> {
        Some(self.halted)
    }
}

/// What a successful replay did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayStats {
    /// Instructions replayed and verified.
    pub replayed: u64,
    /// Whether the run ended on `halt` (verified against the recording
    /// when the recording carries that information).
    pub halted: bool,
}

fn describe(d: &DynInstr) -> String {
    let sets = |items: &[(Loc, u64)]| {
        items
            .iter()
            .map(|(l, v)| format!("{l}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "pc={} -> {} reads[{}] writes[{}]",
        d.pc,
        d.next_pc,
        sets(d.reads.as_slice()),
        sets(d.writes.as_slice())
    )
}

/// Replay `source` against a fresh run of `program`, failing loudly on
/// the first divergence. On success the final architectural state of the
/// returned [`Vm`] equals the recording run's state.
pub fn replay(program: &Program, source: &mut dyn RecordSource) -> Result<(ReplayStats, Vm)> {
    let mut vm = Vm::new(program);
    let mut index = 0u64;
    while let Some(expected) = source.next_record()? {
        let actual = match vm.step() {
            Ok(StepResult::Executed(d)) => d,
            Ok(StepResult::Halted) => {
                return Err(PersistError::Divergence {
                    index,
                    expected: describe(&expected),
                    actual: "halt".into(),
                })
            }
            Err(e) => {
                return Err(PersistError::Divergence {
                    index,
                    expected: describe(&expected),
                    actual: format!("vm error: {e}"),
                })
            }
        };
        if actual != expected {
            return Err(PersistError::Divergence {
                index,
                expected: describe(&expected),
                actual: describe(&actual),
            });
        }
        index += 1;
    }
    // If the recording says the run halted, the very next step must
    // halt; if it says the budget ran out, the program must NOT have
    // already halted mid-recording (any halt would have been recorded as
    // the end).
    let halted = match source.halted() {
        Some(true) => match vm.step() {
            Ok(StepResult::Halted) => true,
            Ok(StepResult::Executed(d)) => {
                return Err(PersistError::Divergence {
                    index,
                    expected: "halt".into(),
                    actual: describe(&d),
                })
            }
            Err(e) => {
                return Err(PersistError::Divergence {
                    index,
                    expected: "halt".into(),
                    actual: format!("vm error: {e}"),
                })
            }
        },
        _ => false,
    };
    Ok((
        ReplayStats {
            replayed: index,
            halted,
        },
        vm,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{TraceReader, TraceWriter};
    use crate::wire::program_fingerprint;
    use tlr_asm::assemble;
    use tlr_isa::StreamSink;
    use tlr_vm::RunOutcome;

    const LOOP: &str = r#"
            li      r1, 6
            li      r2, 0
    loop:   addq    r2, r2, r1
            subq    r1, r1, 1
            bnez    r1, loop
            stq     r2, 100(zero)
            halt
    "#;

    fn record(src: &str, budget: u64) -> (Program, Vec<u8>) {
        let program = assemble(src).unwrap();
        let mut buf = Vec::new();
        let mut sink = TraceWriter::new(&mut buf, program_fingerprint(&program)).unwrap();
        let outcome = Vm::new(&program).run(budget, &mut sink).unwrap();
        sink.set_halted(matches!(outcome, RunOutcome::Halted { .. }));
        sink.finish();
        sink.close().unwrap();
        (program, buf)
    }

    #[test]
    fn faithful_replay_reaches_identical_state() {
        let (program, buf) = record(LOOP, 10_000);
        let mut reader = TraceReader::new(buf.as_slice(), None).unwrap();
        let (stats, vm) = replay(&program, &mut reader).unwrap();
        assert!(stats.halted);
        assert_eq!(
            stats.replayed,
            Vm::new(&program)
                .run(10_000, &mut tlr_isa::NullSink)
                .unwrap()
                .executed()
        );
        assert_eq!(vm.peek_loc(Loc::Mem(100)), 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn budget_bounded_recording_replays() {
        let (program, buf) = record(LOOP, 7);
        let mut reader = TraceReader::new(buf.as_slice(), None).unwrap();
        let (stats, _) = replay(&program, &mut reader).unwrap();
        assert_eq!(stats.replayed, 7);
        assert!(!stats.halted);
    }

    #[test]
    fn divergence_on_wrong_program() {
        let (_, buf) = record(LOOP, 10_000);
        // Same shape, different constant: the stream's fingerprint would
        // normally catch this, so bypass that check to exercise the
        // per-record comparison.
        let other = assemble(LOOP.replace("li      r1, 6", "li      r1, 5").as_str()).unwrap();
        let mut reader = TraceReader::new(buf.as_slice(), None).unwrap();
        match replay(&other, &mut reader) {
            Err(PersistError::Divergence { index, .. }) => assert_eq!(index, 0),
            Err(other) => panic!("expected divergence, got {other}"),
            Ok(_) => panic!("expected divergence, replay succeeded"),
        }
    }

    #[test]
    fn divergence_on_tampered_record() {
        let (program, buf) = record(LOOP, 10_000);
        let mut file = crate::stream::TraceReader::new(buf.as_slice(), None)
            .map(|mut r| {
                let records = r.read_to_end().unwrap();
                crate::stream::TraceFile {
                    fingerprint: r.header().fingerprint,
                    records,
                    halted: r.halted().unwrap(),
                }
            })
            .unwrap();
        // Tamper with a recorded live-in value.
        let target = &mut file.records[4];
        if let Some(first) = target.reads.as_mut_slice().first_mut() {
            first.1 ^= 0xff;
        } else {
            target.next_pc ^= 1;
        }
        let mut source = MemorySource::from(file);
        match replay(&program, &mut source) {
            Err(PersistError::Divergence { index, .. }) => assert_eq!(index, 4),
            Err(other) => panic!("expected divergence, got {other}"),
            Ok(_) => panic!("expected divergence, replay succeeded"),
        }
    }

    #[test]
    fn premature_halt_detected() {
        // Record the full run, then claim "budget" ended earlier than the
        // halt and append a bogus extra record: replay must notice the VM
        // halts when the recording expects another instruction.
        let (program, buf) = record(LOOP, 10_000);
        let mut reader = TraceReader::new(buf.as_slice(), None).unwrap();
        let mut records = reader.read_to_end().unwrap();
        let extra = records[0].clone();
        records.push(extra);
        let mut source = MemorySource::from(crate::stream::TraceFile {
            fingerprint: 0,
            records,
            halted: false,
        });
        match replay(&program, &mut source) {
            Err(PersistError::Divergence { actual, .. }) => assert_eq!(actual, "halt"),
            Err(other) => panic!("expected divergence, got {other}"),
            Ok(_) => panic!("expected divergence, replay succeeded"),
        }
    }
}
