//! Saving and loading full [`RtmSnapshot`]s.
//!
//! Binary layout after the 16-byte header (see [`crate::format`]):
//!
//! | field | size |
//! |---|---|
//! | geometry: sets, ways, per-PC | 3 × u32 |
//! | trace count | u64 |
//! | traces | count × length-prefixed frames: [`tlr_core::TraceRecord`] + (v3) [`tlr_core::TraceMeta`] + (v4) [`tlr_isa::ClassMix`] |
//! | trailer | u32 zero marker, u64 count, u64 checksum |
//!
//! Format v3 appends the 24-byte per-trace provenance
//! ([`tlr_core::TraceMeta`]: hits, last-use tick, source-run id) inside
//! each trace's frame, covered by the frame checksum; v4 additionally
//! appends the trace's per-class instruction mix. v2/v3 files still
//! load; their traces carry zero provenance and/or an empty mix.
//!
//! Format v5 adds two header flags: [`FLAG_COMPRESSED_FRAMES`] (each
//! frame payload becomes `u32` raw length + the [`crate::compress`]
//! stream) and [`FLAG_DELTA_SEGMENT`] (the file is an incremental
//! *delta segment*, see [`crate::delta`]). Binary loads read the whole
//! file into memory up front and parse from the buffer — one syscall
//! per file on the serving path instead of `BufReader` chatter.

use crate::compress;
use crate::error::{PersistError, Result};
use crate::format::{
    FileFormat, Header, FLAG_COMPRESSED_FRAMES, FLAG_DELTA_SEGMENT, KIND_RTM_SNAPSHOT,
};
use crate::json::{self, Json};
use crate::stream::json_pairs;
use crate::wire;
use std::collections::BTreeMap;
use std::fs::File;
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use tlr_core::{
    IoCaps, ReplacementPolicy, RtmConfig, RtmSnapshot, SetAssocGeometry, TraceMeta, TraceRecord,
};
use tlr_util::fxhash::FxHasher64;

/// JSON format tag for RTM snapshots.
pub const JSON_SNAPSHOT_FORMAT: &str = "tlr-rtm-v1";

/// Largest RTM geometry a snapshot may declare, per dimension. A factor
/// above the paper's biggest configuration (`RTM_256K`: 2048 × 8 × 16)
/// to leave headroom for experiments, but small enough that a corrupt or
/// hostile header can never trigger a huge allocation on import.
pub const MAX_GEOMETRY_SETS: u32 = 1 << 12;
/// Cap on the `ways` dimension (see [`MAX_GEOMETRY_SETS`]).
pub const MAX_GEOMETRY_WAYS: u32 = 64;
/// Cap on the `per_pc` dimension (see [`MAX_GEOMETRY_SETS`]).
pub const MAX_GEOMETRY_PER_PC: u32 = 64;
/// Cap on total declared trace capacity (4× `RTM_256K`).
pub const MAX_GEOMETRY_CAPACITY: u64 = 1 << 20;

/// Per-side I/O bounds a loaded trace record must satisfy. Generous
/// relative to collection (the paper caps at 8 registers + 4 memory
/// values a side; the register files only hold 64 locations total) but
/// bounded, so cap-busting records are rejected instead of corrupting
/// RTM accounting downstream.
pub const SNAPSHOT_IO_CAPS: IoCaps = IoCaps {
    reg_in: 64,
    mem_in: 1024,
    reg_out: 64,
    mem_out: 1024,
};

/// Encoding choices for [`save_snapshot_with`]. The default matches
/// [`save_snapshot`]: an uncompressed full snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotWriteOptions {
    /// Run-length compress every trace frame ([`FLAG_COMPRESSED_FRAMES`]).
    /// Ignored by the JSON debug format.
    pub compress: bool,
}

/// Save `snapshot` to `path`, choosing binary or JSON by extension.
pub fn save_snapshot(path: &Path, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<()> {
    save_snapshot_with(path, fingerprint, snapshot, SnapshotWriteOptions::default())
}

/// [`save_snapshot`] with explicit [`SnapshotWriteOptions`].
pub fn save_snapshot_with(
    path: &Path,
    fingerprint: u64,
    snapshot: &RtmSnapshot,
    options: SnapshotWriteOptions,
) -> Result<()> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut out = BufWriter::new(File::create(path)?);
            write_snapshot_with(&mut out, fingerprint, snapshot, options)?;
            out.flush()?;
            Ok(())
        }
        FileFormat::Json => {
            let text = json::to_string_pretty(&snapshot_to_json(fingerprint, snapshot));
            std::fs::write(path, text)?;
            Ok(())
        }
    }
}

/// Load a snapshot from `path` (format by extension), optionally pinning
/// the expected program fingerprint. Returns the file's fingerprint and
/// the snapshot. Delta segments are rejected with a named error — load
/// them through [`load_merged_snapshots`] next to their base.
pub fn load_snapshot(path: &Path, expected_fingerprint: Option<u64>) -> Result<(u64, RtmSnapshot)> {
    match load_snapshot_payload(path, expected_fingerprint)? {
        (fp, SnapshotPayload::Full(snapshot)) => Ok((fp, snapshot)),
        (_, SnapshotPayload::Delta(_)) => Err(PersistError::Corrupt(format!(
            "{} is a delta segment; load it with its base via load_merged_snapshots, \
             or fold it with `tlrsim compact`",
            path.display()
        ))),
    }
}

/// What a snapshot file holds: a full snapshot, or an incremental delta
/// segment that overlays one (see [`crate::delta`]).
#[derive(Clone, Debug)]
pub enum SnapshotPayload {
    /// A complete snapshot (formats v2–v5 without the delta flag).
    Full(RtmSnapshot),
    /// A v5 delta segment ([`FLAG_DELTA_SEGMENT`]).
    Delta(crate::delta::DeltaSegment),
}

/// Load either payload kind from `path` (format by extension). Binary
/// files are read whole into memory and parsed from the buffer.
pub fn load_snapshot_payload(
    path: &Path,
    expected_fingerprint: Option<u64>,
) -> Result<(u64, SnapshotPayload)> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let bytes = std::fs::read(path)?;
            let mut r = bytes.as_slice();
            let header = Header::read_from(&mut r)?;
            header.expect(KIND_RTM_SNAPSHOT, expected_fingerprint)?;
            if header.flags & FLAG_DELTA_SEGMENT != 0 {
                let delta = crate::delta::read_delta_body(&mut r, &header)?;
                Ok((header.fingerprint, SnapshotPayload::Delta(delta)))
            } else {
                let snapshot = read_snapshot_body(&mut r, &header)?;
                Ok((header.fingerprint, SnapshotPayload::Full(snapshot)))
            }
        }
        FileFormat::Json => {
            let doc = json::parse(&std::fs::read_to_string(path)?)?;
            if doc.opt_field("delta").is_some() {
                let (fp, delta) = crate::delta::delta_from_json(&doc, expected_fingerprint)?;
                Ok((fp, SnapshotPayload::Delta(delta)))
            } else {
                let (fp, snapshot) = snapshot_from_json(&doc, expected_fingerprint)?;
                Ok((fp, SnapshotPayload::Full(snapshot)))
            }
        }
    }
}

/// Load several snapshot files of the **same program** and merge them
/// into one pooled snapshot ([`RtmSnapshot::merge`] semantics: shared
/// geometry required, MRU priority follows file order, so list the
/// freshest run last).
///
/// Every file's fingerprint must agree — with `expected_fingerprint`
/// when given, otherwise with the first file's. Returns that fingerprint
/// and the merged snapshot.
pub fn load_merged_snapshots(
    paths: &[impl AsRef<Path>],
    expected_fingerprint: Option<u64>,
) -> Result<(u64, RtmSnapshot)> {
    load_merged_snapshots_with(paths, expected_fingerprint, ReplacementPolicy::Lru)
}

/// [`load_merged_snapshots`] merging under an explicit replacement
/// policy ([`RtmSnapshot::merge_with`] semantics): the non-recency
/// policies rank the pooled traces by their persisted provenance.
pub fn load_merged_snapshots_with(
    paths: &[impl AsRef<Path>],
    expected_fingerprint: Option<u64>,
    policy: ReplacementPolicy,
) -> Result<(u64, RtmSnapshot)> {
    load_merged_snapshots_tuned(paths, expected_fingerprint, policy, tlr_core::LFU_HALF_LIFE)
}

/// [`load_merged_snapshots_with`] under a caller-chosen LFU aging
/// half-life ([`RtmSnapshot::merge_detailed_tuned`] semantics; only
/// [`ReplacementPolicy::Lfu`] victim selection consults it).
pub fn load_merged_snapshots_tuned(
    paths: &[impl AsRef<Path>],
    expected_fingerprint: Option<u64>,
    policy: ReplacementPolicy,
    lfu_half_life: u64,
) -> Result<(u64, RtmSnapshot)> {
    if paths.is_empty() {
        return Err(PersistError::Merge(tlr_core::MergeError::Empty));
    }
    let mut pinned = expected_fingerprint;
    let mut snapshots = Vec::with_capacity(paths.len());
    let mut deltas: Vec<(usize, crate::delta::DeltaSegment)> = Vec::new();
    for (order, path) in paths.iter().enumerate() {
        let (fp, payload) = load_snapshot_payload(path.as_ref(), pinned)?;
        pinned = Some(fp);
        match payload {
            SnapshotPayload::Full(snapshot) => snapshots.push(snapshot),
            SnapshotPayload::Delta(delta) => deltas.push((order, delta)),
        }
    }
    let fingerprint = pinned.expect("at least one file loaded");
    let mut merged = if snapshots.is_empty() {
        // Delta-only directory (the base was compacted away elsewhere,
        // or never written): overlay onto an empty snapshot of the
        // deltas' geometry.
        let config = deltas[0].1.config;
        RtmSnapshot {
            config,
            traces: Vec::new(),
            meta: Vec::new(),
            shape: 0,
        }
    } else {
        RtmSnapshot::merge_detailed_tuned(&snapshots, policy, lfu_half_life)?.snapshot
    };
    if !deltas.is_empty() {
        // Replay deltas in sequence order (file order breaks ties), then
        // re-import through a single-input merge so recency seeding and
        // capacity enforcement match a full-snapshot load exactly.
        deltas.sort_by_key(|(order, delta)| (delta.seq, *order));
        for (_, delta) in &deltas {
            crate::delta::apply_delta(&mut merged, delta)?;
        }
        crate::delta::canonicalize(&mut merged);
        merged = RtmSnapshot::merge_detailed_tuned(&[merged], policy, lfu_half_life)?.snapshot;
    }
    Ok((fingerprint, merged))
}

/// Read only a snapshot file's program fingerprint, without
/// deserializing any traces. A registry indexing a directory of
/// snapshots uses this to map fingerprint → path cheaply; binary files
/// cost one 16-byte header read, JSON files one parse.
pub fn peek_snapshot_fingerprint(path: &Path) -> Result<u64> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut r = BufReader::new(File::open(path)?);
            let header = Header::read_from(&mut r)?;
            header.expect(KIND_RTM_SNAPSHOT, None)?;
            Ok(header.fingerprint)
        }
        FileFormat::Json => {
            let doc = json::parse(&std::fs::read_to_string(path)?)?;
            let format = doc.field("format")?.as_str("format")?;
            if format != JSON_SNAPSHOT_FORMAT {
                return Err(PersistError::Corrupt(format!(
                    "\"format\" is {format:?}, expected {JSON_SNAPSHOT_FORMAT:?}"
                )));
            }
            doc.field("fingerprint")?.as_u64("fingerprint")
        }
    }
}

/// Read a snapshot file's program fingerprint *and* shape fingerprint
/// without deserializing any traces. The shape is 0 (value-pinned) for
/// pre-v6 files, delta segments, and JSON dumps without a `"shape"`
/// field. Binary files cost one header + prelude read; JSON files one
/// parse.
pub fn peek_snapshot_identity(path: &Path) -> Result<(u64, u64)> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut r = BufReader::new(File::open(path)?);
            let header = Header::read_from(&mut r)?;
            header.expect(KIND_RTM_SNAPSHOT, None)?;
            if header.version < 6 || header.flags & FLAG_DELTA_SEGMENT != 0 {
                return Ok((header.fingerprint, 0));
            }
            // Full v6 prelude: geometry (12 B) + count (8 B) + shape.
            let mut prelude = [0u8; 28];
            r.read_exact(&mut prelude)?;
            let mut cursor = &prelude[20..];
            let shape = wire::get_u64(&mut cursor)?;
            Ok((header.fingerprint, shape))
        }
        FileFormat::Json => {
            let doc = json::parse(&std::fs::read_to_string(path)?)?;
            let format = doc.field("format")?.as_str("format")?;
            if format != JSON_SNAPSHOT_FORMAT {
                return Err(PersistError::Corrupt(format!(
                    "\"format\" is {format:?}, expected {JSON_SNAPSHOT_FORMAT:?}"
                )));
            }
            let fingerprint = doc.field("fingerprint")?.as_u64("fingerprint")?;
            let shape = if doc.opt_field("delta").is_some() {
                0
            } else {
                match doc.opt_field("shape") {
                    Some(s) => s.as_u64("shape")?,
                    None => 0,
                }
            };
            Ok((fingerprint, shape))
        }
    }
}

/// Serialize a snapshot to any writer (binary format, uncompressed).
pub fn write_snapshot(w: &mut impl Write, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<()> {
    write_snapshot_with(w, fingerprint, snapshot, SnapshotWriteOptions::default())
}

/// [`write_snapshot`] with explicit [`SnapshotWriteOptions`].
pub fn write_snapshot_with(
    w: &mut impl Write,
    fingerprint: u64,
    snapshot: &RtmSnapshot,
    options: SnapshotWriteOptions,
) -> Result<()> {
    let flags = if options.compress {
        FLAG_COMPRESSED_FRAMES
    } else {
        0
    };
    Header::with_flags(KIND_RTM_SNAPSHOT, fingerprint, flags).write_to(w)?;
    let geometry = snapshot.config.geometry;
    let mut prelude = Vec::with_capacity(28);
    wire::put_u32(&mut prelude, geometry.sets);
    wire::put_u32(&mut prelude, geometry.ways);
    wire::put_u32(&mut prelude, geometry.per_pc);
    wire::put_u64(&mut prelude, snapshot.traces.len() as u64);
    // v6: the producing program's shape fingerprint (0 = value-pinned),
    // covered by the checksum like the rest of the prelude.
    wire::put_u64(&mut prelude, snapshot.shape);
    w.write_all(&prelude)?;

    // The checksum covers the geometry prelude too: a bit flip in
    // `ways` would otherwise still parse as a (different) valid
    // geometry and silently re-shape the import.
    let mut checksum = FxHasher64::new();
    checksum.write(&prelude);
    let mut scratch = Vec::with_capacity(256);
    for (trace, meta) in snapshot.entries() {
        scratch.clear();
        wire::put_trace_record(&mut scratch, trace)?;
        wire::put_trace_meta(&mut scratch, &meta);
        wire::put_class_mix(&mut scratch, trace.mix);
        emit_frame(w, &scratch, options.compress, &mut checksum)?;
    }
    let mut trailer = Vec::with_capacity(20);
    wire::put_u32(&mut trailer, 0);
    wire::put_u64(&mut trailer, snapshot.traces.len() as u64);
    wire::put_u64(&mut trailer, checksum.finish());
    w.write_all(&trailer)?;
    Ok(())
}

/// Write one entry frame, compressing the payload when asked. The frame
/// checksum always covers the on-disk bytes, so damage to a compressed
/// stream is caught before decompression output reaches the parser.
pub(crate) fn emit_frame(
    w: &mut impl Write,
    raw: &[u8],
    compress_payload: bool,
    checksum: &mut FxHasher64,
) -> Result<()> {
    if compress_payload {
        let mut payload = Vec::with_capacity(raw.len() / 2 + 8);
        wire::put_u32(&mut payload, raw.len() as u32);
        payload.extend_from_slice(&compress::compress(raw));
        wire::write_frame(w, &payload, checksum)
    } else {
        wire::write_frame(w, raw, checksum)
    }
}

/// Read one entry frame, inverting [`emit_frame`]. Returns `None` at
/// the trailer marker.
pub(crate) fn next_frame(
    r: &mut impl Read,
    compressed: bool,
    checksum: &mut FxHasher64,
) -> Result<Option<Vec<u8>>> {
    let Some(frame) = wire::read_frame(r, checksum)? else {
        return Ok(None);
    };
    if !compressed {
        return Ok(Some(frame));
    }
    let mut slice = frame.as_slice();
    let raw_len = wire::get_u32(&mut slice)?;
    if raw_len > wire::MAX_FRAME {
        return Err(PersistError::Corrupt(format!(
            "compressed frame declares {raw_len} raw bytes, over the {} cap",
            wire::MAX_FRAME
        )));
    }
    Ok(Some(compress::decompress(slice, raw_len as usize)?))
}

/// Decode one entry frame's payload into record + provenance, with the
/// per-version field layout and the loader's named corruption errors.
pub(crate) fn decode_entry(
    frame: &[u8],
    version: u16,
    index: usize,
) -> Result<(TraceRecord, TraceMeta)> {
    // v2 frames hold the bare record; v3 frames append provenance; v4+
    // frames append the class mix after the provenance.
    let with_provenance = version >= 3;
    let with_mix = version >= 4;
    let mut slice = frame;
    let mut trace = wire::get_trace_record(&mut slice)?;
    let trace_meta = if with_provenance {
        wire::get_trace_meta(&mut slice).map_err(|_| {
            PersistError::Corrupt(format!(
                "trace {index} (pc={:#x}) is missing its provenance record",
                trace.start_pc
            ))
        })?
    } else {
        TraceMeta::default()
    };
    if with_mix {
        trace.mix = wire::get_class_mix(&mut slice).map_err(|e| match e {
            corrupt @ PersistError::Corrupt(_) => corrupt,
            _ => PersistError::Corrupt(format!(
                "trace {index} (pc={:#x}) is missing its class mix",
                trace.start_pc
            )),
        })?;
    }
    if !slice.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "{} stray bytes after trace {index}",
            slice.len()
        )));
    }
    validate_record(index, &trace)?;
    Ok((trace, trace_meta))
}

/// Deserialize a snapshot from any reader (binary format). Rejects
/// delta segments with a named error; see [`load_snapshot_payload`].
pub fn read_snapshot(
    r: &mut impl Read,
    expected_fingerprint: Option<u64>,
) -> Result<(u64, RtmSnapshot)> {
    let header = Header::read_from(r)?;
    header.expect(KIND_RTM_SNAPSHOT, expected_fingerprint)?;
    if header.flags & FLAG_DELTA_SEGMENT != 0 {
        return Err(PersistError::Corrupt(
            "stream holds a delta segment, not a full snapshot; \
             load it with its base via load_merged_snapshots"
                .into(),
        ));
    }
    let snapshot = read_snapshot_body(r, &header)?;
    Ok((header.fingerprint, snapshot))
}

/// Parse a full snapshot's body, the header already consumed.
pub(crate) fn read_snapshot_body(r: &mut impl Read, header: &Header) -> Result<RtmSnapshot> {
    let compressed = header.flags & FLAG_COMPRESSED_FRAMES != 0;
    // v2–v5 preludes are 20 bytes; v6 appends the shape fingerprint.
    let mut prelude = [0u8; 28];
    let prelude = if header.version >= 6 {
        r.read_exact(&mut prelude)?;
        &prelude[..]
    } else {
        r.read_exact(&mut prelude[..20])?;
        &prelude[..20]
    };
    let mut cursor = prelude;
    let geometry = SetAssocGeometry {
        sets: wire::get_u32(&mut cursor)?,
        ways: wire::get_u32(&mut cursor)?,
        per_pc: wire::get_u32(&mut cursor)?,
    };
    validate_geometry(&geometry)?;
    let declared = wire::get_u64(&mut cursor)?;
    // Pre-v6 snapshots load as value-pinned.
    let shape = if header.version >= 6 {
        wire::get_u64(&mut cursor)?
    } else {
        0
    };
    let mut checksum = FxHasher64::new();
    checksum.write(prelude);
    let mut traces = Vec::with_capacity(declared.min(1 << 20) as usize);
    let mut meta = Vec::with_capacity(declared.min(1 << 20) as usize);
    while let Some(frame) = next_frame(r, compressed, &mut checksum)? {
        let (trace, trace_meta) = decode_entry(&frame, header.version, traces.len())?;
        traces.push(trace);
        meta.push(trace_meta);
    }
    let count = wire::get_u64(r)?;
    let stored_checksum = wire::get_u64(r)?;
    if count != traces.len() as u64 || declared != count {
        return Err(PersistError::Corrupt(format!(
            "snapshot declared {declared} traces, trailer says {count}, file held {}",
            traces.len()
        )));
    }
    if stored_checksum != checksum.finish() {
        return Err(PersistError::Corrupt(
            "snapshot checksum mismatch (file is damaged)".into(),
        ));
    }
    Ok(RtmSnapshot {
        config: RtmConfig { geometry },
        traces,
        meta,
        shape,
    })
}

pub(crate) fn validate_geometry(g: &SetAssocGeometry) -> Result<()> {
    if !g.sets.is_power_of_two() || g.ways == 0 || g.per_pc == 0 {
        return Err(PersistError::Corrupt(format!(
            "invalid RTM geometry: {} sets x {} ways x {} per PC",
            g.sets, g.ways, g.per_pc
        )));
    }
    // Bound every dimension: a corrupt or hostile snapshot declaring e.g.
    // sets = 2^30 would otherwise pass the power-of-two check and trigger
    // a multi-GiB allocation in the RTM constructor on import.
    if g.sets > MAX_GEOMETRY_SETS
        || g.ways > MAX_GEOMETRY_WAYS
        || g.per_pc > MAX_GEOMETRY_PER_PC
        || g.capacity() > MAX_GEOMETRY_CAPACITY
    {
        return Err(PersistError::Corrupt(format!(
            "oversized RTM geometry: {} sets x {} ways x {} per PC \
             (limits: {MAX_GEOMETRY_SETS} x {MAX_GEOMETRY_WAYS} x {MAX_GEOMETRY_PER_PC}, \
             {MAX_GEOMETRY_CAPACITY} traces total)",
            g.sets, g.ways, g.per_pc
        )));
    }
    Ok(())
}

/// Re-check the invariants collection guarantees: at least one covered
/// instruction and live-in/live-out sets within [`SNAPSHOT_IO_CAPS`].
/// Without this a `len = 0` or cap-busting record from a damaged file
/// would enter the RTM and corrupt `pct_reused()` /
/// `avg_reused_trace_size()` accounting.
pub(crate) fn validate_record(index: usize, rec: &TraceRecord) -> Result<()> {
    if rec.len == 0 {
        return Err(PersistError::Corrupt(format!(
            "trace {index} (pc={:#x}) covers zero instructions",
            rec.start_pc
        )));
    }
    if !rec.within_caps(&SNAPSHOT_IO_CAPS) {
        return Err(PersistError::Corrupt(format!(
            "trace {index} (pc={:#x}) declares {} reg / {} mem live-ins and \
             {} reg / {} mem live-outs, over the load caps \
             ({} reg / {} mem per side)",
            rec.start_pc,
            rec.reg_ins(),
            rec.mem_ins(),
            rec.reg_outs(),
            rec.mem_outs(),
            SNAPSHOT_IO_CAPS.reg_in,
            SNAPSHOT_IO_CAPS.mem_in,
        )));
    }
    if rec.mix.total() > u64::from(rec.len) {
        return Err(PersistError::Corrupt(format!(
            "trace {index} (pc={:#x}) attributes {} instructions by class \
             but covers only {}",
            rec.start_pc,
            rec.mix.total(),
            rec.len
        )));
    }
    Ok(())
}

pub(crate) fn snapshot_to_json(fingerprint: u64, snapshot: &RtmSnapshot) -> Json {
    let geometry = snapshot.config.geometry;
    let mut geom = BTreeMap::new();
    geom.insert("sets".into(), Json::Num(geometry.sets as u64));
    geom.insert("ways".into(), Json::Num(geometry.ways as u64));
    geom.insert("per_pc".into(), Json::Num(geometry.per_pc as u64));

    let pairs = |items: &[(tlr_isa::Loc, u64)]| {
        Json::Arr(
            items
                .iter()
                .map(|(loc, val)| {
                    let (tag, n) = wire::loc_tag(*loc);
                    Json::Arr(vec![Json::Num(tag), Json::Num(n), Json::Num(*val)])
                })
                .collect(),
        )
    };
    let traces = snapshot
        .entries()
        .map(|(t, m)| {
            let mut obj = BTreeMap::new();
            obj.insert("start_pc".into(), Json::Num(t.start_pc as u64));
            obj.insert("next_pc".into(), Json::Num(t.next_pc as u64));
            obj.insert("len".into(), Json::Num(t.len as u64));
            obj.insert("ins".into(), pairs(&t.ins));
            obj.insert("outs".into(), pairs(&t.outs));
            let mut meta = BTreeMap::new();
            meta.insert("hits".into(), Json::Num(m.hits));
            meta.insert("last_use".into(), Json::Num(m.last_use));
            meta.insert("source_run".into(), Json::Num(m.source_run));
            obj.insert("meta".into(), Json::Obj(meta));
            obj.insert(
                "mix".into(),
                Json::Arr(
                    t.mix
                        .iter()
                        .map(|(_, count)| Json::Num(u64::from(count)))
                        .collect(),
                ),
            );
            Json::Obj(obj)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("format".into(), Json::Str(JSON_SNAPSHOT_FORMAT.into()));
    doc.insert("fingerprint".into(), Json::Num(fingerprint));
    doc.insert("geometry".into(), Json::Obj(geom));
    doc.insert("shape".into(), Json::Num(snapshot.shape));
    doc.insert("traces".into(), Json::Arr(traces));
    Json::Obj(doc)
}

fn snapshot_from_json(doc: &Json, expected_fingerprint: Option<u64>) -> Result<(u64, RtmSnapshot)> {
    if doc.opt_field("delta").is_some() {
        return Err(PersistError::Corrupt(
            "JSON document holds a delta segment, not a full snapshot; \
             load it with its base via load_merged_snapshots"
                .into(),
        ));
    }
    snapshot_from_json_core(doc, expected_fingerprint)
}

/// JSON snapshot parsing shared by full snapshots and delta segments
/// (which reuse the geometry/trace layout and add a `"delta"` object).
pub(crate) fn snapshot_from_json_core(
    doc: &Json,
    expected_fingerprint: Option<u64>,
) -> Result<(u64, RtmSnapshot)> {
    let format = doc.field("format")?.as_str("format")?;
    if format != JSON_SNAPSHOT_FORMAT {
        return Err(PersistError::Corrupt(format!(
            "\"format\" is {format:?}, expected {JSON_SNAPSHOT_FORMAT:?}"
        )));
    }
    let fingerprint = doc.field("fingerprint")?.as_u64("fingerprint")?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                found: fingerprint,
                expected,
            });
        }
    }
    let geom = doc.field("geometry")?;
    let geometry = SetAssocGeometry {
        sets: geom.field("sets")?.as_u32("sets")?,
        ways: geom.field("ways")?.as_u32("ways")?,
        per_pc: geom.field("per_pc")?.as_u32("per_pc")?,
    };
    validate_geometry(&geometry)?;
    // The shape fingerprint arrived with format v6; older JSON dumps
    // lack the field and load as value-pinned.
    let shape = match doc.opt_field("shape") {
        Some(s) => s.as_u64("shape")?,
        None => 0,
    };
    let mut traces = Vec::new();
    let mut meta = Vec::new();
    for (index, t) in doc.field("traces")?.as_arr("traces")?.iter().enumerate() {
        // The class mix arrived with format v4; older JSON dumps lack
        // the field and load as an empty (unattributed) mix.
        let mix = match t.opt_field("mix") {
            Some(m) => {
                let lanes = m.as_arr("mix")?;
                if lanes.len() != tlr_isa::OpClass::COUNT {
                    return Err(PersistError::Corrupt(format!(
                        "trace {index}: \"mix\" holds {} class counts; this ISA has {}",
                        lanes.len(),
                        tlr_isa::OpClass::COUNT
                    )));
                }
                let mut counts = [0u32; tlr_isa::OpClass::COUNT];
                for (lane, value) in counts.iter_mut().zip(lanes) {
                    *lane = value.as_u32("mix")?;
                }
                tlr_isa::ClassMix::from_counts(counts)
            }
            None => tlr_isa::ClassMix::EMPTY,
        };
        let trace = TraceRecord {
            start_pc: t.field("start_pc")?.as_u32("start_pc")?,
            next_pc: t.field("next_pc")?.as_u32("next_pc")?,
            len: t.field("len")?.as_u32("len")?,
            ins: json_pairs(t.field("ins")?, "ins")?.into_boxed_slice(),
            outs: json_pairs(t.field("outs")?, "outs")?.into_boxed_slice(),
            mix,
        };
        validate_record(index, &trace)?;
        // Provenance arrived with format v3; older JSON dumps lack the
        // field and load as zero provenance.
        let trace_meta = match t.opt_field("meta") {
            Some(m) => TraceMeta {
                hits: m.field("hits")?.as_u64("meta.hits")?,
                last_use: m.field("last_use")?.as_u64("meta.last_use")?,
                source_run: m.field("source_run")?.as_u64("meta.source_run")?,
            },
            None => TraceMeta::default(),
        };
        traces.push(trace);
        meta.push(trace_meta);
    }
    Ok((
        fingerprint,
        RtmSnapshot {
            config: RtmConfig { geometry },
            traces,
            meta,
            shape,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::Loc;

    fn sample_snapshot() -> RtmSnapshot {
        let mut snapshot = RtmSnapshot::from_traces(
            RtmConfig::RTM_512,
            (0..20)
                .map(|i| {
                    // Non-trivial, per-trace-distinct mix summing to `len`.
                    let mut counts = [0u32; tlr_isa::OpClass::COUNT];
                    counts[tlr_isa::OpClass::IntAlu.index()] = 3;
                    counts[tlr_isa::OpClass::ALL[(i % 11) as usize].index()] += 1;
                    TraceRecord {
                        start_pc: i,
                        next_pc: i + 4,
                        len: 4,
                        ins: vec![(Loc::IntReg(1), i as u64), (Loc::Mem(64 + i as u64), 7)]
                            .into_boxed_slice(),
                        outs: vec![(Loc::IntReg(2), i as u64 * 2)].into_boxed_slice(),
                        mix: tlr_isa::ClassMix::from_counts(counts),
                    }
                })
                .collect(),
        );
        // Non-trivial provenance, so roundtrips prove it is carried.
        for (i, m) in snapshot.meta.iter_mut().enumerate() {
            m.hits = i as u64 * 3;
            m.last_use = 1000 + i as u64;
            m.source_run = 0xabcd;
        }
        snapshot
    }

    /// `RtmSnapshot` equality ignores class mixes (trace identity
    /// excludes them), so roundtrip tests must compare them explicitly.
    fn assert_mixes_match(again: &RtmSnapshot, snapshot: &RtmSnapshot, tag: &str) {
        for (a, b) in again.traces.iter().zip(&snapshot.traces) {
            assert_eq!(a.mix, b.mix, "{tag}: class mix lost at pc={}", a.start_pc);
        }
        assert!(
            snapshot.traces.iter().any(|t| !t.mix.is_empty()),
            "{tag}: fixture must carry non-empty mixes"
        );
    }

    #[test]
    fn binary_roundtrip() {
        let snapshot = sample_snapshot();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 77, &snapshot).unwrap();
        let (fp, again) = read_snapshot(&mut buf.as_slice(), Some(77)).unwrap();
        assert_eq!(fp, 77);
        assert_eq!(again, snapshot);
        assert_mixes_match(&again, &snapshot, "binary");
    }

    #[test]
    fn json_roundtrip() {
        let snapshot = sample_snapshot();
        let doc = snapshot_to_json(5, &snapshot);
        let text = json::to_string_pretty(&doc);
        let (fp, again) = snapshot_from_json(&json::parse(&text).unwrap(), Some(5)).unwrap();
        assert_eq!(fp, 5);
        assert_eq!(again, snapshot);
        assert_mixes_match(&again, &snapshot, "json");
    }

    #[test]
    fn overclaiming_mix_rejected_both_formats() {
        let mut snapshot = sample_snapshot();
        let mut counts = [0u32; tlr_isa::OpClass::COUNT];
        counts[tlr_isa::OpClass::IntAlu.index()] = snapshot.traces[2].len + 1;
        snapshot.traces[2].mix = tlr_isa::ClassMix::from_counts(counts);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("attributes"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let doc = snapshot_to_json(0, &snapshot);
        match snapshot_from_json(&json::parse(&json::to_string_pretty(&doc)).unwrap(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("attributes"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_arity_json_mix_rejected() {
        let snapshot = sample_snapshot();
        let text = json::to_string_pretty(&snapshot_to_json(0, &snapshot));
        // Drop one lane from the first mix array: 11 counts become 10.
        let start = text.find("\"mix\"").expect("mix field present");
        let open = start + text[start..].find('[').unwrap();
        let close = open + text[open..].find(']').unwrap();
        let mut lanes: Vec<&str> = text[open + 1..close].split(',').collect();
        assert_eq!(lanes.len(), tlr_isa::OpClass::COUNT);
        lanes.pop();
        let bad = format!("{}[{}{}", &text[..open], lanes.join(","), &text[close..]);
        match snapshot_from_json(&json::parse(&bad).unwrap(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("class counts"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &sample_snapshot()).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 1;
        assert!(read_snapshot(&mut buf.as_slice(), None).is_err());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.config.geometry.sets = 33; // not a power of two
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("geometry"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversized_geometry_rejected_both_formats() {
        // 2^30 sets is a power of two, so it passed the old validation
        // and would allocate gigabytes in the RTM constructor on import.
        let mut snapshot = sample_snapshot();
        snapshot.config.geometry.sets = 1 << 30;
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("oversized"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let doc = snapshot_to_json(0, &snapshot);
        match snapshot_from_json(&json::parse(&json::to_string_pretty(&doc)).unwrap(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("oversized"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_trace_rejected_both_formats() {
        let mut snapshot = sample_snapshot();
        snapshot.traces[3].len = 0;
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("zero instructions"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let doc = snapshot_to_json(0, &snapshot);
        match snapshot_from_json(&json::parse(&json::to_string_pretty(&doc)).unwrap(), None) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("zero instructions"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn cap_busting_io_lists_rejected_both_formats() {
        let mut snapshot = sample_snapshot();
        snapshot.traces[0].ins = (0..SNAPSHOT_IO_CAPS.mem_in as u64 + 1)
            .map(|i| (Loc::Mem(i * 8), i))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("load caps"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let doc = snapshot_to_json(0, &snapshot);
        match snapshot_from_json(&json::parse(&json::to_string_pretty(&doc)).unwrap(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("load caps"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn peek_reads_fingerprint_without_loading() {
        let dir = std::env::temp_dir().join("tlr-snapshot-peek-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bin = dir.join("peek.tlrsnap");
        save_snapshot(&bin, 0xfeed, &sample_snapshot()).unwrap();
        assert_eq!(peek_snapshot_fingerprint(&bin).unwrap(), 0xfeed);
        let jsn = dir.join("peek.json");
        save_snapshot(&jsn, 0xbeef, &sample_snapshot()).unwrap();
        assert_eq!(peek_snapshot_fingerprint(&jsn).unwrap(), 0xbeef);
    }

    #[test]
    fn merged_load_pools_files_and_pins_fingerprint() {
        let dir = std::env::temp_dir().join("tlr-snapshot-merge-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.tlrsnap");
        let b = dir.join("b.tlrsnap");
        let mut snap_b = sample_snapshot();
        for t in snap_b.traces.iter_mut() {
            t.start_pc += 1000; // disjoint PCs: clean union
            t.next_pc += 1000;
        }
        save_snapshot(&a, 7, &sample_snapshot()).unwrap();
        save_snapshot(&b, 7, &snap_b).unwrap();

        let (fp, merged) = load_merged_snapshots(&[&a, &b], Some(7)).unwrap();
        assert_eq!(fp, 7);
        assert_eq!(merged.len(), 40);

        // A file from a different program is rejected even when the
        // caller did not pin a fingerprint: the first file pins it.
        save_snapshot(&b, 8, &snap_b).unwrap();
        assert!(matches!(
            load_merged_snapshots(&[&a, &b], None),
            Err(PersistError::FingerprintMismatch {
                found: 8,
                expected: 7
            })
        ));
        let empty: &[&Path] = &[];
        assert!(matches!(
            load_merged_snapshots(empty, None),
            Err(PersistError::Merge(tlr_core::MergeError::Empty))
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        // A trace-stream header is not a snapshot.
        let mut buf = Vec::new();
        let w = crate::stream::TraceWriter::new(&mut buf, 3).unwrap();
        w.close().unwrap();
        assert!(matches!(
            read_snapshot(&mut buf.as_slice(), None),
            Err(PersistError::KindMismatch { .. })
        ));
    }
}
