//! Saving and loading full [`RtmSnapshot`]s.
//!
//! Binary layout after the 16-byte header (see [`crate::format`]):
//!
//! | field | size |
//! |---|---|
//! | geometry: sets, ways, per-PC | 3 × u32 |
//! | trace count | u64 |
//! | traces | count × length-prefixed [`tlr_core::TraceRecord`] frames |
//! | trailer | u32 zero marker, u64 count, u64 checksum |

use crate::error::{PersistError, Result};
use crate::format::{FileFormat, Header, KIND_RTM_SNAPSHOT};
use crate::json::{self, Json};
use crate::stream::json_pairs;
use crate::wire;
use std::collections::BTreeMap;
use std::fs::File;
use std::hash::Hasher;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use tlr_core::{RtmConfig, RtmSnapshot, SetAssocGeometry, TraceRecord};
use tlr_util::fxhash::FxHasher64;

/// JSON format tag for RTM snapshots.
pub const JSON_SNAPSHOT_FORMAT: &str = "tlr-rtm-v1";

/// Save `snapshot` to `path`, choosing binary or JSON by extension.
pub fn save_snapshot(path: &Path, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<()> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut out = BufWriter::new(File::create(path)?);
            write_snapshot(&mut out, fingerprint, snapshot)?;
            out.flush()?;
            Ok(())
        }
        FileFormat::Json => {
            let text = json::to_string_pretty(&snapshot_to_json(fingerprint, snapshot));
            std::fs::write(path, text)?;
            Ok(())
        }
    }
}

/// Load a snapshot from `path` (format by extension), optionally pinning
/// the expected program fingerprint. Returns the file's fingerprint and
/// the snapshot.
pub fn load_snapshot(path: &Path, expected_fingerprint: Option<u64>) -> Result<(u64, RtmSnapshot)> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            read_snapshot(&mut BufReader::new(File::open(path)?), expected_fingerprint)
        }
        FileFormat::Json => {
            let doc = json::parse(&std::fs::read_to_string(path)?)?;
            snapshot_from_json(&doc, expected_fingerprint)
        }
    }
}

/// Serialize a snapshot to any writer (binary format).
pub fn write_snapshot(w: &mut impl Write, fingerprint: u64, snapshot: &RtmSnapshot) -> Result<()> {
    Header::new(KIND_RTM_SNAPSHOT, fingerprint).write_to(w)?;
    let geometry = snapshot.config.geometry;
    let mut prelude = Vec::with_capacity(20);
    wire::put_u32(&mut prelude, geometry.sets);
    wire::put_u32(&mut prelude, geometry.ways);
    wire::put_u32(&mut prelude, geometry.per_pc);
    wire::put_u64(&mut prelude, snapshot.traces.len() as u64);
    w.write_all(&prelude)?;

    let mut checksum = FxHasher64::new();
    let mut scratch = Vec::with_capacity(256);
    for trace in &snapshot.traces {
        scratch.clear();
        wire::put_trace_record(&mut scratch, trace)?;
        wire::write_frame(w, &scratch, &mut checksum)?;
    }
    let mut trailer = Vec::with_capacity(20);
    wire::put_u32(&mut trailer, 0);
    wire::put_u64(&mut trailer, snapshot.traces.len() as u64);
    wire::put_u64(&mut trailer, checksum.finish());
    w.write_all(&trailer)?;
    Ok(())
}

/// Deserialize a snapshot from any reader (binary format).
pub fn read_snapshot(
    r: &mut impl Read,
    expected_fingerprint: Option<u64>,
) -> Result<(u64, RtmSnapshot)> {
    let header = Header::read_from(r)?;
    header.expect(KIND_RTM_SNAPSHOT, expected_fingerprint)?;
    let geometry = SetAssocGeometry {
        sets: wire::get_u32(r)?,
        ways: wire::get_u32(r)?,
        per_pc: wire::get_u32(r)?,
    };
    validate_geometry(&geometry)?;
    let declared = wire::get_u64(r)?;
    let mut checksum = FxHasher64::new();
    let mut traces = Vec::with_capacity(declared.min(1 << 20) as usize);
    while let Some(frame) = wire::read_frame(r, &mut checksum)? {
        let mut slice = frame.as_slice();
        let trace = wire::get_trace_record(&mut slice)?;
        if !slice.is_empty() {
            return Err(PersistError::Corrupt(format!(
                "{} stray bytes after trace {}",
                slice.len(),
                traces.len()
            )));
        }
        traces.push(trace);
    }
    let count = wire::get_u64(r)?;
    let stored_checksum = wire::get_u64(r)?;
    if count != traces.len() as u64 || declared != count {
        return Err(PersistError::Corrupt(format!(
            "snapshot declared {declared} traces, trailer says {count}, file held {}",
            traces.len()
        )));
    }
    if stored_checksum != checksum.finish() {
        return Err(PersistError::Corrupt(
            "snapshot checksum mismatch (file is damaged)".into(),
        ));
    }
    Ok((
        header.fingerprint,
        RtmSnapshot {
            config: RtmConfig { geometry },
            traces,
        },
    ))
}

fn validate_geometry(g: &SetAssocGeometry) -> Result<()> {
    if !g.sets.is_power_of_two() || g.ways == 0 || g.per_pc == 0 {
        return Err(PersistError::Corrupt(format!(
            "invalid RTM geometry: {} sets x {} ways x {} per PC",
            g.sets, g.ways, g.per_pc
        )));
    }
    Ok(())
}

fn snapshot_to_json(fingerprint: u64, snapshot: &RtmSnapshot) -> Json {
    let geometry = snapshot.config.geometry;
    let mut geom = BTreeMap::new();
    geom.insert("sets".into(), Json::Num(geometry.sets as u64));
    geom.insert("ways".into(), Json::Num(geometry.ways as u64));
    geom.insert("per_pc".into(), Json::Num(geometry.per_pc as u64));

    let pairs = |items: &[(tlr_isa::Loc, u64)]| {
        Json::Arr(
            items
                .iter()
                .map(|(loc, val)| {
                    let (tag, n) = wire::loc_tag(*loc);
                    Json::Arr(vec![Json::Num(tag), Json::Num(n), Json::Num(*val)])
                })
                .collect(),
        )
    };
    let traces = snapshot
        .traces
        .iter()
        .map(|t| {
            let mut obj = BTreeMap::new();
            obj.insert("start_pc".into(), Json::Num(t.start_pc as u64));
            obj.insert("next_pc".into(), Json::Num(t.next_pc as u64));
            obj.insert("len".into(), Json::Num(t.len as u64));
            obj.insert("ins".into(), pairs(&t.ins));
            obj.insert("outs".into(), pairs(&t.outs));
            Json::Obj(obj)
        })
        .collect();

    let mut doc = BTreeMap::new();
    doc.insert("format".into(), Json::Str(JSON_SNAPSHOT_FORMAT.into()));
    doc.insert("fingerprint".into(), Json::Num(fingerprint));
    doc.insert("geometry".into(), Json::Obj(geom));
    doc.insert("traces".into(), Json::Arr(traces));
    Json::Obj(doc)
}

fn snapshot_from_json(doc: &Json, expected_fingerprint: Option<u64>) -> Result<(u64, RtmSnapshot)> {
    let format = doc.field("format")?.as_str("format")?;
    if format != JSON_SNAPSHOT_FORMAT {
        return Err(PersistError::Corrupt(format!(
            "\"format\" is {format:?}, expected {JSON_SNAPSHOT_FORMAT:?}"
        )));
    }
    let fingerprint = doc.field("fingerprint")?.as_u64("fingerprint")?;
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(PersistError::FingerprintMismatch {
                found: fingerprint,
                expected,
            });
        }
    }
    let geom = doc.field("geometry")?;
    let geometry = SetAssocGeometry {
        sets: geom.field("sets")?.as_u32("sets")?,
        ways: geom.field("ways")?.as_u32("ways")?,
        per_pc: geom.field("per_pc")?.as_u32("per_pc")?,
    };
    validate_geometry(&geometry)?;
    let traces = doc
        .field("traces")?
        .as_arr("traces")?
        .iter()
        .map(|t| {
            Ok(TraceRecord {
                start_pc: t.field("start_pc")?.as_u32("start_pc")?,
                next_pc: t.field("next_pc")?.as_u32("next_pc")?,
                len: t.field("len")?.as_u32("len")?,
                ins: json_pairs(t.field("ins")?, "ins")?.into_boxed_slice(),
                outs: json_pairs(t.field("outs")?, "outs")?.into_boxed_slice(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((
        fingerprint,
        RtmSnapshot {
            config: RtmConfig { geometry },
            traces,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::Loc;

    fn sample_snapshot() -> RtmSnapshot {
        RtmSnapshot {
            config: RtmConfig::RTM_512,
            traces: (0..20)
                .map(|i| TraceRecord {
                    start_pc: i,
                    next_pc: i + 4,
                    len: 4,
                    ins: vec![(Loc::IntReg(1), i as u64), (Loc::Mem(64 + i as u64), 7)]
                        .into_boxed_slice(),
                    outs: vec![(Loc::IntReg(2), i as u64 * 2)].into_boxed_slice(),
                })
                .collect(),
        }
    }

    #[test]
    fn binary_roundtrip() {
        let snapshot = sample_snapshot();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 77, &snapshot).unwrap();
        let (fp, again) = read_snapshot(&mut buf.as_slice(), Some(77)).unwrap();
        assert_eq!(fp, 77);
        assert_eq!(again, snapshot);
    }

    #[test]
    fn json_roundtrip() {
        let snapshot = sample_snapshot();
        let doc = snapshot_to_json(5, &snapshot);
        let text = json::to_string_pretty(&doc);
        let (fp, again) = snapshot_from_json(&json::parse(&text).unwrap(), Some(5)).unwrap();
        assert_eq!(fp, 5);
        assert_eq!(again, snapshot);
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &sample_snapshot()).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 1;
        assert!(read_snapshot(&mut buf.as_slice(), None).is_err());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut snapshot = sample_snapshot();
        snapshot.config.geometry.sets = 33; // not a power of two
        let mut buf = Vec::new();
        write_snapshot(&mut buf, 0, &snapshot).unwrap();
        match read_snapshot(&mut buf.as_slice(), None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("geometry"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        // A trace-stream header is not a snapshot.
        let mut buf = Vec::new();
        let w = crate::stream::TraceWriter::new(&mut buf, 3).unwrap();
        w.close().unwrap();
        assert!(matches!(
            read_snapshot(&mut buf.as_slice(), None),
            Err(PersistError::KindMismatch { .. })
        ));
    }
}
