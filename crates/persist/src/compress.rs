//! Zero-run frame compression for v5 snapshot files.
//!
//! Snapshot frames are dominated by little-endian integers whose high
//! bytes are zero (PCs, counts, 64-bit values far below 2^64), so a
//! byte-level run-length codec already halves typical frames without
//! pulling in an external compressor. The stream is a sequence of
//! control bytes:
//!
//! | control | meaning |
//! |---|---|
//! | `0x00..=0x7f` | literal run: the next `control + 1` bytes verbatim |
//! | `0x80..=0xff` | zero run: `(control & 0x7f) + 1` zero bytes |
//!
//! Decoding is bounded by the declared raw length, so a hostile stream
//! cannot expand past the frame cap. The codec is self-contained and
//! lossless; [`decompress`] inverts [`compress`] for every input.

use crate::error::{PersistError, Result};

/// Longest run a single control byte can encode.
const MAX_RUN: usize = 0x80;

/// Control-byte tag bit marking a zero run.
const ZERO_TAG: u8 = 0x80;

/// Compress `raw` into the zero-run stream. Never fails; worst case
/// (no zero runs) the output is `raw.len() + ceil(raw.len()/128)`.
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 8);
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == 0 {
            let mut run = 1;
            while i + run < raw.len() && raw[i + run] == 0 && run < MAX_RUN {
                run += 1;
            }
            // Lone zeros sandwiched between literals cost the same
            // either way; emitting them as zero runs keeps the encoder
            // a two-case loop.
            out.push(ZERO_TAG | (run - 1) as u8);
            i += run;
        } else {
            let mut run = 1;
            while i + run < raw.len() && raw[i + run] != 0 && run < MAX_RUN {
                run += 1;
            }
            out.push((run - 1) as u8);
            out.extend_from_slice(&raw[i..i + run]);
            i += run;
        }
    }
    out
}

/// Decompress a zero-run stream that must decode to exactly `raw_len`
/// bytes. Truncated streams, streams that overshoot `raw_len`, and
/// trailing garbage are all rejected as corrupt.
pub fn decompress(stream: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while i < stream.len() {
        let control = stream[i];
        i += 1;
        let run = (control & 0x7f) as usize + 1;
        if out.len() + run > raw_len {
            return Err(PersistError::Corrupt(format!(
                "compressed frame decodes past its declared length ({} > {raw_len})",
                out.len() + run
            )));
        }
        if control & ZERO_TAG != 0 {
            out.resize(out.len() + run, 0);
        } else {
            let end = i + run;
            if end > stream.len() {
                return Err(PersistError::Corrupt(format!(
                    "compressed frame truncated inside a literal run \
                     (need {run} bytes, {} left)",
                    stream.len() - i
                )));
            }
            out.extend_from_slice(&stream[i..end]);
            i = end;
        }
    }
    if out.len() != raw_len {
        return Err(PersistError::Corrupt(format!(
            "compressed frame decodes to {} bytes, declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) {
        let packed = compress(raw);
        assert_eq!(decompress(&packed, raw.len()).unwrap(), raw);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[1]);
        roundtrip(&[0; 1000]);
        roundtrip(&[7; 1000]);
        roundtrip(&[1, 0, 2, 0, 0, 3, 0, 0, 0, 4]);
        let mut mixed = Vec::new();
        for i in 0..4096u32 {
            mixed.extend_from_slice(&i.to_le_bytes()); // zero-heavy LE ints
        }
        roundtrip(&mixed);
    }

    #[test]
    fn zero_heavy_input_shrinks() {
        let mut raw = Vec::new();
        for i in 0..512u64 {
            raw.extend_from_slice(&i.to_le_bytes());
        }
        let packed = compress(&raw);
        assert!(
            packed.len() * 2 < raw.len(),
            "expected >=2x on LE integers: {} vs {}",
            packed.len(),
            raw.len()
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        let packed = compress(&[1, 2, 3, 4, 5, 6, 7, 8]);
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut], 8).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn overshoot_and_undershoot_rejected() {
        let packed = compress(&[0; 64]);
        assert!(decompress(&packed, 63).is_err());
        assert!(decompress(&packed, 65).is_err());
    }

    #[test]
    fn random_bytes_roundtrip() {
        // Deterministic xorshift so the test needs no RNG dependency.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut raw = Vec::with_capacity(4096);
        for _ in 0..4096 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Bias towards zero bytes to exercise both run kinds.
            let b = (x & 0xff) as u8;
            raw.push(if b < 0x60 { 0 } else { b });
        }
        roundtrip(&raw);
    }
}
