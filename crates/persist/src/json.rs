//! A miniature JSON reader/writer for the debug formats.
//!
//! The workspace builds offline (no serde), and the JSON files are
//! written and read only by this crate, so the dialect is deliberately
//! narrow: objects, arrays, strings (no escapes beyond `\"`, `\\`, `\n`,
//! `\t`, `\r`, `\/`, `\b`, `\f`, `\uXXXX` for ASCII), unsigned decimal
//! integers up to `u64::MAX`, `true`/`false`/`null`. Floats and negative
//! numbers are rejected — every numeric field in the debug formats is an
//! unsigned integer, and `u64` values must survive exactly (a detour
//! through `f64` would corrupt values above 2^53).

use crate::error::{PersistError, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the only number form the dialect admits).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys sorted for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, or a corruption error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(type_err(what, "unsigned integer", other)),
        }
    }

    /// The value as `u32`, rejecting out-of-range numbers instead of
    /// truncating them.
    pub fn as_u32(&self, what: &str) -> Result<u32> {
        let n = self.as_u64(what)?;
        u32::try_from(n)
            .map_err(|_| PersistError::Corrupt(format!("\"{what}\": {n} does not fit in u32")))
    }

    /// The value as `u8`, rejecting out-of-range numbers instead of
    /// truncating them.
    pub fn as_u8(&self, what: &str) -> Result<u8> {
        let n = self.as_u64(what)?;
        u8::try_from(n)
            .map_err(|_| PersistError::Corrupt(format!("\"{what}\": {n} does not fit in u8")))
    }

    /// The value as `&str`, or a corruption error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_err(what, "string", other)),
        }
    }

    /// The value as an array slice, or a corruption error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_err(what, "array", other)),
        }
    }

    /// Fetch a required object field.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json> {
        match self {
            Json::Obj(map) => map
                .get(key)
                .ok_or_else(|| PersistError::Corrupt(format!("missing field \"{key}\""))),
            other => Err(type_err(key, "object", other)),
        }
    }

    /// Fetch an optional object field: `None` when the key is absent or
    /// `self` is not an object (format-evolution fields, e.g. per-trace
    /// provenance, which older files legitimately lack).
    pub fn opt_field<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

fn type_err(what: &str, expected: &str, got: &Json) -> PersistError {
    let kind = match got {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    };
    PersistError::Corrupt(format!("\"{what}\": expected {expected}, found {kind}"))
}

// ---- writer ---------------------------------------------------------------

/// Serialize with two-space indentation (stable field order).
pub fn to_string_pretty(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Json, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Arrays of scalars/short arrays stay on one line; this keeps
            // record lists diffable without exploding line counts.
            let flat = items
                .iter()
                .all(|i| matches!(i, Json::Num(_) | Json::Str(_) | Json::Arr(_)));
            if flat {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, item, depth);
                }
                out.push(']');
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    write_value(out, item, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                indent(out, depth + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, depth + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, depth);
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

/// Nesting bound: recursive descent must not let a hand-crafted file of
/// `[[[[…` overflow the stack; past this depth the document is Corrupt.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> PersistError {
        PersistError::Corrupt(format!("json at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Json::Null)
            }
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(self.err("negative numbers are not part of this dialect")),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floating-point numbers are not part of this dialect"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| self.err(&format!("bad integer '{text}': {e}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-ascii \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("bad \\u code point"))?,
                        );
                    }
                    _ => return Err(self.err("unknown escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 starting at b.
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    if start + width > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json> {
        self.enter()?;
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.enter()?;
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_nested() {
        let v = obj(&[
            ("format", Json::Str("tlr-trace-v1".into())),
            ("fingerprint", Json::Num(u64::MAX)),
            (
                "records",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(0), Json::Num(1), Json::Num(5)]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
        ]);
        let text = to_string_pretty(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_max_survives() {
        let text = format!("{{\"n\": {}}}", u64::MAX);
        let v = parse(&text).unwrap();
        assert_eq!(v.field("n").unwrap().as_u64("n").unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}f λ".into());
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn dialect_rejects_floats_and_negatives() {
        assert!(parse("1.5").is_err());
        assert!(parse("-3").is_err());
        assert!(parse("1e9").is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "{} extra",
            "18446744073709551616",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // At the boundary: 128 levels parse, 129 do not.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn narrowing_accessors_reject_out_of_range() {
        let v = parse("{\"a\": 4294967297, \"b\": 256, \"c\": 7}").unwrap();
        assert!(v.field("a").unwrap().as_u32("a").is_err());
        assert!(v.field("b").unwrap().as_u8("b").is_err());
        assert_eq!(v.field("c").unwrap().as_u32("c").unwrap(), 7);
        assert_eq!(v.field("c").unwrap().as_u8("c").unwrap(), 7);
    }

    #[test]
    fn accessors_report_helpful_errors() {
        let v = parse("{\"a\": [1]}").unwrap();
        assert!(v.field("missing").is_err());
        assert!(v.field("a").unwrap().as_u64("a").is_err());
        assert_eq!(v.field("a").unwrap().as_arr("a").unwrap().len(), 1);
    }
}
