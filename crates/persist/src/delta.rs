//! Incremental **delta segments**: publish-back without full rewrites.
//!
//! A delta segment is a v5 snapshot file with
//! [`FLAG_DELTA_SEGMENT`] set. It
//! carries the complete current contents of every *PC group* (records
//! sharing `start_pc`) that changed since the previous spill, plus a
//! tombstone list of PCs whose groups emptied. Applying a delta to a
//! base snapshot replaces those groups wholesale — replacement, not
//! record-level patching, is what makes reconstruction exact under
//! capacity eviction and independent of replacement policy.
//!
//! Binary layout after the 16-byte header:
//!
//! | field | size |
//! |---|---|
//! | geometry: sets, ways, per-PC | 3 × u32 |
//! | trace count | u64 |
//! | sequence number | u64 |
//! | tombstone count | u64 |
//! | tombstones | count × u32 start PCs |
//! | traces | count × v5 entry frames (record + meta + mix) |
//! | trailer | u32 zero marker, u64 count, u64 checksum |
//!
//! The checksum covers the prelude, the tombstones, and every frame.
//! Frames compress under [`FLAG_COMPRESSED_FRAMES`] exactly like
//! full-snapshot frames.
//!
//! The compaction invariant: for any base `B` and deltas `D1..Dn` in
//! sequence order, loading `B, D1..Dn` yields the same trace/provenance
//! *set* as the full snapshot the last spill saw — so folding them into
//! a fresh base (`tlrsim compact`, or the registry once
//! `compact_threshold` deltas accumulate) never changes served state.

use crate::error::{PersistError, Result};
use crate::format::{
    FileFormat, Header, FLAG_COMPRESSED_FRAMES, FLAG_DELTA_SEGMENT, KIND_RTM_SNAPSHOT,
};
use crate::json::{self, Json};
use crate::snapshot::{
    decode_entry, emit_frame, next_frame, snapshot_from_json_core, snapshot_to_json,
    validate_geometry, MAX_GEOMETRY_CAPACITY,
};
use crate::wire;
use std::collections::BTreeMap;
use std::fs::File;
use std::hash::Hasher;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use tlr_core::{RtmConfig, RtmSnapshot, SetAssocGeometry, TraceMeta, TraceRecord};
use tlr_util::fxhash::FxHasher64;

/// One incremental spill: full replacement contents for the PC groups
/// that changed, and tombstones for the groups that emptied.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaSegment {
    /// Replay position among this base's deltas (strictly increasing
    /// per spill; ties broken by file order on load).
    pub seq: u64,
    /// Geometry, which must match the base being overlaid.
    pub config: RtmConfig,
    /// Start PCs whose groups are now empty and must be dropped.
    pub tombstones: Vec<u32>,
    /// Records of every changed group (grouped, base-export order).
    pub traces: Vec<TraceRecord>,
    /// Provenance parallel to `traces`.
    pub meta: Vec<TraceMeta>,
}

impl DeltaSegment {
    /// `true` when applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty() && self.tombstones.is_empty()
    }
}

/// Order-insensitive digest of each PC group's records + provenance.
/// Two snapshots whose digests agree for a PC hold the same group
/// contents; [`diff_snapshots`] spills exactly the PCs that disagree.
pub fn group_digests(snapshot: &RtmSnapshot) -> Result<BTreeMap<u32, u64>> {
    let mut digests: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    let mut scratch = Vec::with_capacity(256);
    for (trace, meta) in snapshot.entries() {
        scratch.clear();
        wire::put_trace_record(&mut scratch, trace)?;
        wire::put_trace_meta(&mut scratch, &meta);
        wire::put_class_mix(&mut scratch, trace.mix);
        let mut h = FxHasher64::new();
        h.write(&scratch);
        let entry = digests.entry(trace.start_pc).or_insert((0, 0));
        // Commutative fold: group membership is a set, and the spiller
        // and loader may see the same group in different orders.
        entry.0 = entry.0.wrapping_add(h.finish());
        entry.1 += 1;
    }
    Ok(digests
        .into_iter()
        .map(|(pc, (sum, count))| (pc, sum ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect())
}

/// Compute the delta that takes the state summarized by `old` (a prior
/// [`group_digests`]) to `new`. Changed or new groups are carried in
/// full; groups present in `old` but gone from `new` become tombstones.
pub fn diff_snapshots(
    old: &BTreeMap<u32, u64>,
    new: &RtmSnapshot,
    seq: u64,
) -> Result<DeltaSegment> {
    let fresh = group_digests(new)?;
    let changed: std::collections::BTreeSet<u32> = fresh
        .iter()
        .filter(|(pc, digest)| old.get(pc) != Some(digest))
        .map(|(pc, _)| *pc)
        .collect();
    let tombstones: Vec<u32> = old
        .keys()
        .filter(|pc| !fresh.contains_key(pc))
        .copied()
        .collect();
    let mut traces = Vec::new();
    let mut meta = Vec::new();
    for (trace, m) in new.entries() {
        if changed.contains(&trace.start_pc) {
            traces.push(trace.clone());
            meta.push(m);
        }
    }
    Ok(DeltaSegment {
        seq,
        config: new.config,
        tombstones,
        traces,
        meta,
    })
}

/// Overlay `delta` onto `base`: drop every base record whose PC the
/// delta replaces or tombstones, then append the delta's records.
pub fn apply_delta(base: &mut RtmSnapshot, delta: &DeltaSegment) -> Result<()> {
    if base.config.geometry != delta.config.geometry {
        return Err(PersistError::Merge(
            tlr_core::MergeError::GeometryMismatch {
                first: base.config,
                other: delta.config,
            },
        ));
    }
    let mut replaced: std::collections::BTreeSet<u32> = delta.tombstones.iter().copied().collect();
    replaced.extend(delta.traces.iter().map(|t| t.start_pc));
    let mut traces = Vec::with_capacity(base.traces.len() + delta.traces.len());
    let mut meta = Vec::with_capacity(traces.capacity());
    for (i, trace) in base.traces.iter().enumerate() {
        if !replaced.contains(&trace.start_pc) {
            traces.push(trace.clone());
            meta.push(base.meta.get(i).copied().unwrap_or_default());
        }
    }
    traces.extend(delta.traces.iter().cloned());
    meta.extend(delta.meta.iter().copied());
    base.traces = traces;
    base.meta = meta;
    Ok(())
}

/// Reorder an overlaid snapshot into canonical replay order: ascending
/// last-use tick (global LRU→MRU, matching a live RTM's export), PC and
/// shape breaking ties deterministically. Overlay application loses the
/// base's interleaving; re-sorting keeps delta loads reproducible.
pub fn canonicalize(snapshot: &mut RtmSnapshot) {
    let mut entries: Vec<(TraceRecord, TraceMeta)> = snapshot
        .traces
        .drain(..)
        .zip(snapshot.meta.drain(..))
        .collect();
    entries.sort_by_key(|(t, m)| (m.last_use, t.start_pc, t.next_pc, t.len));
    for (trace, meta) in entries {
        snapshot.traces.push(trace);
        snapshot.meta.push(meta);
    }
}

/// Canonical base-file name for a fingerprint's compacted snapshot.
pub fn base_file_name(fingerprint: u64) -> String {
    format!("{fingerprint:016x}-base.{}", crate::format::SNAPSHOT_EXT)
}

/// Canonical delta-segment file name for a fingerprint at `seq`.
pub fn delta_file_name(fingerprint: u64, seq: u64) -> String {
    format!(
        "{fingerprint:016x}-delta-{seq:06}.{}",
        crate::format::SNAPSHOT_EXT
    )
}

/// Parse the sequence number out of a [`delta_file_name`]-shaped path.
/// Foreign file names return `None`; loaders fall back to the sequence
/// number carried in the payload, which is authoritative.
pub fn delta_seq_from_path(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    let (_, seq) = stem.rsplit_once("-delta-")?;
    seq.parse().ok()
}

/// Save a delta segment to `path` (binary or JSON by extension).
pub fn save_delta_segment(
    path: &Path,
    fingerprint: u64,
    delta: &DeltaSegment,
    compress: bool,
) -> Result<()> {
    match FileFormat::detect(path) {
        FileFormat::Binary => {
            let mut out = BufWriter::new(File::create(path)?);
            write_delta_segment(&mut out, fingerprint, delta, compress)?;
            out.flush()?;
            Ok(())
        }
        FileFormat::Json => {
            let text = json::to_string_pretty(&delta_to_json(fingerprint, delta));
            std::fs::write(path, text)?;
            Ok(())
        }
    }
}

/// Serialize a delta segment to any writer (binary format).
pub fn write_delta_segment(
    w: &mut impl Write,
    fingerprint: u64,
    delta: &DeltaSegment,
    compress: bool,
) -> Result<()> {
    let mut flags = FLAG_DELTA_SEGMENT;
    if compress {
        flags |= FLAG_COMPRESSED_FRAMES;
    }
    Header::with_flags(KIND_RTM_SNAPSHOT, fingerprint, flags).write_to(w)?;
    let geometry = delta.config.geometry;
    // The fixed prelude and the tombstone list are hashed as separate
    // chunks — the reader consumes them in two reads, and the hasher is
    // chunk-boundary sensitive.
    let mut fixed = Vec::with_capacity(36);
    wire::put_u32(&mut fixed, geometry.sets);
    wire::put_u32(&mut fixed, geometry.ways);
    wire::put_u32(&mut fixed, geometry.per_pc);
    wire::put_u64(&mut fixed, delta.traces.len() as u64);
    wire::put_u64(&mut fixed, delta.seq);
    wire::put_u64(&mut fixed, delta.tombstones.len() as u64);
    let mut tombstone_bytes = Vec::with_capacity(delta.tombstones.len() * 4);
    for pc in &delta.tombstones {
        wire::put_u32(&mut tombstone_bytes, *pc);
    }
    w.write_all(&fixed)?;
    w.write_all(&tombstone_bytes)?;
    let mut checksum = FxHasher64::new();
    checksum.write(&fixed);
    checksum.write(&tombstone_bytes);
    let mut scratch = Vec::with_capacity(256);
    for (i, trace) in delta.traces.iter().enumerate() {
        scratch.clear();
        wire::put_trace_record(&mut scratch, trace)?;
        wire::put_trace_meta(
            &mut scratch,
            &delta.meta.get(i).copied().unwrap_or_default(),
        );
        wire::put_class_mix(&mut scratch, trace.mix);
        emit_frame(w, &scratch, compress, &mut checksum)?;
    }
    let mut trailer = Vec::with_capacity(20);
    wire::put_u32(&mut trailer, 0);
    wire::put_u64(&mut trailer, delta.traces.len() as u64);
    wire::put_u64(&mut trailer, checksum.finish());
    w.write_all(&trailer)?;
    Ok(())
}

/// Parse a delta segment's body, the header already consumed.
pub(crate) fn read_delta_body(r: &mut impl Read, header: &Header) -> Result<DeltaSegment> {
    let compressed = header.flags & FLAG_COMPRESSED_FRAMES != 0;
    let fixed: [u8; 36] = wire::read_exact(r)?;
    let mut cursor = fixed.as_slice();
    let geometry = SetAssocGeometry {
        sets: wire::get_u32(&mut cursor)?,
        ways: wire::get_u32(&mut cursor)?,
        per_pc: wire::get_u32(&mut cursor)?,
    };
    validate_geometry(&geometry)?;
    let declared = wire::get_u64(&mut cursor)?;
    let seq = wire::get_u64(&mut cursor)?;
    let tombstone_count = wire::get_u64(&mut cursor)?;
    if tombstone_count > MAX_GEOMETRY_CAPACITY {
        return Err(PersistError::Corrupt(format!(
            "delta segment declares {tombstone_count} tombstones, \
             over the {MAX_GEOMETRY_CAPACITY} cap"
        )));
    }
    let mut tombstone_bytes = vec![0u8; tombstone_count as usize * 4];
    r.read_exact(&mut tombstone_bytes)?;
    let mut tcursor = tombstone_bytes.as_slice();
    let mut tombstones = Vec::with_capacity(tombstone_count as usize);
    for _ in 0..tombstone_count {
        tombstones.push(wire::get_u32(&mut tcursor)?);
    }
    let mut checksum = FxHasher64::new();
    checksum.write(&fixed);
    checksum.write(&tombstone_bytes);
    let mut traces = Vec::with_capacity(declared.min(1 << 20) as usize);
    let mut meta = Vec::with_capacity(declared.min(1 << 20) as usize);
    while let Some(frame) = next_frame(r, compressed, &mut checksum)? {
        let (trace, trace_meta) = decode_entry(&frame, header.version, traces.len())?;
        traces.push(trace);
        meta.push(trace_meta);
    }
    let count = wire::get_u64(r)?;
    let stored_checksum = wire::get_u64(r)?;
    if count != traces.len() as u64 || declared != count {
        return Err(PersistError::Corrupt(format!(
            "delta segment declared {declared} traces, trailer says {count}, file held {}",
            traces.len()
        )));
    }
    if stored_checksum != checksum.finish() {
        return Err(PersistError::Corrupt(
            "delta segment checksum mismatch (file is damaged)".into(),
        ));
    }
    Ok(DeltaSegment {
        seq,
        config: RtmConfig { geometry },
        tombstones,
        traces,
        meta,
    })
}

/// JSON debug encoding: the full-snapshot document plus a `"delta"`
/// object carrying the sequence number and tombstones.
pub fn delta_to_json(fingerprint: u64, delta: &DeltaSegment) -> Json {
    let as_snapshot = RtmSnapshot {
        config: delta.config,
        traces: delta.traces.clone(),
        meta: delta.meta.clone(),
        shape: 0,
    };
    let Json::Obj(mut doc) = snapshot_to_json(fingerprint, &as_snapshot) else {
        unreachable!("snapshot_to_json returns an object");
    };
    let mut meta = BTreeMap::new();
    meta.insert("seq".into(), Json::Num(delta.seq));
    meta.insert(
        "tombstones".into(),
        Json::Arr(
            delta
                .tombstones
                .iter()
                .map(|pc| Json::Num(u64::from(*pc)))
                .collect(),
        ),
    );
    doc.insert("delta".into(), Json::Obj(meta));
    Json::Obj(doc)
}

/// Parse the JSON debug encoding produced by [`delta_to_json`].
pub fn delta_from_json(
    doc: &Json,
    expected_fingerprint: Option<u64>,
) -> Result<(u64, DeltaSegment)> {
    let (fingerprint, snapshot) = snapshot_from_json_core(doc, expected_fingerprint)?;
    let d = doc.field("delta")?;
    let seq = d.field("seq")?.as_u64("delta.seq")?;
    let lanes = d.field("tombstones")?.as_arr("delta.tombstones")?;
    if lanes.len() as u64 > MAX_GEOMETRY_CAPACITY {
        return Err(PersistError::Corrupt(format!(
            "delta segment declares {} tombstones, over the {MAX_GEOMETRY_CAPACITY} cap",
            lanes.len()
        )));
    }
    let mut tombstones = Vec::with_capacity(lanes.len());
    for pc in lanes {
        tombstones.push(pc.as_u32("delta.tombstones")?);
    }
    Ok((
        fingerprint,
        DeltaSegment {
            seq,
            config: snapshot.config,
            tombstones,
            traces: snapshot.traces,
            meta: snapshot.meta,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{load_merged_snapshots_with, load_snapshot, save_snapshot};
    use tlr_core::ReplacementPolicy;
    use tlr_isa::Loc;

    fn record(pc: u32, val: u64) -> TraceRecord {
        TraceRecord {
            start_pc: pc,
            next_pc: pc + 4,
            len: 2,
            ins: vec![(Loc::IntReg(1), val)].into_boxed_slice(),
            outs: vec![(Loc::IntReg(2), val * 2)].into_boxed_slice(),
            mix: tlr_isa::ClassMix::EMPTY,
        }
    }

    fn snapshot(pcs: &[(u32, u64)]) -> RtmSnapshot {
        let mut s = RtmSnapshot::from_traces(
            RtmConfig::RTM_512,
            pcs.iter().map(|(pc, v)| record(*pc, *v)).collect(),
        );
        for (i, m) in s.meta.iter_mut().enumerate() {
            m.hits = i as u64;
            m.last_use = 100 + i as u64;
            m.source_run = 1;
        }
        s
    }

    /// Order-insensitive equality: delta loads canonicalize by
    /// last-use, so compare the (record, meta) multiset.
    fn canonical(s: &RtmSnapshot) -> Vec<(TraceRecord, TraceMeta)> {
        let mut v: Vec<_> = s.entries().map(|(t, m)| (t.clone(), m)).collect();
        v.sort_by_key(|(t, m)| (t.start_pc, t.next_pc, t.len, m.last_use, m.hits));
        v
    }

    #[test]
    fn diff_then_apply_reconstructs_exactly() {
        let old = snapshot(&[(0, 1), (4, 2), (8, 3)]);
        // pc 0 keeps its group, pc 4 changes a value, pc 8 disappears,
        // pc 12 is new.
        let new = snapshot(&[(0, 1), (4, 99), (12, 5)]);
        let delta = diff_snapshots(&group_digests(&old).unwrap(), &new, 1).unwrap();
        assert_eq!(delta.tombstones, vec![8]);
        assert_eq!(delta.traces.len(), 2, "only pc 4 and pc 12 spill");
        let mut rebuilt = old.clone();
        apply_delta(&mut rebuilt, &delta).unwrap();
        canonicalize(&mut rebuilt);
        assert_eq!(canonical(&rebuilt), canonical(&new));
    }

    #[test]
    fn meta_only_changes_spill_their_group() {
        let old = snapshot(&[(0, 1), (4, 2)]);
        let mut new = old.clone();
        new.meta[1].hits += 7; // same records, hotter provenance
        let delta = diff_snapshots(&group_digests(&old).unwrap(), &new, 1).unwrap();
        assert_eq!(delta.traces.len(), 1);
        assert_eq!(delta.traces[0].start_pc, 4);
        assert!(delta.tombstones.is_empty());
    }

    #[test]
    fn unchanged_snapshot_diffs_empty() {
        let s = snapshot(&[(0, 1), (4, 2)]);
        let delta = diff_snapshots(&group_digests(&s).unwrap(), &s, 3).unwrap();
        assert!(delta.is_empty());
    }

    #[test]
    fn binary_roundtrip_compressed_and_plain() {
        let old = snapshot(&[(0, 1), (4, 2), (8, 3)]);
        let new = snapshot(&[(0, 1), (4, 99), (12, 5)]);
        let delta = diff_snapshots(&group_digests(&old).unwrap(), &new, 42).unwrap();
        for compress in [false, true] {
            let mut buf = Vec::new();
            write_delta_segment(&mut buf, 7, &delta, compress).unwrap();
            let mut r = buf.as_slice();
            let header = Header::read_from(&mut r).unwrap();
            assert_eq!(header.flags & FLAG_DELTA_SEGMENT, FLAG_DELTA_SEGMENT);
            let again = read_delta_body(&mut r, &header).unwrap();
            assert_eq!(again, delta, "compress={compress}");
        }
    }

    #[test]
    fn json_roundtrip_with_tombstones() {
        let delta = DeltaSegment {
            seq: 9,
            config: RtmConfig::RTM_512,
            tombstones: vec![16, 32],
            traces: vec![record(4, 7)],
            meta: vec![TraceMeta {
                hits: 3,
                last_use: 11,
                source_run: 2,
            }],
        };
        let doc = delta_to_json(5, &delta);
        let text = json::to_string_pretty(&doc);
        let (fp, again) = delta_from_json(&json::parse(&text).unwrap(), Some(5)).unwrap();
        assert_eq!(fp, 5);
        assert_eq!(again, delta);
    }

    #[test]
    fn merged_load_replays_base_plus_deltas() {
        let dir = std::env::temp_dir().join(format!("tlr-delta-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s0 = snapshot(&[(0, 1), (4, 2), (8, 3)]);
        let s1 = snapshot(&[(0, 1), (4, 99), (12, 5)]);
        let s2 = snapshot(&[(0, 1), (4, 99), (12, 6), (16, 7)]);
        let base = dir.join(base_file_name(7));
        save_snapshot(&base, 7, &s0).unwrap();
        let d1 = diff_snapshots(&group_digests(&s0).unwrap(), &s1, 1).unwrap();
        let d2 = diff_snapshots(&group_digests(&s1).unwrap(), &s2, 2).unwrap();
        let p1 = dir.join(delta_file_name(7, 1));
        let p2 = dir.join(delta_file_name(7, 2));
        save_delta_segment(&p1, 7, &d1, true).unwrap();
        save_delta_segment(&p2, 7, &d2, true).unwrap();

        for policy in ReplacementPolicy::ALL {
            // Deltas listed out of order: the payload seq sorts them.
            let (fp, merged) =
                load_merged_snapshots_with(&[&base, &p2, &p1], Some(7), policy).unwrap();
            assert_eq!(fp, 7);
            assert_eq!(canonical(&merged), canonical(&s2), "policy {policy:?}");
        }

        // A delta alone is rejected by the single-file loader by name.
        match load_snapshot(&p1, None) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("delta segment"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_helpers_roundtrip() {
        let name = delta_file_name(0xabcd, 17);
        assert_eq!(delta_seq_from_path(Path::new(&name)), Some(17));
        assert_eq!(delta_seq_from_path(Path::new("foo.tlrsnap")), None);
        assert_eq!(
            delta_seq_from_path(Path::new(&base_file_name(0xabcd))),
            None
        );
    }

    #[test]
    fn geometry_mismatch_rejected_on_apply() {
        let mut base = snapshot(&[(0, 1)]);
        let mut delta = DeltaSegment {
            seq: 1,
            config: RtmConfig::RTM_512,
            tombstones: Vec::new(),
            traces: Vec::new(),
            meta: Vec::new(),
        };
        delta.config.geometry.sets *= 2;
        assert!(matches!(
            apply_delta(&mut base, &delta),
            Err(PersistError::Merge(
                tlr_core::MergeError::GeometryMismatch { .. }
            ))
        ));
    }
}
