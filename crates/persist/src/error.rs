//! Error type for persistence and replay.

use std::fmt;
use std::io;

/// Everything that can go wrong while persisting, loading, or replaying
/// trace state.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `TLRP` magic (or, for JSON, a
    /// recognized `"format"` tag).
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version stamped in the file header.
        found: u16,
        /// Newest version this build writes and reads (it also reads
        /// back to [`crate::format::MIN_SUPPORTED_VERSION`]).
        supported: u16,
    },
    /// The file holds a different payload kind than the caller asked for
    /// (e.g. opening an RTM snapshot as a trace stream).
    KindMismatch {
        /// Kind tag found in the header.
        found: u8,
        /// Kind tag the caller expected.
        expected: u8,
    },
    /// The file was produced from a different program / ISA / build
    /// configuration than the one it is being applied to.
    FingerprintMismatch {
        /// Fingerprint stamped in the file header.
        found: u64,
        /// Fingerprint of the present configuration.
        expected: u64,
    },
    /// Structurally invalid or truncated content.
    Corrupt(String),
    /// Several snapshots could not be merged (empty input set or
    /// disagreeing RTM geometries).
    Merge(tlr_core::MergeError),
    /// Replay diverged from the recorded execution.
    Divergence {
        /// Zero-based index of the diverging record.
        index: u64,
        /// What the recording says should have happened.
        expected: String,
        /// What the replayed execution actually did.
        actual: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a tlr-persist file: expected magic {:?}, found {:?}",
                super::format::MAGIC,
                found
            ),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads versions {}..={supported}); \
                 re-record with a matching build",
                super::format::MIN_SUPPORTED_VERSION
            ),
            PersistError::KindMismatch { found, expected } => write!(
                f,
                "wrong payload kind: found {} but expected {}",
                super::format::kind_name(*found),
                super::format::kind_name(*expected)
            ),
            PersistError::FingerprintMismatch { found, expected } => write!(
                f,
                "configuration fingerprint mismatch: file was produced under {found:#018x} \
                 but the current program/ISA fingerprints as {expected:#018x}; the recorded \
                 state is not valid for this program"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt file: {what}"),
            PersistError::Merge(e) => write!(f, "cannot merge snapshots: {e}"),
            PersistError::Divergence {
                index,
                expected,
                actual,
            } => write!(
                f,
                "replay diverged at record {index}: recorded {expected}, executed {actual}"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<tlr_core::MergeError> for PersistError {
    fn from(e: tlr_core::MergeError) -> Self {
        PersistError::Merge(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, PersistError>;
