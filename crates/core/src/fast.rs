//! The throughput engine: the reference reuse engine's semantics on the
//! fast execution substrate.
//!
//! [`crate::engine::TraceReuseEngine`] is written for fidelity: a
//! `dyn`-dispatched backend, a closure-based reuse test, and a fully
//! materialized [`tlr_isa::DynInstr`] per executed instruction. That is
//! the model the paper's figures are measured on, and it stays intact.
//! [`ThroughputEngine`] is the same machine built for speed: a concrete
//! monomorphized [`ReuseTraceMemory`], reuse hits served through cached
//! straight-line [`crate::block::TraceBlock`]s
//! ([`ReuseTraceMemory::lookup_fast`]), and — in [`ExecMode::Fast`] with
//! no collector attached — an allocation-free interpreter loop
//! ([`tlr_vm::Vm::step_fast`]) that materializes no records at all.
//!
//! The two engines (and the two modes of this one) must agree exactly:
//! same final `state_digest`, same executed/skipped/hit counters, same
//! decision stream. `tests/fast_engine.rs` cross-checks them on every
//! workload, simple_tta-style; the per-mode equality is asserted down to
//! full [`EngineStats`] equality including the reused-size histogram.

use tlr_asm::Program;
use tlr_stats::Histogram;
use tlr_vm::{ExecMode, FastStep, StepResult, Vm, VmError};

use crate::collect::Collector;
use crate::engine::{DecisionLog, EngineConfig, EngineStats, ReuseEvent, ReuseTest};
use crate::ilr::FiniteIlrBuffer;
use crate::rtm::{ReuseTraceMemory, RtmSnapshot};

/// The high-throughput trace-reuse engine.
///
/// Construction mirrors [`crate::engine::TraceReuseEngine`]; behaviour is
/// bit-identical in both [`ExecMode`]s. The collector is optional: detach
/// it with [`ThroughputEngine::without_collection`] for a serving-only
/// engine whose fast mode touches no heap on the hot path (the RTM still
/// answers lookups and counts hits, it just never learns new traces).
pub struct ThroughputEngine {
    vm: Vm,
    rtm: ReuseTraceMemory,
    collector: Option<Collector>,
    mode: ExecMode,
    executed: u64,
    skipped: u64,
    reuse_ops: u64,
    halted: bool,
    reused_sizes: Histogram,
    tap: Option<DecisionLog>,
}

impl ThroughputEngine {
    /// Load `program` under `config`, defaulting to [`ExecMode::Fast`].
    ///
    /// # Panics
    ///
    /// If `config.reuse_test` is not [`ReuseTest::ValueCompare`]: the
    /// valid-bit backend needs per-write invalidation hooks that the
    /// fast path removes. Use the reference engine for valid-bit runs.
    pub fn new(program: &Program, config: EngineConfig) -> Self {
        assert!(
            config.reuse_test == ReuseTest::ValueCompare,
            "ThroughputEngine supports only the value-comparison reuse test"
        );
        let ilr = match config.heuristic {
            crate::Heuristic::IlrNe | crate::Heuristic::IlrExp => {
                Some(FiniteIlrBuffer::new(config.rtm.geometry))
            }
            crate::Heuristic::FixedExp(_) | crate::Heuristic::BasicBlock => None,
        };
        Self {
            vm: Vm::new(program),
            rtm: ReuseTraceMemory::new_with(config.rtm, config.policy)
                .with_lfu_half_life(config.lfu_half_life),
            collector: Some(Collector::new(config.heuristic, config.caps, ilr)),
            mode: ExecMode::Fast,
            executed: 0,
            skipped: 0,
            reuse_ops: 0,
            halted: false,
            reused_sizes: Histogram::new(),
            tap: None,
        }
    }

    /// Like [`ThroughputEngine::new`], but seed the RTM from a prior
    /// run's [`RtmSnapshot`]. The snapshot's geometry overrides
    /// `config.rtm`, as in [`crate::engine::TraceReuseEngine::new_warm`].
    pub fn new_warm(program: &Program, config: EngineConfig, snapshot: &RtmSnapshot) -> Self {
        let mut engine = Self::new(
            program,
            EngineConfig {
                rtm: snapshot.config,
                reuse_test: ReuseTest::ValueCompare,
                ..config
            },
        );
        engine.rtm = ReuseTraceMemory::import_with(snapshot, config.policy)
            .with_lfu_half_life(config.lfu_half_life);
        engine
    }

    /// Detach the collector: the engine only *serves* resident traces
    /// (warm-start / registry scenarios) and never inserts new ones. In
    /// fast mode this makes the whole miss path allocation-free.
    pub fn without_collection(mut self) -> Self {
        self.collector = None;
        self
    }

    /// Same engine in the given mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Switch execution mode (takes effect at the next step).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The current execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Access the VM (state inspection, digests).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Access the RTM.
    pub fn rtm(&self) -> &ReuseTraceMemory {
        &self.rtm
    }

    /// Start recording every reuse decision (replaces any previous log).
    pub fn enable_tap(&mut self) {
        self.tap = Some(DecisionLog::new());
    }

    /// Tap with a bounded log, as
    /// [`crate::engine::TraceReuseEngine::enable_tap_with_cap`].
    pub fn enable_tap_with_cap(&mut self, cap: usize) {
        self.tap = Some(DecisionLog::with_cap(cap));
    }

    /// The decision log so far, if the tap is enabled.
    pub fn tap(&self) -> Option<&DecisionLog> {
        self.tap.as_ref()
    }

    /// Detach and return the decision log, disabling the tap.
    pub fn take_tap(&mut self) -> Option<DecisionLog> {
        self.tap.take()
    }

    /// Stamp `run` into the provenance of subsequently collected traces.
    pub fn set_source_run(&mut self, run: u64) {
        self.rtm.set_source_run(run);
    }

    /// Export the RTM's resident traces for persistence.
    pub fn export_rtm(&self) -> RtmSnapshot {
        self.rtm.export()
    }

    /// Run until `halt` or until `budget` total dynamic instructions
    /// (executed + skipped) have been accounted. Incremental calls
    /// continue where the previous one stopped — the batch scheduler
    /// round-robins engines by calling this with growing budgets.
    pub fn run(&mut self, budget: u64) -> Result<EngineStats, VmError> {
        while self.executed + self.skipped < budget && !self.halted {
            self.step()?;
        }
        Ok(self.stats())
    }

    /// One engine step: a reuse hit (skipping a whole trace) or one
    /// executed instruction, on the path selected by the current mode.
    pub fn step(&mut self) -> Result<(), VmError> {
        match self.mode {
            ExecMode::Fast => self.step_fast(),
            ExecMode::Observed => self.step_observed(),
        }
    }

    /// The fast path: block-served reuse test, record-free misses when
    /// no collector is attached.
    fn step_fast(&mut self) -> Result<(), VmError> {
        let pc = self.vm.pc();
        let want_record = self.collector.is_some();
        if let Some(hit) = self.rtm.lookup_fast(pc, &mut self.vm, want_record)? {
            self.skipped += hit.len as u64;
            self.reuse_ops += 1;
            self.reused_sizes.record(hit.len as u64);
            if let Some(tap) = self.tap.as_mut() {
                tap.push(ReuseEvent::Hit {
                    pc,
                    len: hit.len,
                    next_pc: hit.next_pc,
                    mix: hit.mix,
                });
            }
            if let Some(collector) = self.collector.as_mut() {
                let rec = hit.rec.expect("record requested when collector attached");
                for rec in collector.on_reuse_hit(&rec) {
                    self.rtm.insert(rec);
                }
            }
            return Ok(());
        }
        if let Some(collector) = self.collector.as_mut() {
            // A collector consumes the full dynamic record, so the miss
            // path materializes one — this is exactly the "lazy
            // DynInstr" contract: records exist because something reads
            // them.
            match self.vm.step()? {
                StepResult::Executed(d) => {
                    self.executed += 1;
                    if let Some(tap) = self.tap.as_mut() {
                        tap.push(ReuseEvent::Exec { pc, class: d.class });
                    }
                    for rec in collector.on_executed(&d) {
                        self.rtm.insert(rec);
                    }
                }
                StepResult::Halted => self.halted = true,
            }
        } else {
            match self.vm.step_fast()? {
                FastStep::Executed(class) => {
                    self.executed += 1;
                    if let Some(tap) = self.tap.as_mut() {
                        tap.push(ReuseEvent::Exec { pc, class });
                    }
                }
                FastStep::Halted => self.halted = true,
            }
        }
        Ok(())
    }

    /// The observed path: the reference engine's exact data flow
    /// (closure-probed lookup, record clone, `apply_trace`, a full
    /// `DynInstr` per executed instruction) on the concrete RTM.
    fn step_observed(&mut self) -> Result<(), VmError> {
        let pc = self.vm.pc();
        let vm = &self.vm;
        if let Some(hit) = self.rtm.lookup(pc, |loc| vm.peek_loc(loc)) {
            self.vm.apply_trace(hit.outs.iter().copied(), hit.next_pc)?;
            self.skipped += hit.len as u64;
            self.reuse_ops += 1;
            self.reused_sizes.record(hit.len as u64);
            if let Some(tap) = self.tap.as_mut() {
                tap.push(ReuseEvent::Hit {
                    pc,
                    len: hit.len,
                    next_pc: hit.next_pc,
                    mix: hit.mix,
                });
            }
            if let Some(collector) = self.collector.as_mut() {
                for rec in collector.on_reuse_hit(&hit) {
                    self.rtm.insert(rec);
                }
            }
            return Ok(());
        }
        match self.vm.step()? {
            StepResult::Executed(d) => {
                self.executed += 1;
                if let Some(tap) = self.tap.as_mut() {
                    tap.push(ReuseEvent::Exec { pc, class: d.class });
                }
                if let Some(collector) = self.collector.as_mut() {
                    for rec in collector.on_executed(&d) {
                        self.rtm.insert(rec);
                    }
                }
            }
            StepResult::Halted => self.halted = true,
        }
        Ok(())
    }

    /// Statistics snapshot. Collector counters are zero when collection
    /// is detached.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            executed: self.executed,
            skipped: self.skipped,
            reuse_ops: self.reuse_ops,
            halted: self.halted,
            rtm: self.rtm.stats(),
            collect: self
                .collector
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
            reused_sizes: self.reused_sizes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TraceReuseEngine;
    use crate::{Heuristic, ReplacementPolicy, RtmConfig};
    use tlr_asm::assemble;

    const HOT_LOOP: &str = r#"
            .org 0x80
    tab:    .word 2, 4, 6, 8
            li      r9, 300
    outer:  li      r1, tab
            li      r2, 4
            li      r5, 0
    inner:  ldq     r3, 0(r1)
            addq    r5, r5, r3
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, inner
            stq     r5, 64(zero)
            subq    r9, r9, 1
            bnez    r9, outer
            halt
    "#;

    fn config() -> EngineConfig {
        EngineConfig::paper(RtmConfig::RTM_4K, Heuristic::FixedExp(4))
    }

    #[test]
    fn fast_and_observed_modes_produce_identical_stats() {
        let program = assemble(HOT_LOOP).unwrap();
        let mut fast = ThroughputEngine::new(&program, config());
        let mut observed = ThroughputEngine::new(&program, config()).with_mode(ExecMode::Observed);
        let sf = fast.run(100_000).unwrap();
        let so = observed.run(100_000).unwrap();
        assert_eq!(sf, so);
        assert!(sf.halted);
        assert!(sf.skipped > 0);
        assert_eq!(fast.vm().state_digest(), observed.vm().state_digest());
    }

    #[test]
    fn fast_engine_matches_reference_engine() {
        let program = assemble(HOT_LOOP).unwrap();
        let mut fast = ThroughputEngine::new(&program, config());
        let mut reference = TraceReuseEngine::new(&program, config());
        fast.enable_tap();
        reference.enable_tap();
        let sf = fast.run(100_000).unwrap();
        let sr = reference.run(100_000).unwrap();
        assert_eq!(sf, sr);
        assert_eq!(fast.vm().state_digest(), reference.vm().state_digest());
        assert_eq!(
            fast.take_tap().unwrap().digest(),
            reference.take_tap().unwrap().digest()
        );
    }

    #[test]
    fn serving_only_engine_hits_without_collecting() {
        let program = assemble(HOT_LOOP).unwrap();
        // Learn traces with a collecting run, then serve them cold.
        let mut teacher = ThroughputEngine::new(&program, config());
        teacher.run(100_000).unwrap();
        let snapshot = teacher.export_rtm();
        assert!(!snapshot.is_empty());

        let mut server =
            ThroughputEngine::new_warm(&program, config(), &snapshot).without_collection();
        let stats = server.run(100_000).unwrap();
        assert!(stats.halted);
        assert!(stats.skipped > 0, "warm RTM must serve hits");
        assert_eq!(stats.rtm.stores, 0, "serving-only engine never inserts");
        assert_eq!(stats.collect.collected, 0);
        // Architectural result identical to plain execution.
        let mut plain = Vm::new(&program);
        plain.run_fast(u64::MAX).unwrap();
        assert_eq!(server.vm().state_digest(), plain.state_digest());
    }

    #[test]
    fn modes_agree_across_policies_and_heuristics() {
        let program = assemble(HOT_LOOP).unwrap();
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Lfu,
            ReplacementPolicy::CostBenefit,
        ] {
            for heuristic in [Heuristic::IlrExp, Heuristic::BasicBlock] {
                let cfg = EngineConfig::paper(RtmConfig::RTM_512, heuristic).with_policy(policy);
                let mut fast = ThroughputEngine::new(&program, cfg);
                let mut observed =
                    ThroughputEngine::new(&program, cfg).with_mode(ExecMode::Observed);
                let sf = fast.run(60_000).unwrap();
                let so = observed.run(60_000).unwrap();
                assert_eq!(sf, so, "policy {policy:?} heuristic {heuristic:?}");
                assert_eq!(fast.vm().state_digest(), observed.vm().state_digest());
            }
        }
    }

    #[test]
    #[should_panic(expected = "value-comparison")]
    fn valid_bit_config_is_rejected() {
        let program = assemble("halt\n").unwrap();
        let _ = ThroughputEngine::new(&program, config().with_valid_bit());
    }
}
