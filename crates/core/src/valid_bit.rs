//! The valid-bit reuse test (§3.3's alternative mechanism).
//!
//! > "Another possibility is to add to each RTM entry a valid bit. When a
//! > trace is stored its valid bit is set. For every register/memory
//! > write, all the RTM entries with a matching register/memory location
//! > in its input list are invalidated. The latter approach requires a
//! > much simpler reuse test (just checking the valid bit)."
//!
//! [`InvalidatingRtm`] implements that scheme: a slab of entries with a
//! reverse index from input location to the entries that read it. The
//! processor notifies every architectural write via
//! [`ReuseBackend::on_write`], which conservatively invalidates — even a
//! *silent* write (same value) kills the entry, which is exactly the
//! reuse this scheme forfeits relative to the full value comparison. The
//! `reproduce validbit` experiment quantifies the gap.
//!
//! Capacity semantics mirror the RTM geometry: the same total entry
//! count and the same per-PC limit, with invalid-first / oldest-next
//! replacement (a valid-bit design would naturally prefer reclaiming
//! dead entries).

use crate::ilr::SetAssocGeometry;
use crate::rtm::{ReuseBackend, RtmStats};
use crate::trace::TraceRecord;
use tlr_isa::Loc;
use tlr_util::FxHashMap;

/// One slab slot.
struct Slot {
    rec: TraceRecord,
    valid: bool,
    /// Bumped every time the slot is re-allocated, so stale reverse-index
    /// references can be detected.
    generation: u32,
    /// Insertion order stamp (for oldest-first replacement).
    stamp: u64,
}

/// The valid-bit Reuse Trace Memory.
pub struct InvalidatingRtm {
    geometry: SetAssocGeometry,
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    /// PC → slot ids, most recently stored last.
    by_pc: FxHashMap<u32, Vec<u32>>,
    /// Input location → (slot id, generation) that must die when the
    /// location is written.
    watchers: FxHashMap<Loc, Vec<(u32, u32)>>,
    stamp: u64,
    stats: RtmStats,
    invalidations: u64,
}

impl InvalidatingRtm {
    /// Empty memory with the given geometry (total capacity and per-PC
    /// limit are taken from it).
    pub fn new(geometry: SetAssocGeometry) -> Self {
        let cap = geometry.capacity() as usize;
        Self {
            geometry,
            slots: Vec::with_capacity(cap.min(4096)),
            free: Vec::new(),
            by_pc: FxHashMap::default(),
            watchers: FxHashMap::default(),
            stamp: 0,
            stats: RtmStats::default(),
            invalidations: 0,
        }
    }

    /// Entries invalidated by writes so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Currently resident *valid* entries.
    pub fn valid_entries(&self) -> u64 {
        self.slots.iter().flatten().filter(|s| s.valid).count() as u64
    }

    fn allocate(&mut self) -> u32 {
        if let Some(id) = self.free.pop() {
            return id;
        }
        if self.slots.len() < self.geometry.capacity() as usize {
            self.slots.push(None);
            return (self.slots.len() - 1) as u32;
        }
        // Full: evict an invalid entry if any, else the oldest.
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .min_by_key(|(_, s)| (s.valid, s.stamp))
            .map(|(i, _)| i as u32)
            .expect("capacity > 0, so a victim exists");
        self.evict(victim);
        victim
    }

    fn evict(&mut self, id: u32) {
        if let Some(slot) = self.slots[id as usize].take() {
            let pc = slot.rec.start_pc;
            if let Some(list) = self.by_pc.get_mut(&pc) {
                list.retain(|x| *x != id);
                if list.is_empty() {
                    self.by_pc.remove(&pc);
                }
            }
            self.stats.evictions += 1;
        }
    }
}

impl ReuseBackend for InvalidatingRtm {
    fn lookup(&mut self, pc: u32, _state: &dyn Fn(Loc) -> u64) -> Option<TraceRecord> {
        self.stats.lookups += 1;
        let list = self.by_pc.get(&pc)?;
        // Most recently stored first; the reuse test is just the valid
        // bit — no value comparison.
        let hit = list.iter().rev().find_map(|id| {
            let slot = self.slots[*id as usize].as_ref()?;
            slot.valid.then(|| slot.rec.clone())
        });
        if hit.is_some() {
            self.stats.hits += 1;
        }
        hit
    }

    fn insert(&mut self, rec: TraceRecord, state: &dyn Fn(Loc) -> u64) {
        // Per-PC limit: evict this PC's oldest entry when full.
        if let Some(list) = self.by_pc.get(&rec.start_pc) {
            if list.len() >= self.geometry.per_pc as usize {
                let victim = list[0];
                self.evict(victim);
            }
        }
        // The entry is born valid only if its recorded live-in values
        // still equal the architectural state at store time: a trace
        // that overwrote its own inputs (a loop counter, say) is dead on
        // arrival under this scheme.
        let valid = rec.ins.iter().all(|(loc, val)| state(*loc) == *val);
        let id = self.allocate();
        self.stamp += 1;
        let generation = self.slots[id as usize]
            .as_ref()
            .map(|s| s.generation)
            .unwrap_or(0)
            .wrapping_add(1);
        for (loc, _) in rec.ins.iter() {
            self.watchers
                .entry(*loc)
                .or_default()
                .push((id, generation));
        }
        self.by_pc.entry(rec.start_pc).or_default().push(id);
        self.slots[id as usize] = Some(Slot {
            rec,
            valid,
            generation,
            stamp: self.stamp,
        });
        self.stats.stores += 1;
    }

    fn on_write(&mut self, loc: Loc) {
        let Some(watchers) = self.watchers.remove(&loc) else {
            return;
        };
        for (id, generation) in watchers {
            if let Some(slot) = self.slots[id as usize].as_mut() {
                if slot.generation == generation && slot.valid {
                    slot.valid = false;
                    self.invalidations += 1;
                }
            }
        }
    }

    fn stats(&self) -> RtmStats {
        self.stats
    }

    fn resident(&self) -> u64 {
        self.slots.iter().flatten().count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u32, ins: &[(Loc, u64)], outs: &[(Loc, u64)]) -> TraceRecord {
        TraceRecord {
            start_pc: pc,
            next_pc: pc + 3,
            len: 3,
            ins: ins.to_vec().into_boxed_slice(),
            outs: outs.to_vec().into_boxed_slice(),
            mix: Default::default(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);

    fn geometry() -> SetAssocGeometry {
        SetAssocGeometry {
            sets: 4,
            ways: 2,
            per_pc: 2,
        }
    }

    #[test]
    fn valid_entry_hits_without_value_comparison() {
        let mut rtm = InvalidatingRtm::new(geometry());
        let state = |loc: Loc| if loc == R1 { 5 } else { 0 };
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 9)]), &state);
        // The lookup's state closure is ignored by this backend.
        let wrong_state = |_: Loc| 12345u64;
        assert!(rtm.lookup(10, &wrong_state).is_some());
    }

    #[test]
    fn write_to_input_invalidates() {
        let mut rtm = InvalidatingRtm::new(geometry());
        let state = |loc: Loc| if loc == R1 { 5 } else { 0 };
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 9)]), &state);
        rtm.on_write(R1);
        assert!(rtm.lookup(10, &|_| 0).is_none());
        assert_eq!(rtm.invalidations(), 1);
        assert_eq!(rtm.valid_entries(), 0);
        // A silent write (same value) also kills it — the scheme's
        // conservatism.
        rtm.insert(rec(10, &[(R1, 5)], &[(R2, 9)]), &state);
        rtm.on_write(R1); // architecturally rewrote 5 with 5
        assert!(rtm.lookup(10, &|_| 0).is_none());
    }

    #[test]
    fn self_clobbering_trace_is_dead_on_arrival() {
        let mut rtm = InvalidatingRtm::new(geometry());
        // Live-in r1=5, but by store time r1 holds 6 (the trace wrote it).
        let state = |loc: Loc| if loc == R1 { 6 } else { 0 };
        rtm.insert(rec(10, &[(R1, 5)], &[(R1, 6)]), &state);
        assert!(rtm.lookup(10, &|_| 0).is_none());
        assert_eq!(rtm.valid_entries(), 0);
    }

    #[test]
    fn writes_to_unrelated_locations_do_not_invalidate() {
        let mut rtm = InvalidatingRtm::new(geometry());
        let state = |loc: Loc| if loc == R1 { 5 } else { 0 };
        rtm.insert(rec(10, &[(R1, 5)], &[]), &state);
        rtm.on_write(R2);
        rtm.on_write(Loc::Mem(99));
        assert!(rtm.lookup(10, &|_| 0).is_some());
    }

    #[test]
    fn per_pc_limit_evicts_oldest() {
        let mut rtm = InvalidatingRtm::new(geometry()); // per_pc = 2
        let state = |_: Loc| 0u64;
        rtm.insert(rec(10, &[], &[(R2, 1)]), &state);
        rtm.insert(rec(10, &[], &[(R2, 2)]), &state);
        rtm.insert(rec(10, &[], &[(R2, 3)]), &state);
        assert_eq!(rtm.resident(), 2);
        // Newest wins the lookup.
        let hit = rtm.lookup(10, &|_| 0).unwrap();
        assert_eq!(hit.outs[0].1, 3);
    }

    #[test]
    fn capacity_eviction_prefers_invalid_entries() {
        let g = SetAssocGeometry {
            sets: 1,
            ways: 1,
            per_pc: 2,
        }; // capacity 2
        let mut rtm = InvalidatingRtm::new(g);
        let state = |_: Loc| 0u64;
        rtm.insert(rec(1, &[(R1, 0)], &[]), &state);
        rtm.insert(rec(2, &[(R2, 0)], &[]), &state);
        rtm.on_write(R1); // entry for pc 1 is now invalid
        rtm.insert(rec(3, &[], &[]), &state); // evicts the invalid one
        assert!(rtm.lookup(2, &|_| 0).is_some(), "valid entry survived");
        assert!(rtm.lookup(3, &|_| 0).is_some());
        assert!(rtm.lookup(1, &|_| 0).is_none());
    }
}
