//! Instruction-level reusability (§2, §4.2).
//!
//! An executed instruction is *reusable* when some earlier execution of
//! the same static instruction (same PC) had exactly the same inputs —
//! the same read locations with the same values. Sodani & Sohi's reuse
//! buffer tests this in hardware; the limit study uses an unbounded
//! history ([`InstrReuseTable`]), and the realistic study (Figure 9, the
//! `ILR NE` / `ILR EXP` heuristics) uses a finite set-associative buffer
//! with the same entry count as the RTM ([`FiniteIlrBuffer`]).
//!
//! Inputs are compared via the 128-bit [`tlr_isa::DynInstr::input_signature`];
//! at ~2^64 birthday bound a false "reusable" verdict is beyond the reach
//! of any run we perform.

use tlr_isa::DynInstr;
use tlr_util::{FxHashMap, FxHashSet};

/// Unbounded per-PC history of input signatures — the "perfect engine"
/// of Figure 3.
#[derive(Default)]
pub struct InstrReuseTable {
    history: FxHashMap<u32, FxHashSet<u128>>,
    observed: u64,
    reusable: u64,
}

impl InstrReuseTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Test whether `d` is reusable, then record its inputs. The first
    /// execution with given inputs is (by definition) not reusable.
    pub fn probe_insert(&mut self, d: &DynInstr) -> bool {
        self.observed += 1;
        let sig = d.input_signature();
        let set = self.history.entry(d.pc).or_default();
        let reusable = !set.insert(sig);
        if reusable {
            self.reusable += 1;
        }
        reusable
    }

    /// Instructions observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Instructions found reusable so far.
    pub fn reusable(&self) -> u64 {
        self.reusable
    }

    /// Percentage of observed instructions that were reusable
    /// (0–100; 0 when nothing observed).
    pub fn reusability_pct(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            100.0 * self.reusable as f64 / self.observed as f64
        }
    }

    /// Number of static instructions tracked.
    pub fn static_instrs(&self) -> usize {
        self.history.len()
    }

    /// Total distinct input tuples stored (table footprint).
    pub fn stored_tuples(&self) -> usize {
        self.history.values().map(|s| s.len()).sum()
    }
}

/// Geometry of a set-associative, per-PC-grouped reuse structure.
///
/// `sets × ways × per_pc` entries: `sets` is indexed by the PC's low
/// bits, each set holds up to `ways` distinct PCs, and each PC group
/// holds up to `per_pc` entries with LRU replacement at both levels.
/// This is the organization the paper gives for the RTM (§4.6); the
/// finite ILR buffer mirrors it so that "as many entries as the RTM"
/// compares like with like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetAssocGeometry {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Distinct PCs per set.
    pub ways: u32,
    /// Entries per PC group.
    pub per_pc: u32,
}

impl SetAssocGeometry {
    /// Total entry capacity.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.per_pc as u64
    }

    /// Set index for a PC.
    #[inline]
    pub fn set_of(&self, pc: u32) -> usize {
        debug_assert!(self.sets.is_power_of_two());
        (pc & (self.sets - 1)) as usize
    }
}

/// One PC group: LRU-ordered entries (most recent last).
pub(crate) struct PcGroup<T> {
    pub(crate) pc: u32,
    /// Entries, LRU-ordered: index 0 = least recently used.
    pub(crate) entries: Vec<T>,
    /// Tick of last touch, for group-level LRU.
    pub(crate) last_touch: u64,
}

/// A two-level LRU set-associative store, generic over the entry payload.
/// Shared by [`FiniteIlrBuffer`] and the RTM.
pub(crate) struct SetAssocStore<T> {
    geometry: SetAssocGeometry,
    sets: Vec<Vec<PcGroup<T>>>,
    tick: u64,
    /// Entries currently resident.
    pub(crate) resident: u64,
}

impl<T> SetAssocStore<T> {
    pub(crate) fn new(geometry: SetAssocGeometry) -> Self {
        assert!(
            geometry.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(geometry.ways >= 1 && geometry.per_pc >= 1);
        Self {
            geometry,
            sets: (0..geometry.sets).map(|_| Vec::new()).collect(),
            tick: 0,
            resident: 0,
        }
    }

    pub(crate) fn geometry(&self) -> SetAssocGeometry {
        self.geometry
    }

    /// Find the entry group for `pc`, if resident. Bumps the group's LRU
    /// tick.
    pub(crate) fn group_mut(&mut self, pc: u32) -> Option<&mut Vec<T>> {
        self.tick += 1;
        let set = &mut self.sets[self.geometry.set_of(pc)];
        let tick = self.tick;
        set.iter_mut().find(|g| g.pc == pc).map(|g| {
            g.last_touch = tick;
            &mut g.entries
        })
    }

    /// Insert `entry` into `pc`'s group under pure LRU replacement at
    /// both levels — the paper's hard-wired behaviour. Returns the
    /// number of entries evicted.
    pub(crate) fn insert(&mut self, pc: u32, entry: T) -> u64 {
        self.insert_with(pc, entry, &mut |_| 0, &mut lru_group_victim)
    }

    /// Insert `entry` into `pc`'s group, creating the group if absent and
    /// delegating victim choice to the callers' policy: when the group is
    /// full, `entry_victim` picks the entry index to evict (entries are
    /// in LRU→MRU order, so `0` is pure LRU); when the set is full of
    /// other PCs' groups, `group_victim` picks the group to evict.
    /// Returns the number of entries evicted.
    pub(crate) fn insert_with(
        &mut self,
        pc: u32,
        entry: T,
        entry_victim: &mut dyn FnMut(&[T]) -> usize,
        group_victim: &mut dyn FnMut(&[PcGroup<T>]) -> usize,
    ) -> u64 {
        self.tick += 1;
        let per_pc = self.geometry.per_pc as usize;
        let ways = self.geometry.ways as usize;
        let set = &mut self.sets[self.geometry.set_of(pc)];
        let mut evicted = 0u64;
        let group = match set.iter_mut().position(|g| g.pc == pc) {
            Some(i) => &mut set[i],
            None => {
                if set.len() == ways {
                    let victim = group_victim(set).min(set.len() - 1);
                    evicted += set[victim].entries.len() as u64;
                    self.resident -= set[victim].entries.len() as u64;
                    set.swap_remove(victim);
                }
                set.push(PcGroup {
                    pc,
                    entries: Vec::with_capacity(per_pc.min(4)),
                    last_touch: 0,
                });
                let last = set.len() - 1;
                &mut set[last]
            }
        };
        group.last_touch = self.tick;
        if group.entries.len() == per_pc {
            let victim = entry_victim(&group.entries).min(group.entries.len() - 1);
            group.entries.remove(victim);
            evicted += 1;
            self.resident -= 1;
        }
        group.entries.push(entry);
        self.resident += 1;
        evicted
    }

    /// Iterate all resident entries for snapshotting: groups within each
    /// set in least-recently-touched-first order, entries within a group
    /// in LRU→MRU order. Re-inserting entries in this order into an empty
    /// store of the same geometry reproduces the replacement state.
    pub(crate) fn iter_lru(&self) -> impl Iterator<Item = (u32, &T)> {
        self.sets.iter().flat_map(|set| {
            let mut groups: Vec<&PcGroup<T>> = set.iter().collect();
            groups.sort_by_key(|g| g.last_touch);
            groups
                .into_iter()
                .flat_map(|g| g.entries.iter().map(move |e| (g.pc, e)))
        })
    }

    /// Iterate the groups of every set (store order, no recency
    /// sorting) — provenance aggregation over resident entries.
    pub(crate) fn iter_groups(&self) -> impl Iterator<Item = &PcGroup<T>> {
        self.sets.iter().flatten()
    }

    /// Move the entry at `idx` of `pc`'s group to the MRU position.
    pub(crate) fn touch(&mut self, pc: u32, idx: usize) {
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[self.geometry.set_of(pc)];
        if let Some(g) = set.iter_mut().find(|g| g.pc == pc) {
            g.last_touch = tick;
            let entry = g.entries.remove(idx);
            g.entries.push(entry);
        }
    }
}

/// The default group-level victim rule: least recently touched.
pub(crate) fn lru_group_victim<T>(groups: &[PcGroup<T>]) -> usize {
    groups
        .iter()
        .enumerate()
        .min_by_key(|(_, g)| g.last_touch)
        .map(|(i, _)| i)
        .expect("victim requested for a non-empty set")
}

/// Finite instruction-level reuse buffer for the `ILR NE` / `ILR EXP`
/// heuristics: same geometry as the RTM, storing input signatures.
pub struct FiniteIlrBuffer {
    store: SetAssocStore<u128>,
    observed: u64,
    reusable: u64,
}

impl FiniteIlrBuffer {
    /// New buffer with the given geometry.
    pub fn new(geometry: SetAssocGeometry) -> Self {
        Self {
            store: SetAssocStore::new(geometry),
            observed: 0,
            reusable: 0,
        }
    }

    /// Test-and-record, like [`InstrReuseTable::probe_insert`] but under
    /// finite capacity: entries evicted by LRU stop contributing.
    pub fn probe_insert(&mut self, d: &DynInstr) -> bool {
        self.observed += 1;
        let sig = d.input_signature();
        if let Some(entries) = self.store.group_mut(d.pc) {
            if let Some(idx) = entries.iter().position(|s| *s == sig) {
                self.store.touch(d.pc, idx);
                self.reusable += 1;
                return true;
            }
        }
        self.store.insert(d.pc, sig);
        false
    }

    /// Entries resident.
    pub fn resident(&self) -> u64 {
        self.store.resident
    }

    /// Capacity.
    pub fn capacity(&self) -> u64 {
        self.store.geometry().capacity()
    }

    /// Percentage of observed instructions found reusable.
    pub fn reusability_pct(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            100.0 * self.reusable as f64 / self.observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::{Loc, OpClass};

    fn di(pc: u32, reads: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: Default::default(),
        }
    }

    #[test]
    fn first_execution_not_reusable_second_is() {
        let mut t = InstrReuseTable::new();
        let d = di(10, &[(Loc::IntReg(1), 5)]);
        assert!(!t.probe_insert(&d));
        assert!(t.probe_insert(&d));
        assert!(t.probe_insert(&d));
        assert_eq!(t.observed(), 3);
        assert_eq!(t.reusable(), 2);
        assert!((t.reusability_pct() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn different_inputs_not_reusable() {
        let mut t = InstrReuseTable::new();
        assert!(!t.probe_insert(&di(10, &[(Loc::IntReg(1), 5)])));
        assert!(!t.probe_insert(&di(10, &[(Loc::IntReg(1), 6)])));
        // Either past input now matches.
        assert!(t.probe_insert(&di(10, &[(Loc::IntReg(1), 5)])));
        assert!(t.probe_insert(&di(10, &[(Loc::IntReg(1), 6)])));
        assert_eq!(t.stored_tuples(), 2);
        assert_eq!(t.static_instrs(), 1);
    }

    #[test]
    fn pc_disambiguates() {
        let mut t = InstrReuseTable::new();
        assert!(!t.probe_insert(&di(10, &[(Loc::IntReg(1), 5)])));
        // Same inputs at a different PC: separate history.
        assert!(!t.probe_insert(&di(11, &[(Loc::IntReg(1), 5)])));
        assert_eq!(t.static_instrs(), 2);
    }

    #[test]
    fn zero_input_instructions_always_reusable_after_first() {
        let mut t = InstrReuseTable::new();
        let d = di(0, &[]); // e.g. `li` — constant generation
        assert!(!t.probe_insert(&d));
        for _ in 0..10 {
            assert!(t.probe_insert(&d));
        }
    }

    #[test]
    fn geometry_capacity_matches_paper_configs() {
        // §4.6: 512 / 4K / 32K / 256K entries.
        let g512 = SetAssocGeometry {
            sets: 32,
            ways: 4,
            per_pc: 4,
        };
        let g4k = SetAssocGeometry {
            sets: 128,
            ways: 4,
            per_pc: 8,
        };
        let g32k = SetAssocGeometry {
            sets: 256,
            ways: 8,
            per_pc: 16,
        };
        let g256k = SetAssocGeometry {
            sets: 2048,
            ways: 8,
            per_pc: 16,
        };
        assert_eq!(g512.capacity(), 512);
        assert_eq!(g4k.capacity(), 4096);
        assert_eq!(g32k.capacity(), 32768);
        assert_eq!(g256k.capacity(), 262144);
    }

    #[test]
    fn finite_buffer_evicts_per_pc_lru() {
        let g = SetAssocGeometry {
            sets: 1,
            ways: 1,
            per_pc: 2,
        };
        let mut b = FiniteIlrBuffer::new(g);
        let d1 = di(0, &[(Loc::IntReg(1), 1)]);
        let d2 = di(0, &[(Loc::IntReg(1), 2)]);
        let d3 = di(0, &[(Loc::IntReg(1), 3)]);
        assert!(!b.probe_insert(&d1));
        assert!(!b.probe_insert(&d2));
        assert_eq!(b.resident(), 2);
        // Touch d1 so d2 becomes LRU; inserting d3 evicts d2.
        assert!(b.probe_insert(&d1));
        assert!(!b.probe_insert(&d3));
        assert_eq!(b.resident(), 2);
        assert!(b.probe_insert(&d1));
        assert!(!b.probe_insert(&d2), "d2 must have been evicted");
    }

    #[test]
    fn finite_buffer_evicts_pc_groups() {
        // One set, one way: a second PC evicts the first PC's group.
        let g = SetAssocGeometry {
            sets: 1,
            ways: 1,
            per_pc: 4,
        };
        let mut b = FiniteIlrBuffer::new(g);
        let a = di(0, &[(Loc::IntReg(1), 1)]);
        let c = di(1, &[(Loc::IntReg(1), 1)]);
        assert!(!b.probe_insert(&a));
        assert!(!b.probe_insert(&c)); // evicts PC 0's group
        assert!(!b.probe_insert(&a)); // a is gone
    }

    #[test]
    fn finite_buffer_sets_isolate_pcs() {
        // Two sets: PCs 0 and 1 land in different sets and never clash.
        let g = SetAssocGeometry {
            sets: 2,
            ways: 1,
            per_pc: 1,
        };
        let mut b = FiniteIlrBuffer::new(g);
        let a = di(0, &[(Loc::IntReg(1), 1)]);
        let c = di(1, &[(Loc::IntReg(1), 1)]);
        assert!(!b.probe_insert(&a));
        assert!(!b.probe_insert(&c));
        assert!(b.probe_insert(&a));
        assert!(b.probe_insert(&c));
    }

    #[test]
    fn finite_tracks_infinite_when_capacity_sufficient() {
        let g = SetAssocGeometry {
            sets: 64,
            ways: 8,
            per_pc: 16,
        };
        let mut fin = FiniteIlrBuffer::new(g);
        let mut inf = InstrReuseTable::new();
        // Working set well under capacity: identical verdicts.
        for round in 0..4u64 {
            for pc in 0..50u32 {
                let d = di(pc, &[(Loc::IntReg(1), round % 2)]);
                assert_eq!(
                    fin.probe_insert(&d),
                    inf.probe_insert(&d),
                    "pc={pc} round={round}"
                );
            }
        }
    }
}
