//! Pluggable RTM replacement policies and per-trace provenance.
//!
//! The paper's RTM replaces strictly by recency (two-level LRU, §4.6).
//! Under snapshot merging and fleet pooling that is not obviously the
//! right choice: Coppieters et al.'s per-trace contribution analysis
//! (PAPERS.md) shows a small fraction of traces carries most of the
//! reuse, which suggests keeping the *most-hit* (or most
//! instructions-saved) traces rather than the most recent ones. This
//! module makes that an explicit, measurable knob:
//!
//! * [`ReplacementPolicy`] selects the victim-choice rule the RTM (and
//!   snapshot merging, and the serving registry) uses under capacity
//!   pressure;
//! * [`TraceMeta`] is the per-entry provenance that the non-recency
//!   policies rank by — hit count, last-use tick, and the id of the run
//!   that first contributed the trace. It is carried through snapshot
//!   export/import (format v3) so pooled state keeps its history.
//!
//! The reuse *test* is untouched: policies only decide what to evict,
//! never what may be reused, so every policy preserves architectural
//! equivalence (the `reproduce policy` sweep asserts this).

use tlr_isa::{ClassMix, OpClass};

/// Per-[`OpClass`] eviction weights for
/// [`ReplacementPolicy::CostBenefitMeasured`]: roughly "cycles a skipped
/// instruction of this class saves", as measured by a decant attribution
/// pass. Weights are clamped to ≥ 1 when scoring so an unobserved class
/// never zeroes a trace's benefit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClassWeights {
    weights: [u16; OpClass::COUNT],
}

impl Default for ClassWeights {
    fn default() -> Self {
        Self::UNIT
    }
}

impl ClassWeights {
    /// All-ones weights: every instruction worth exactly one unit, which
    /// makes the measured score degenerate to the plain
    /// [`ReplacementPolicy::CostBenefit`] length weighting.
    pub const UNIT: ClassWeights = ClassWeights {
        weights: [1; OpClass::COUNT],
    };

    /// Build from a per-class table in [`OpClass::ALL`] order.
    pub fn from_table(weights: [u16; OpClass::COUNT]) -> Self {
        Self { weights }
    }

    /// The weight for one class.
    #[inline]
    pub fn get(&self, class: OpClass) -> u16 {
        self.weights[class.index()]
    }

    /// Weighted instruction count of a trace: each attributed
    /// instruction costs its class weight, and any *unattributed* tail
    /// (`len − mix.total()`, nonzero only for records imported from
    /// pre-mix snapshots) costs 1 — so a zero-mix record scores exactly
    /// its length and never gains or loses rank from missing data.
    pub fn effective_len(&self, len: u32, mix: ClassMix) -> u128 {
        let attributed: u128 = mix
            .iter()
            .map(|(class, n)| u128::from(n) * u128::from(self.get(class).max(1)))
            .sum();
        let unattributed = u128::from(len).saturating_sub(mix.total() as u128);
        attributed + unattributed
    }
}

/// How the RTM picks victims under capacity pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used, at both the PC-group and entry level — the
    /// paper's hard-wired behaviour and the default.
    #[default]
    Lru,
    /// Frequency-weighted: evict the entry with the fewest recorded
    /// hits (ties broken by recency). Groups are ranked by their total
    /// hit count. Hit counts **age**: the effective count halves every
    /// [`LFU_HALF_LIFE`] RTM ticks since the entry's last use
    /// ([`TraceMeta::decayed_hits`]), so a once-hot trace that stopped
    /// hitting eventually loses to a fresh streak instead of squatting
    /// on its stale total forever.
    Lfu,
    /// Cost/benefit: evict the entry with the least *instructions
    /// saved* potential — `(hits + 1) × trace length` — so a long trace
    /// that skips many instructions per reuse outranks a short one with
    /// the same hit count. Groups are ranked by the same score summed.
    CostBenefit,
    /// Cost/benefit with *measured* per-class weights instead of raw
    /// length: benefit = `(hits + 1) ×` [`ClassWeights::effective_len`],
    /// pricing each skipped instruction by what a decant attribution
    /// pass observed its class to actually save. With
    /// [`ClassWeights::UNIT`] this is exactly
    /// [`ReplacementPolicy::CostBenefit`]. Not in [`ALL`](Self::ALL)
    /// (weights come from a measurement, not a CLI spelling); the
    /// `reproduce policy` sweep reports it alongside the length-weighted
    /// variant.
    CostBenefitMeasured(ClassWeights),
}

impl ReplacementPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::CostBenefit,
    ];

    /// Stable human-readable name (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Lfu => "lfu",
            ReplacementPolicy::CostBenefit => "cost-benefit",
            ReplacementPolicy::CostBenefitMeasured(_) => "cost-benefit-measured",
        }
    }

    /// Parse a CLI spelling (`lru` | `lfu` | `cost-benefit` | `cb`),
    /// case-insensitively. `None` for anything else.
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(ReplacementPolicy::Lru),
            "lfu" => Some(ReplacementPolicy::Lfu),
            "cost-benefit" | "cb" => Some(ReplacementPolicy::CostBenefit),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Aging half-life for [`ReplacementPolicy::Lfu`], in RTM ticks (the
/// RTM advances one tick per lookup or store): an entry's effective hit
/// count halves for every `LFU_HALF_LIFE` ticks it has gone untouched.
/// 4096 ticks is a few round trips through the paper's largest per-PC
/// group under a hot loop — long enough that a briefly idle trace keeps
/// its rank, short enough that a trace idle for a whole phase change
/// does not.
pub const LFU_HALF_LIFE: u64 = 4096;

/// Per-trace provenance: the replacement-relevant history of one RTM
/// entry. Persisted alongside the trace in snapshot format v3 (older
/// snapshots load as all-zero provenance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceMeta {
    /// Successful reuse tests this trace has answered.
    pub hits: u64,
    /// RTM tick of the last touch (hit or store refresh). Ticks are
    /// per-RTM, so values from different runs are comparable only as a
    /// tie-breaking heuristic — which is exactly how the policies use
    /// them.
    pub last_use: u64,
    /// Identifier of the run that first contributed the trace
    /// (0 when the producer did not stamp one).
    pub source_run: u64,
}

impl TraceMeta {
    /// Fold another sighting of the *same* trace into this provenance:
    /// hit counts add (both runs' reuse really happened), the later
    /// last-use wins, and the original contributor is kept.
    pub fn absorb(&mut self, other: &TraceMeta) {
        self.hits = self.hits.saturating_add(other.hits);
        self.last_use = self.last_use.max(other.last_use);
    }

    /// The cost/benefit score: instructions a future hit would save,
    /// weighted by how often the trace has hit so far.
    pub fn benefit(&self, trace_len: u32) -> u128 {
        (self.hits as u128 + 1) * trace_len as u128
    }

    /// The measured cost/benefit score: like [`TraceMeta::benefit`], but
    /// each skipped instruction is priced by its class weight instead of
    /// counting 1. `ClassWeights::UNIT` makes the two scores identical.
    pub fn benefit_measured(&self, trace_len: u32, mix: ClassMix, weights: &ClassWeights) -> u128 {
        (self.hits as u128 + 1) * weights.effective_len(trace_len, mix)
    }

    /// The LFU ranking score at RTM tick `now`: the recorded hit count
    /// halved once per [`LFU_HALF_LIFE`] ticks since the last use.
    /// Saturating: ticks from a previous life (an imported snapshot's
    /// `last_use` can exceed a fresh RTM's clock) age nothing.
    pub fn decayed_hits(&self, now: u64) -> u64 {
        self.decayed_hits_with(now, LFU_HALF_LIFE)
    }

    /// [`TraceMeta::decayed_hits`] under a caller-chosen half-life (the
    /// `--lfu-half-life` knob). A zero half-life is treated as 1 tick —
    /// maximally forgetful — rather than a division by zero.
    pub fn decayed_hits_with(&self, now: u64, half_life: u64) -> u64 {
        let epochs = (now.saturating_sub(self.last_use) / half_life.max(1)).min(63);
        self.hits >> epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_labels() {
        for policy in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(policy.label()), Some(policy));
            assert_eq!(
                ReplacementPolicy::parse(&policy.label().to_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(
            ReplacementPolicy::parse("cb"),
            Some(ReplacementPolicy::CostBenefit)
        );
        assert_eq!(ReplacementPolicy::parse("mru"), None);
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn absorb_sums_hits_keeps_origin() {
        let mut a = TraceMeta {
            hits: 3,
            last_use: 10,
            source_run: 7,
        };
        a.absorb(&TraceMeta {
            hits: 2,
            last_use: 99,
            source_run: 8,
        });
        assert_eq!(a.hits, 5);
        assert_eq!(a.last_use, 99);
        assert_eq!(a.source_run, 7, "origin run must survive an absorb");
        a.absorb(&TraceMeta {
            hits: u64::MAX,
            last_use: 0,
            source_run: 9,
        });
        assert_eq!(a.hits, u64::MAX, "hit counts saturate, never wrap");
    }

    #[test]
    fn decayed_hits_halve_per_half_life() {
        let meta = TraceMeta {
            hits: 8,
            last_use: 100,
            ..TraceMeta::default()
        };
        assert_eq!(meta.decayed_hits(100), 8, "no age, no decay");
        assert_eq!(meta.decayed_hits(100 + LFU_HALF_LIFE - 1), 8);
        assert_eq!(meta.decayed_hits(100 + LFU_HALF_LIFE), 4);
        assert_eq!(meta.decayed_hits(100 + 3 * LFU_HALF_LIFE), 1);
        assert_eq!(meta.decayed_hits(100 + 4 * LFU_HALF_LIFE), 0);
        // An imported trace's last_use may be from a longer-lived clock.
        assert_eq!(meta.decayed_hits(0), 8, "future last_use must not wrap");
        // The shift is clamped: astronomically old entries don't overflow.
        let ancient = TraceMeta {
            hits: u64::MAX,
            last_use: 0,
            ..TraceMeta::default()
        };
        assert_eq!(ancient.decayed_hits(u64::MAX), u64::MAX >> 63);
    }

    #[test]
    fn decayed_hits_with_respects_custom_half_life() {
        let meta = TraceMeta {
            hits: 8,
            last_use: 100,
            ..TraceMeta::default()
        };
        // A shorter half-life forgets faster than the default …
        assert_eq!(meta.decayed_hits_with(100 + 64, 64), 4);
        assert_eq!(meta.decayed_hits(100 + 64), 8);
        // … a longer one slower.
        assert_eq!(meta.decayed_hits_with(100 + 4 * LFU_HALF_LIFE, u64::MAX), 8);
        // The default delegates.
        assert_eq!(
            meta.decayed_hits(100 + LFU_HALF_LIFE),
            meta.decayed_hits_with(100 + LFU_HALF_LIFE, LFU_HALF_LIFE)
        );
        // Zero half-life is clamped, not a division by zero.
        assert_eq!(meta.decayed_hits_with(100 + 63, 0), 0);
    }

    #[test]
    fn unit_weights_reduce_measured_benefit_to_plain() {
        let meta = TraceMeta {
            hits: 5,
            ..TraceMeta::default()
        };
        let mut mix = ClassMix::EMPTY;
        for _ in 0..3 {
            mix.record(OpClass::FpDiv);
        }
        mix.record(OpClass::Load);
        assert_eq!(
            meta.benefit_measured(4, mix, &ClassWeights::UNIT),
            meta.benefit(4)
        );
        // Zero-mix records (old snapshots) also score exactly their
        // length under any weights' unattributed fallback.
        assert_eq!(
            meta.benefit_measured(9, ClassMix::EMPTY, &ClassWeights::UNIT),
            meta.benefit(9)
        );
    }

    #[test]
    fn measured_weights_price_classes_differently() {
        let mut table = [1u16; OpClass::COUNT];
        table[OpClass::FpDiv.index()] = 22;
        let weights = ClassWeights::from_table(table);
        let mut divs = ClassMix::EMPTY;
        divs.record(OpClass::FpDiv);
        divs.record(OpClass::FpDiv);
        let mut alus = ClassMix::EMPTY;
        alus.record(OpClass::IntAlu);
        alus.record(OpClass::IntAlu);
        let meta = TraceMeta::default();
        // Same length, but the divide-heavy trace saves far more.
        assert!(
            meta.benefit_measured(2, divs, &weights) > meta.benefit_measured(2, alus, &weights)
        );
        assert_eq!(meta.benefit_measured(2, divs, &weights), 44);
        // Attributed part weighted, unattributed tail counts 1 each.
        assert_eq!(meta.benefit_measured(5, divs, &weights), 44 + 3);
        // A zero weight is clamped to 1 when scoring.
        let zeroed = ClassWeights::from_table([0; OpClass::COUNT]);
        assert_eq!(meta.benefit_measured(2, alus, &zeroed), 2);
        assert_eq!(
            ReplacementPolicy::CostBenefitMeasured(weights).label(),
            "cost-benefit-measured"
        );
        assert_eq!(ReplacementPolicy::parse("cost-benefit-measured"), None);
    }

    #[test]
    fn benefit_weights_length_and_hits() {
        let cold = TraceMeta::default();
        let hot = TraceMeta {
            hits: 9,
            ..TraceMeta::default()
        };
        // A never-hit long trace can outrank a hot short one …
        assert!(cold.benefit(30) > hot.benefit(2));
        // … but frequency dominates at equal length.
        assert!(hot.benefit(4) > cold.benefit(4));
    }
}
