//! Pluggable RTM replacement policies and per-trace provenance.
//!
//! The paper's RTM replaces strictly by recency (two-level LRU, §4.6).
//! Under snapshot merging and fleet pooling that is not obviously the
//! right choice: Coppieters et al.'s per-trace contribution analysis
//! (PAPERS.md) shows a small fraction of traces carries most of the
//! reuse, which suggests keeping the *most-hit* (or most
//! instructions-saved) traces rather than the most recent ones. This
//! module makes that an explicit, measurable knob:
//!
//! * [`ReplacementPolicy`] selects the victim-choice rule the RTM (and
//!   snapshot merging, and the serving registry) uses under capacity
//!   pressure;
//! * [`TraceMeta`] is the per-entry provenance that the non-recency
//!   policies rank by — hit count, last-use tick, and the id of the run
//!   that first contributed the trace. It is carried through snapshot
//!   export/import (format v3) so pooled state keeps its history.
//!
//! The reuse *test* is untouched: policies only decide what to evict,
//! never what may be reused, so every policy preserves architectural
//! equivalence (the `reproduce policy` sweep asserts this).

/// How the RTM picks victims under capacity pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used, at both the PC-group and entry level — the
    /// paper's hard-wired behaviour and the default.
    #[default]
    Lru,
    /// Frequency-weighted: evict the entry with the fewest recorded
    /// hits (ties broken by recency). Groups are ranked by their total
    /// hit count. Hit counts **age**: the effective count halves every
    /// [`LFU_HALF_LIFE`] RTM ticks since the entry's last use
    /// ([`TraceMeta::decayed_hits`]), so a once-hot trace that stopped
    /// hitting eventually loses to a fresh streak instead of squatting
    /// on its stale total forever.
    Lfu,
    /// Cost/benefit: evict the entry with the least *instructions
    /// saved* potential — `(hits + 1) × trace length` — so a long trace
    /// that skips many instructions per reuse outranks a short one with
    /// the same hit count. Groups are ranked by the same score summed.
    CostBenefit,
}

impl ReplacementPolicy {
    /// Every policy, in sweep order.
    pub const ALL: [ReplacementPolicy; 3] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::CostBenefit,
    ];

    /// Stable human-readable name (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Lfu => "lfu",
            ReplacementPolicy::CostBenefit => "cost-benefit",
        }
    }

    /// Parse a CLI spelling (`lru` | `lfu` | `cost-benefit` | `cb`),
    /// case-insensitively. `None` for anything else.
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(ReplacementPolicy::Lru),
            "lfu" => Some(ReplacementPolicy::Lfu),
            "cost-benefit" | "cb" => Some(ReplacementPolicy::CostBenefit),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Aging half-life for [`ReplacementPolicy::Lfu`], in RTM ticks (the
/// RTM advances one tick per lookup or store): an entry's effective hit
/// count halves for every `LFU_HALF_LIFE` ticks it has gone untouched.
/// 4096 ticks is a few round trips through the paper's largest per-PC
/// group under a hot loop — long enough that a briefly idle trace keeps
/// its rank, short enough that a trace idle for a whole phase change
/// does not.
pub const LFU_HALF_LIFE: u64 = 4096;

/// Per-trace provenance: the replacement-relevant history of one RTM
/// entry. Persisted alongside the trace in snapshot format v3 (older
/// snapshots load as all-zero provenance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceMeta {
    /// Successful reuse tests this trace has answered.
    pub hits: u64,
    /// RTM tick of the last touch (hit or store refresh). Ticks are
    /// per-RTM, so values from different runs are comparable only as a
    /// tie-breaking heuristic — which is exactly how the policies use
    /// them.
    pub last_use: u64,
    /// Identifier of the run that first contributed the trace
    /// (0 when the producer did not stamp one).
    pub source_run: u64,
}

impl TraceMeta {
    /// Fold another sighting of the *same* trace into this provenance:
    /// hit counts add (both runs' reuse really happened), the later
    /// last-use wins, and the original contributor is kept.
    pub fn absorb(&mut self, other: &TraceMeta) {
        self.hits = self.hits.saturating_add(other.hits);
        self.last_use = self.last_use.max(other.last_use);
    }

    /// The cost/benefit score: instructions a future hit would save,
    /// weighted by how often the trace has hit so far.
    pub fn benefit(&self, trace_len: u32) -> u128 {
        (self.hits as u128 + 1) * trace_len as u128
    }

    /// The LFU ranking score at RTM tick `now`: the recorded hit count
    /// halved once per [`LFU_HALF_LIFE`] ticks since the last use.
    /// Saturating: ticks from a previous life (an imported snapshot's
    /// `last_use` can exceed a fresh RTM's clock) age nothing.
    pub fn decayed_hits(&self, now: u64) -> u64 {
        let epochs = (now.saturating_sub(self.last_use) / LFU_HALF_LIFE).min(63);
        self.hits >> epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_labels() {
        for policy in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(policy.label()), Some(policy));
            assert_eq!(
                ReplacementPolicy::parse(&policy.label().to_uppercase()),
                Some(policy)
            );
        }
        assert_eq!(
            ReplacementPolicy::parse("cb"),
            Some(ReplacementPolicy::CostBenefit)
        );
        assert_eq!(ReplacementPolicy::parse("mru"), None);
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn absorb_sums_hits_keeps_origin() {
        let mut a = TraceMeta {
            hits: 3,
            last_use: 10,
            source_run: 7,
        };
        a.absorb(&TraceMeta {
            hits: 2,
            last_use: 99,
            source_run: 8,
        });
        assert_eq!(a.hits, 5);
        assert_eq!(a.last_use, 99);
        assert_eq!(a.source_run, 7, "origin run must survive an absorb");
        a.absorb(&TraceMeta {
            hits: u64::MAX,
            last_use: 0,
            source_run: 9,
        });
        assert_eq!(a.hits, u64::MAX, "hit counts saturate, never wrap");
    }

    #[test]
    fn decayed_hits_halve_per_half_life() {
        let meta = TraceMeta {
            hits: 8,
            last_use: 100,
            ..TraceMeta::default()
        };
        assert_eq!(meta.decayed_hits(100), 8, "no age, no decay");
        assert_eq!(meta.decayed_hits(100 + LFU_HALF_LIFE - 1), 8);
        assert_eq!(meta.decayed_hits(100 + LFU_HALF_LIFE), 4);
        assert_eq!(meta.decayed_hits(100 + 3 * LFU_HALF_LIFE), 1);
        assert_eq!(meta.decayed_hits(100 + 4 * LFU_HALF_LIFE), 0);
        // An imported trace's last_use may be from a longer-lived clock.
        assert_eq!(meta.decayed_hits(0), 8, "future last_use must not wrap");
        // The shift is clamped: astronomically old entries don't overflow.
        let ancient = TraceMeta {
            hits: u64::MAX,
            last_use: 0,
            ..TraceMeta::default()
        };
        assert_eq!(ancient.decayed_hits(u64::MAX), u64::MAX >> 63);
    }

    #[test]
    fn benefit_weights_length_and_hits() {
        let cold = TraceMeta::default();
        let hot = TraceMeta {
            hits: 9,
            ..TraceMeta::default()
        };
        // A never-hit long trace can outrank a hot short one …
        assert!(cold.benefit(30) > hot.benefit(2));
        // … but frequency dominates at equal length.
        assert!(hot.benefit(4) > cold.benefit(4));
    }
}
