//! The Sodani & Sohi reuse-buffer schemes (§2 of the paper, citing
//! "Dynamic Instruction Reuse", ISCA 1997).
//!
//! The paper's related-work section describes three instruction-level
//! schemes; the two implementable without rename-stage integration are
//! reproduced here so the trace-level results can be put in context:
//!
//! * **Sv — operand values** ([`SvBuffer`]): each entry holds the source
//!   *values* and the result of the last execution(s); the reuse test
//!   compares current operand values. This is the semantics of
//!   [`crate::ilr::FiniteIlrBuffer`]; `SvBuffer` is a thin wrapper that
//!   fixes the vocabulary.
//!
//! * **Sn — operand names** ([`SnBuffer`]): each entry holds the source
//!   *names* (register identifiers / load address) and a valid bit; any
//!   write to a source name invalidates the entry, and the reuse test is
//!   just the valid bit. Strictly more conservative than Sv: a value
//!   rewritten with the same contents still kills the entry. (The third
//!   scheme, Sn+d, chains dependent entries through producer pointers —
//!   its incremental benefit exists only inside a fetch group, which the
//!   stream-level analysis here does not model.)
//!
//! The `reproduce schemes` experiment measures both on every workload;
//! `Sn ≤ Sv` pointwise is asserted by property tests.

use crate::ilr::{FiniteIlrBuffer, SetAssocGeometry};
use tlr_isa::{DynInstr, Loc};
use tlr_util::FxHashMap;

/// The value-based scheme (Sv): finite per-PC input-value history.
pub struct SvBuffer {
    inner: FiniteIlrBuffer,
}

impl SvBuffer {
    /// New buffer with the given geometry.
    pub fn new(geometry: SetAssocGeometry) -> Self {
        Self {
            inner: FiniteIlrBuffer::new(geometry),
        }
    }

    /// Test-and-record one executed instruction.
    pub fn probe_insert(&mut self, d: &DynInstr) -> bool {
        self.inner.probe_insert(d)
    }

    /// Percentage of observed instructions found reusable.
    pub fn reusability_pct(&self) -> f64 {
        self.inner.reusability_pct()
    }
}

struct SnEntry {
    /// Locations this entry's instruction read (names, not values).
    sources: Vec<Loc>,
    valid: bool,
    generation: u32,
}

/// The name-based scheme (Sn): one entry per static instruction,
/// invalidated by any write to one of its source locations.
pub struct SnBuffer {
    /// Per-PC entries (direct-mapped by static instruction, as in the
    /// scheme description; capacity bounds the number of resident PCs).
    entries: FxHashMap<u32, SnEntry>,
    /// Source location → (pc, generation) watchers.
    watchers: FxHashMap<Loc, Vec<(u32, u32)>>,
    capacity: usize,
    generation: u32,
    observed: u64,
    reusable: u64,
    invalidations: u64,
}

impl SnBuffer {
    /// New buffer holding at most `capacity` static-instruction entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self {
            entries: FxHashMap::default(),
            watchers: FxHashMap::default(),
            capacity,
            generation: 0,
            observed: 0,
            reusable: 0,
            invalidations: 0,
        }
    }

    /// Process one executed instruction: test its entry's valid bit,
    /// apply its writes' invalidations, then (re)establish its entry.
    pub fn probe_insert(&mut self, d: &DynInstr) -> bool {
        self.observed += 1;
        // 1. The reuse test: a valid entry guarantees the sources are
        //    untouched since the recorded execution. For loads, an
        //    unchanged base register implies the same address, and no
        //    invalidating store touched that address — so the whole
        //    input set is provably identical, no value comparison needed.
        let reusable = self
            .entries
            .get(&d.pc)
            .is_some_and(|e| e.valid && e.sources.len() == d.reads.len());
        if reusable {
            self.reusable += 1;
        }
        // 2. This instruction's writes invalidate matching entries
        //    (including, possibly, its own previous one).
        for (loc, _) in d.writes.iter() {
            if let Some(watchers) = self.watchers.remove(loc) {
                for (pc, generation) in watchers {
                    if let Some(e) = self.entries.get_mut(&pc) {
                        if e.generation == generation && e.valid {
                            e.valid = false;
                            self.invalidations += 1;
                        }
                    }
                }
            }
        }
        // 3. (Re)establish this PC's entry — unless the instruction just
        //    clobbered one of its own sources, in which case the entry
        //    would be stillborn.
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&d.pc) {
            // Full: evict an arbitrary invalid entry, else refuse.
            let victim = self
                .entries
                .iter()
                .find(|(_, e)| !e.valid)
                .map(|(pc, _)| *pc);
            match victim {
                Some(pc) => {
                    self.entries.remove(&pc);
                }
                None => return reusable,
            }
        }
        self.generation = self.generation.wrapping_add(1);
        let self_clobbered = d
            .reads
            .iter()
            .any(|(r, _)| d.writes.iter().any(|(w, _)| w == r));
        let generation = self.generation;
        for (loc, _) in d.reads.iter() {
            self.watchers
                .entry(*loc)
                .or_default()
                .push((d.pc, generation));
        }
        self.entries.insert(
            d.pc,
            SnEntry {
                sources: d.reads.iter().map(|(l, _)| *l).collect(),
                valid: !self_clobbered,
                generation,
            },
        );
        reusable
    }

    /// Percentage of observed instructions found reusable.
    pub fn reusability_pct(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            100.0 * self.reusable as f64 / self.observed as f64
        }
    }

    /// Entries invalidated by writes so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

/// Measured reusability of both schemes over one stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchemeComparison {
    /// Sv (operand values) reusability, %.
    pub sv_pct: f64,
    /// Sn (operand names / valid bit) reusability, %.
    pub sn_pct: f64,
}

/// Run both schemes side by side over a stream.
pub fn compare_schemes<'a>(
    stream: impl IntoIterator<Item = &'a DynInstr>,
    geometry: SetAssocGeometry,
) -> SchemeComparison {
    let mut sv = SvBuffer::new(geometry);
    let mut sn = SnBuffer::new(geometry.capacity() as usize);
    for d in stream {
        sv.probe_insert(d);
        sn.probe_insert(d);
    }
    SchemeComparison {
        sv_pct: sv.reusability_pct(),
        sn_pct: sn.reusability_pct(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_isa::OpClass;

    fn di(pc: u32, reads: &[(Loc, u64)], writes: &[(Loc, u64)]) -> DynInstr {
        DynInstr {
            pc,
            next_pc: pc + 1,
            class: OpClass::IntAlu,
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    const R1: Loc = Loc::IntReg(1);
    const R2: Loc = Loc::IntReg(2);
    const R3: Loc = Loc::IntReg(3);

    #[test]
    fn sn_hits_on_untouched_sources() {
        let mut sn = SnBuffer::new(64);
        let d = di(10, &[(R1, 5)], &[(R2, 6)]);
        assert!(!sn.probe_insert(&d));
        assert!(sn.probe_insert(&d));
        assert!(sn.probe_insert(&d));
    }

    #[test]
    fn sn_invalidated_by_silent_write() {
        let mut sn = SnBuffer::new(64);
        let user = di(10, &[(R1, 5)], &[(R2, 6)]);
        let writer_same_value = di(11, &[], &[(R1, 5)]);
        sn.probe_insert(&user);
        sn.probe_insert(&writer_same_value); // rewrites r1 with 5
                                             // Sv would still hit here; Sn must not.
        assert!(!sn.probe_insert(&user), "Sn must be conservative");
        assert_eq!(sn.invalidations(), 1);

        let mut sv = SvBuffer::new(SetAssocGeometry {
            sets: 8,
            ways: 4,
            per_pc: 4,
        });
        sv.probe_insert(&user);
        sv.probe_insert(&writer_same_value);
        assert!(sv.probe_insert(&user), "Sv compares values and hits");
    }

    #[test]
    fn sn_self_clobbering_instruction_never_reuses() {
        let mut sn = SnBuffer::new(64);
        // A counter: reads r3, writes r3 — its entry is always stillborn.
        for v in 0..10u64 {
            let d = di(20, &[(R3, v)], &[(R3, v + 1)]);
            assert!(!sn.probe_insert(&d), "iteration {v}");
        }
    }

    #[test]
    fn sn_never_beats_sv_on_consistent_streams() {
        use tlr_workloads::synthetic::{generate, SyntheticConfig};
        for seed in [1u64, 9, 77] {
            let stream = generate(
                &SyntheticConfig {
                    seed,
                    redundancy: 0.7,
                    ..Default::default()
                },
                20_000,
            );
            let cmp = compare_schemes(
                stream.iter(),
                SetAssocGeometry {
                    sets: 256,
                    ways: 8,
                    per_pc: 16,
                },
            );
            assert!(
                cmp.sn_pct <= cmp.sv_pct + 1e-9,
                "seed {seed}: Sn {} > Sv {}",
                cmp.sn_pct,
                cmp.sv_pct
            );
        }
    }

    #[test]
    fn sn_capacity_pressure_reduces_reuse() {
        let mk_stream = || {
            (0..400u32)
                .cycle()
                .take(8_000)
                .map(|pc| di(pc, &[(R1, 1)], &[(R2, 2)]))
                .collect::<Vec<_>>()
        };
        let mut big = SnBuffer::new(1024);
        let mut small = SnBuffer::new(16);
        for d in mk_stream() {
            big.probe_insert(&d);
            small.probe_insert(&d);
        }
        assert!(big.reusability_pct() > small.reusability_pct());
    }
}
