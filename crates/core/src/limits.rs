//! The limit studies of §4: perfect (infinite-history) reuse engines
//! measured against the Austin–Sohi timing models.
//!
//! One streaming pass over a workload's dynamic stream drives, in
//! lock-step:
//!
//! * the infinite instruction-reuse table (Figure 3's reusability);
//! * base machines (infinite and W-entry windows);
//! * instruction-level reuse machines at several reuse latencies
//!   (Figures 4 and 5);
//! * trace-level reuse machines over *maximal reusable traces* — the
//!   upper bound construction justified by Theorem 1 — at constant
//!   latencies (Figures 6 and 8a), at latencies proportional to the
//!   trace's I/O count (Figure 8b), and with 0-slot window accounting
//!   (our ablation of the "one reuse op in the ROB" choice);
//! * trace size and I/O statistics (Figure 7 and the §4.5 text numbers).
//!
//! Keeping every model in one pass means the stream is generated once by
//! the VM and never materialized.

use crate::ilr::InstrReuseTable;
use crate::trace::{IoCaps, TraceAccum};
use tlr_isa::{DynInstr, LatencyModel, StreamSink};
use tlr_stats::Histogram;
use tlr_timing::{TimingResult, TimingSim, Window};

/// Reuse-latency rule for a trace reuse operation (§4.5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyRule {
    /// Fixed cycles per reuse operation (valid-bit style reuse test).
    Constant(u64),
    /// `ceil(K × (inputs + outputs))` cycles, minimum 1 — models reading
    /// all inputs and writing all outputs through a port of bandwidth
    /// `1/K` values per cycle (full-comparison reuse test).
    ProportionalK(f64),
}

impl LatencyRule {
    /// Latency for a trace with the given I/O counts.
    pub fn latency(&self, inputs: usize, outputs: usize) -> u64 {
        match self {
            LatencyRule::Constant(c) => (*c).max(1),
            LatencyRule::ProportionalK(k) => ((k * (inputs + outputs) as f64).ceil() as u64).max(1),
        }
    }
}

/// Configuration of the combined limit study.
#[derive(Clone, Debug)]
pub struct LimitConfig {
    /// Finite window size (the paper uses 256).
    pub window: usize,
    /// Instruction-level reuse latencies to evaluate (Figures 4b/5b).
    pub ilr_latencies: Vec<u64>,
    /// Constant trace reuse latencies (Figures 6/8a).
    pub tlr_const_latencies: Vec<u64>,
    /// Proportional-K values (Figure 8b).
    pub tlr_k_values: Vec<f64>,
    /// Window slots a reused trace consumes (1 = the paper's reuse op
    /// providing precise exceptions; the study also runs a 0-slot
    /// ablation regardless).
    pub trace_slots: u32,
}

impl Default for LimitConfig {
    fn default() -> Self {
        Self {
            window: 256,
            ilr_latencies: vec![1, 2, 3, 4],
            tlr_const_latencies: vec![1, 2, 3, 4],
            tlr_k_values: vec![1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0],
            trace_slots: 1,
        }
    }
}

/// Aggregate trace-size and I/O statistics over the maximal-trace
/// partition (Figure 7, §4.5).
#[derive(Clone, Debug, Default)]
pub struct TraceIoStats {
    /// Number of (maximal reusable) traces.
    pub traces: u64,
    /// Dynamic instructions covered by those traces.
    pub instrs_in_traces: u64,
    /// Total register live-ins across traces.
    pub reg_ins: u64,
    /// Total memory live-ins.
    pub mem_ins: u64,
    /// Total register live-outs.
    pub reg_outs: u64,
    /// Total memory live-outs.
    pub mem_outs: u64,
    /// Trace-size distribution.
    pub sizes: Histogram,
}

impl TraceIoStats {
    /// Mean instructions per trace.
    pub fn avg_size(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.instrs_in_traces as f64 / self.traces as f64
        }
    }

    /// Mean input values per trace (registers + memory).
    pub fn avg_inputs(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            (self.reg_ins + self.mem_ins) as f64 / self.traces as f64
        }
    }

    /// Mean output values per trace.
    pub fn avg_outputs(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            (self.reg_outs + self.mem_outs) as f64 / self.traces as f64
        }
    }

    /// Reads required per reused instruction (§4.5: 0.43 in the paper).
    pub fn reads_per_reused_instr(&self) -> f64 {
        if self.instrs_in_traces == 0 {
            0.0
        } else {
            (self.reg_ins + self.mem_ins) as f64 / self.instrs_in_traces as f64
        }
    }

    /// Writes required per reused instruction (§4.5: 0.33 in the paper).
    pub fn writes_per_reused_instr(&self) -> f64 {
        if self.instrs_in_traces == 0 {
            0.0
        } else {
            (self.reg_outs + self.mem_outs) as f64 / self.instrs_in_traces as f64
        }
    }
}

/// Everything the pass produces for one workload.
#[derive(Clone, Debug)]
pub struct LimitResult {
    /// Total dynamic instructions analyzed.
    pub total_instrs: u64,
    /// Figure 3: % of dynamic instructions reusable at instruction level.
    pub reusability_pct: f64,
    /// Base machine, infinite window.
    pub base_inf: TimingResult,
    /// Base machine, W-entry window.
    pub base_win: TimingResult,
    /// ILR, infinite window, per latency (Figure 4).
    pub ilr_inf: Vec<(u64, TimingResult)>,
    /// ILR, W window, per latency (Figure 5).
    pub ilr_win: Vec<(u64, TimingResult)>,
    /// TLR, infinite window, per constant latency (Figure 6a uses 1).
    pub tlr_inf: Vec<(u64, TimingResult)>,
    /// TLR, W window, per constant latency (Figures 6b, 8a).
    pub tlr_win_const: Vec<(u64, TimingResult)>,
    /// TLR, W window, per proportional K (Figure 8b).
    pub tlr_win_prop: Vec<(f64, TimingResult)>,
    /// TLR, W window, latency 1, 0 window slots per trace (ablation).
    pub tlr_win_slots0: TimingResult,
    /// Trace size / I/O statistics (Figure 7, §4.5).
    pub trace_stats: TraceIoStats,
}

impl LimitResult {
    /// Speed-up helper: base cycles / variant cycles (1.0 when degenerate).
    fn speedup(base: TimingResult, variant: TimingResult) -> f64 {
        if variant.cycles == 0 {
            1.0
        } else {
            base.cycles as f64 / variant.cycles as f64
        }
    }

    /// ILR speed-up at `latency` for the infinite window.
    pub fn ilr_speedup_inf(&self, latency: u64) -> f64 {
        let v = self.ilr_inf.iter().find(|(l, _)| *l == latency).unwrap().1;
        Self::speedup(self.base_inf, v)
    }

    /// ILR speed-up at `latency` for the W window.
    pub fn ilr_speedup_win(&self, latency: u64) -> f64 {
        let v = self.ilr_win.iter().find(|(l, _)| *l == latency).unwrap().1;
        Self::speedup(self.base_win, v)
    }

    /// TLR speed-up at constant `latency`, infinite window.
    pub fn tlr_speedup_inf(&self, latency: u64) -> f64 {
        let v = self.tlr_inf.iter().find(|(l, _)| *l == latency).unwrap().1;
        Self::speedup(self.base_inf, v)
    }

    /// TLR speed-up at constant `latency`, W window.
    pub fn tlr_speedup_win(&self, latency: u64) -> f64 {
        let v = self
            .tlr_win_const
            .iter()
            .find(|(l, _)| *l == latency)
            .unwrap()
            .1;
        Self::speedup(self.base_win, v)
    }

    /// TLR speed-up at proportional `k`, W window.
    pub fn tlr_speedup_k(&self, k: f64) -> f64 {
        let v = self
            .tlr_win_prop
            .iter()
            .find(|(kk, _)| (*kk - k).abs() < 1e-12)
            .unwrap()
            .1;
        Self::speedup(self.base_win, v)
    }

    /// TLR speed-up with 0-slot traces (ablation), W window, latency 1.
    pub fn tlr_speedup_slots0(&self) -> f64 {
        Self::speedup(self.base_win, self.tlr_win_slots0)
    }
}

struct TlrSim<'a> {
    rule: LatencyRule,
    slots: u32,
    sim: TimingSim<'a>,
}

/// The streaming limit-study sink. Feed it a dynamic stream (it is a
/// [`StreamSink`], so `vm.run(budget, &mut sink)` works directly), then
/// call [`LimitStudySink::result`].
pub struct LimitStudySink<'a> {
    ilr_table: InstrReuseTable,
    base_inf: TimingSim<'a>,
    base_win: TimingSim<'a>,
    ilr_inf: Vec<(u64, TimingSim<'a>)>,
    ilr_win: Vec<(u64, TimingSim<'a>)>,
    tlr_inf: Vec<TlrSim<'a>>,
    tlr_win: Vec<TlrSim<'a>>,
    /// Index pairs into `tlr_win` describing which sims correspond to
    /// (const latencies, K values, slots0).
    buffer: Vec<DynInstr>,
    accum: TraceAccum,
    stats: TraceIoStats,
    config: LimitConfig,
}

impl<'a> LimitStudySink<'a> {
    /// Build the full sim ensemble for `config` over `latency`.
    pub fn new(config: LimitConfig, latency: &'a dyn LatencyModel) -> Self {
        let w = config.window;
        let mk_inf = || TimingSim::new(Window::infinite(), latency);
        let mk_win = || TimingSim::new(Window::finite(w), latency);

        let ilr_inf = config
            .ilr_latencies
            .iter()
            .map(|&l| (l, mk_inf()))
            .collect();
        let ilr_win = config
            .ilr_latencies
            .iter()
            .map(|&l| (l, mk_win()))
            .collect();
        let tlr_inf = config
            .tlr_const_latencies
            .iter()
            .map(|&l| TlrSim {
                rule: LatencyRule::Constant(l),
                slots: config.trace_slots,
                sim: mk_inf(),
            })
            .collect();
        let mut tlr_win: Vec<TlrSim<'a>> = config
            .tlr_const_latencies
            .iter()
            .map(|&l| TlrSim {
                rule: LatencyRule::Constant(l),
                slots: config.trace_slots,
                sim: mk_win(),
            })
            .collect();
        for &k in &config.tlr_k_values {
            tlr_win.push(TlrSim {
                rule: LatencyRule::ProportionalK(k),
                slots: config.trace_slots,
                sim: mk_win(),
            });
        }
        // Ablation: latency 1, zero window slots.
        tlr_win.push(TlrSim {
            rule: LatencyRule::Constant(1),
            slots: 0,
            sim: mk_win(),
        });

        Self {
            ilr_table: InstrReuseTable::new(),
            base_inf: mk_inf(),
            base_win: mk_win(),
            ilr_inf,
            ilr_win,
            tlr_inf,
            tlr_win,
            buffer: Vec::with_capacity(256),
            accum: TraceAccum::new(IoCaps::UNLIMITED),
            stats: TraceIoStats::default(),
            config,
        }
    }

    fn flush_trace(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let n_in = self.accum.live_ins().len();
        let n_out = self.accum.live_outs().len();
        let live_in_locs: Vec<tlr_isa::Loc> =
            self.accum.live_ins().iter().map(|(l, _)| *l).collect();

        for tlr in self.tlr_inf.iter_mut().chain(self.tlr_win.iter_mut()) {
            let lat = tlr.rule.latency(n_in, n_out);
            let (floor, t_reuse) = tlr.sim.trace_floor(live_in_locs.iter(), lat);
            let mut tmax = 0u64;
            for d in &self.buffer {
                tmax = tmax.max(tlr.sim.step_trace_member(d, floor, t_reuse));
            }
            tlr.sim.end_trace(tmax, tlr.slots);
        }

        // Statistics (Figure 7, §4.5).
        self.stats.traces += 1;
        self.stats.instrs_in_traces += self.buffer.len() as u64;
        self.stats.sizes.record(self.buffer.len() as u64);
        let (mut ri, mut mi) = (0u64, 0u64);
        for (l, _) in self.accum.live_ins() {
            if l.is_mem() {
                mi += 1;
            } else {
                ri += 1;
            }
        }
        let (mut ro, mut mo) = (0u64, 0u64);
        for (l, _) in self.accum.live_outs() {
            if l.is_mem() {
                mo += 1;
            } else {
                ro += 1;
            }
        }
        self.stats.reg_ins += ri;
        self.stats.mem_ins += mi;
        self.stats.reg_outs += ro;
        self.stats.mem_outs += mo;

        self.buffer.clear();
        let _ = self.accum.finalize();
    }

    /// Extract the final result (call after the stream ends; `finish()`
    /// is invoked automatically when used via `Vm::run`).
    pub fn result(mut self) -> LimitResult {
        self.flush_trace();
        let res = |s: &TimingSim| TimingResult {
            instrs: s.instr_count(),
            cycles: s.cycles(),
            ipc: s.ipc(),
        };
        let tlr_win_slots0 = res(&self.tlr_win.last().unwrap().sim);
        let n_const = self.config.tlr_const_latencies.len();
        LimitResult {
            total_instrs: self.ilr_table.observed(),
            reusability_pct: self.ilr_table.reusability_pct(),
            base_inf: res(&self.base_inf),
            base_win: res(&self.base_win),
            ilr_inf: self.ilr_inf.iter().map(|(l, s)| (*l, res(s))).collect(),
            ilr_win: self.ilr_win.iter().map(|(l, s)| (*l, res(s))).collect(),
            tlr_inf: self
                .tlr_inf
                .iter()
                .map(|t| {
                    let LatencyRule::Constant(l) = t.rule else {
                        unreachable!()
                    };
                    (l, res(&t.sim))
                })
                .collect(),
            tlr_win_const: self.tlr_win[..n_const]
                .iter()
                .map(|t| {
                    let LatencyRule::Constant(l) = t.rule else {
                        unreachable!()
                    };
                    (l, res(&t.sim))
                })
                .collect(),
            tlr_win_prop: self.tlr_win[n_const..self.tlr_win.len() - 1]
                .iter()
                .map(|t| {
                    let LatencyRule::ProportionalK(k) = t.rule else {
                        unreachable!()
                    };
                    (k, res(&t.sim))
                })
                .collect(),
            tlr_win_slots0,
            trace_stats: self.stats,
        }
    }
}

impl StreamSink for LimitStudySink<'_> {
    fn observe(&mut self, d: &DynInstr) {
        let reusable = self.ilr_table.probe_insert(d);
        self.base_inf.step_normal(d);
        self.base_win.step_normal(d);
        for (lat, sim) in &mut self.ilr_inf {
            if reusable {
                sim.step_reused_instr(d, *lat);
            } else {
                sim.step_normal(d);
            }
        }
        for (lat, sim) in &mut self.ilr_win {
            if reusable {
                sim.step_reused_instr(d, *lat);
            } else {
                sim.step_normal(d);
            }
        }
        if reusable {
            let added = self.accum.try_add(d);
            debug_assert!(added, "UNLIMITED caps must accept everything");
            self.buffer.push(d.clone());
        } else {
            self.flush_trace();
            for tlr in self.tlr_inf.iter_mut().chain(self.tlr_win.iter_mut()) {
                tlr.sim.step_normal(d);
            }
        }
    }

    fn finish(&mut self) {
        self.flush_trace();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlr_asm::assemble;
    use tlr_isa::Alpha21164;
    use tlr_vm::Vm;

    fn study(src: &str, budget: u64) -> LimitResult {
        let prog = assemble(src).unwrap();
        let mut vm = Vm::new(&prog);
        let mut sink = LimitStudySink::new(LimitConfig::default(), &Alpha21164);
        vm.run(budget, &mut sink).unwrap();
        sink.result()
    }

    /// A loop that recomputes the same values every iteration: high
    /// reusability, long traces.
    const REDUNDANT_LOOP: &str = r#"
            .org 0x100
    data:   .word 3, 5, 7, 11, 13, 17, 19, 23
            li      r9, 200          ; outer iterations
    outer:  li      r1, data
            li      r2, 8            ; inner count
            li      r5, 0            ; acc
    inner:  ldq     r3, 0(r1)
            mulq    r4, r3, r3
            addq    r5, r5, r4
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, inner
            stq     r5, 100(zero)
            subq    r9, r9, 1
            bnez    r9, outer
            halt
    "#;

    /// A cyclic pointer chase, unrolled ×8: after the first lap every
    /// load repeats (same address, same value), so the *critical path*
    /// itself — a chain of dependent loads — is reusable. This is the
    /// structure that lets trace-level reuse beat the dataflow limit.
    /// Nodes live at 0x200..0x208, each holding the address of the next.
    const POINTER_CHASE: &str = r#"
            .org 0x200
    nodes:  .word 0x201, 0x202, 0x203, 0x204, 0x205, 0x206, 0x207, 0x200
            li      r1, nodes
            li      r9, 200
    loop:   ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            ldq     r1, 0(r1)
            subq    r9, r9, 1
            bnez    r9, loop
            halt
    "#;

    #[test]
    fn redundant_loop_is_highly_reusable() {
        let res = study(REDUNDANT_LOOP, 100_000);
        // After the first outer iteration everything repeats exactly.
        assert!(
            res.reusability_pct > 90.0,
            "reusability={}",
            res.reusability_pct
        );
    }

    #[test]
    fn tlr_beats_ilr_on_dependent_chains() {
        // The 8 dependent loads of one unrolled lap form one reusable
        // trace: ILR can shave each load to 1 cycle, TLR collapses the
        // whole chain to 1 cycle.
        let res = study(POINTER_CHASE, 100_000);
        let ilr = res.ilr_speedup_inf(1);
        let tlr = res.tlr_speedup_inf(1);
        assert!(ilr > 1.2, "ilr={ilr}");
        assert!(tlr > 2.0 * ilr, "tlr={tlr} ilr={ilr}");
    }

    #[test]
    fn oracle_reuse_never_hurts() {
        for src in [REDUNDANT_LOOP, POINTER_CHASE] {
            let res = study(src, 50_000);
            for lat in [1, 2, 3, 4] {
                assert!(res.ilr_speedup_inf(lat) >= 1.0 - 1e-9);
                assert!(res.ilr_speedup_win(lat) >= 1.0 - 1e-9);
                assert!(res.tlr_speedup_win(lat) >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn ilr_collapses_at_higher_latency_tlr_does_not() {
        // The paper's headline contrast (Fig 4b/5b vs Fig 8a): at reuse
        // latency 4, ILR's benefit all but vanishes (critical-path
        // instructions are short-latency, so the oracle falls back to
        // normal execution), while TLR retains a large speed-up (one
        // 4-cycle reuse op still replaces a many-cycle chain).
        let res = study(POINTER_CHASE, 100_000);
        assert!(
            res.ilr_speedup_win(4) < 1.1,
            "ilr@4 = {}",
            res.ilr_speedup_win(4)
        );
        assert!(
            res.tlr_speedup_win(4) > 1.5,
            "tlr@4 = {}",
            res.tlr_speedup_win(4)
        );
    }

    #[test]
    fn window_bypass_makes_limited_window_tlr_stronger() {
        // Figure 6's second-order result: TLR speed-up on the finite
        // window exceeds TLR speed-up on the infinite window (reused
        // traces bypass the window).
        let res = study(POINTER_CHASE, 100_000);
        assert!(
            res.tlr_speedup_win(1) >= res.tlr_speedup_inf(1),
            "win={} inf={}",
            res.tlr_speedup_win(1),
            res.tlr_speedup_inf(1)
        );
    }

    #[test]
    fn slots0_at_least_as_fast_as_slots1() {
        for src in [REDUNDANT_LOOP, POINTER_CHASE] {
            let res = study(src, 50_000);
            assert!(res.tlr_speedup_slots0() >= res.tlr_speedup_win(1) - 1e-9);
        }
    }

    #[test]
    fn proportional_latency_tracks_io() {
        assert_eq!(LatencyRule::ProportionalK(1.0 / 16.0).latency(6, 5), 1);
        assert_eq!(LatencyRule::ProportionalK(1.0).latency(6, 5), 11);
        assert_eq!(LatencyRule::ProportionalK(0.5).latency(6, 5), 6);
        assert_eq!(LatencyRule::Constant(3).latency(100, 100), 3);
        // Minimum 1 cycle even for tiny traces.
        assert_eq!(LatencyRule::ProportionalK(1.0 / 32.0).latency(1, 0), 1);
    }

    #[test]
    fn trace_stats_accumulate() {
        let res = study(REDUNDANT_LOOP, 100_000);
        let ts = &res.trace_stats;
        assert!(ts.traces > 0);
        assert!(ts.avg_size() > 1.0);
        assert!(ts.avg_inputs() > 0.0);
        assert!(ts.avg_outputs() > 0.0);
        assert_eq!(ts.sizes.sum(), ts.instrs_in_traces);
        // Per-reused-instruction bandwidth must undercut 1 read + 1 write
        // per instruction by a wide margin for loop-shaped traces (§4.5).
        assert!(ts.reads_per_reused_instr() < 1.0);
        assert!(ts.writes_per_reused_instr() < 1.0);
    }

    #[test]
    fn non_redundant_stream_gets_no_tlr_win() {
        // A counter producing fresh values every iteration: nothing (but
        // the li constants) is reusable; speed-ups stay ≈ 1.
        let src = r#"
            li      r1, 5000
            li      r2, 0
    loop:   addq    r2, r2, r1      ; r2 takes a new value every time
            subq    r1, r1, 1
            bnez    r1, loop
            stq     r2, 0(zero)
            halt
        "#;
        let res = study(src, 100_000);
        assert!(
            res.reusability_pct < 10.0,
            "reusability={}",
            res.reusability_pct
        );
        assert!(res.tlr_speedup_inf(1) < 1.2);
    }

    #[test]
    fn reusability_matches_table_definition() {
        // Two identical passes over the same data: second pass fully
        // reusable, so overall reusability ≈ 50%.
        let src = r#"
            .org 0x40
    d:      .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
            li      r9, 2
    pass:   li      r1, d
            li      r2, 10
    el:     ldq     r3, 0(r1)
            mulq    r3, r3, r3
            stq     r3, 32(r1)
            addq    r1, r1, 1
            subq    r2, r2, 1
            bnez    r2, el
            subq    r9, r9, 1
            bnez    r9, pass
            halt
        "#;
        let res = study(src, 100_000);
        assert!(
            (res.reusability_pct - 50.0).abs() < 15.0,
            "reusability={}",
            res.reusability_pct
        );
    }
}
